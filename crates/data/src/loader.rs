//! Loading real multivariate series from CSV files.
//!
//! The evaluation runs on synthetic analogues (no public datasets ship
//! offline), but a downstream user with the real ETT/Weather/PEMS CSVs —
//! or any numeric table — can load them here and run the exact same
//! pipeline.

use std::fs;
use std::path::Path;

use crate::generators::{DatasetKind, RawSeries};

/// Errors while loading a CSV series.
#[derive(Debug)]
pub enum LoadError {
    /// Underlying I/O failure.
    Io(std::io::Error),
    /// Structural problem with the file contents.
    Malformed(String),
}

impl std::fmt::Display for LoadError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            LoadError::Io(e) => write!(f, "io error: {e}"),
            LoadError::Malformed(m) => write!(f, "malformed csv: {m}"),
        }
    }
}

impl std::error::Error for LoadError {}

impl From<std::io::Error> for LoadError {
    fn from(e: std::io::Error) -> Self {
        LoadError::Io(e)
    }
}

/// Parses CSV text into a raw series.
///
/// Expectations (matching the public ETT/Weather distribution format):
/// - first row is a header;
/// - if `skip_first_column` is set, the first column (usually a timestamp)
///   is dropped;
/// - every remaining cell parses as a float;
/// - every row has the same width.
///
/// The result is tagged with `kind` so downstream code knows the sampling
/// frequency and variable names to use.
pub fn parse_csv_series(
    text: &str,
    kind: DatasetKind,
    skip_first_column: bool,
) -> Result<RawSeries, LoadError> {
    let mut lines = text.lines().filter(|l| !l.trim().is_empty());
    let _header = lines
        .next()
        .ok_or_else(|| LoadError::Malformed("empty file".into()))?;
    let mut values: Vec<f32> = Vec::new();
    let mut num_vars: Option<usize> = None;
    let mut num_steps = 0usize;
    for (lineno, line) in lines.enumerate() {
        let mut fields = line.split(',');
        if skip_first_column {
            fields.next();
        }
        let row: Result<Vec<f32>, _> = fields.map(|f| f.trim().parse::<f32>()).collect();
        let row = row.map_err(|e| LoadError::Malformed(format!("row {}: {e}", lineno + 2)))?;
        if row.is_empty() {
            return Err(LoadError::Malformed(format!(
                "row {} has no values",
                lineno + 2
            )));
        }
        match num_vars {
            None => num_vars = Some(row.len()),
            Some(n) if n != row.len() => {
                return Err(LoadError::Malformed(format!(
                    "row {} has {} values, expected {n}",
                    lineno + 2,
                    row.len()
                )));
            }
            _ => {}
        }
        if row.iter().any(|v| !v.is_finite()) {
            return Err(LoadError::Malformed(format!(
                "row {} contains a non-finite value",
                lineno + 2
            )));
        }
        values.extend(row);
        num_steps += 1;
    }
    let num_vars = num_vars.ok_or_else(|| LoadError::Malformed("no data rows".into()))?;
    if num_steps < 2 {
        return Err(LoadError::Malformed("need at least two rows".into()));
    }
    Ok(RawSeries {
        kind,
        values,
        num_steps,
        num_vars,
    })
}

/// Loads a CSV file from disk; see [`parse_csv_series`].
pub fn load_csv_series(
    path: impl AsRef<Path>,
    kind: DatasetKind,
    skip_first_column: bool,
) -> Result<RawSeries, LoadError> {
    let text = fs::read_to_string(path)?;
    parse_csv_series(&text, kind, skip_first_column)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dataset::SplitDataset;

    const SAMPLE: &str = "date,a,b\n2020-01-01,1.0,2.0\n2020-01-02,3.0,4.0\n2020-01-03,5.0,6.0\n";

    #[test]
    fn parses_with_timestamp_column() {
        let s = parse_csv_series(SAMPLE, DatasetKind::EttH1, true)
            .ok()
            .unwrap();
        assert_eq!(s.num_steps, 3);
        assert_eq!(s.num_vars, 2);
        assert_eq!(s.at(1, 0), 3.0);
        assert_eq!(s.at(2, 1), 6.0);
    }

    #[test]
    fn parses_without_timestamp_column() {
        let s = parse_csv_series("a,b\n1,2\n3,4\n", DatasetKind::Weather, false)
            .ok()
            .unwrap();
        assert_eq!(s.num_vars, 2);
        assert_eq!(s.at(0, 1), 2.0);
    }

    #[test]
    fn rejects_ragged_rows() {
        let err = parse_csv_series("h,a\nx,1\nx,1,2\n", DatasetKind::EttH1, true)
            .err()
            .unwrap();
        assert!(matches!(err, LoadError::Malformed(_)), "{err}");
    }

    #[test]
    fn rejects_non_numeric() {
        let err = parse_csv_series("h,a\nx,oops\n x,1\n", DatasetKind::EttH1, true)
            .err()
            .unwrap();
        assert!(matches!(err, LoadError::Malformed(_)));
    }

    #[test]
    fn rejects_empty() {
        assert!(parse_csv_series("", DatasetKind::EttH1, true).is_err());
        assert!(parse_csv_series("header\n", DatasetKind::EttH1, true).is_err());
    }

    #[test]
    fn skips_blank_lines() {
        let s = parse_csv_series("h,a\n\nx,1\n\nx,2\n", DatasetKind::EttH1, true)
            .ok()
            .unwrap();
        assert_eq!(s.num_steps, 2);
    }

    #[test]
    fn loaded_series_feeds_split_dataset() {
        // A loaded CSV drops straight into the standard pipeline.
        let mut text = String::from("date,a,b\n");
        for i in 0..200 {
            text.push_str(&format!("t{i},{},{}\n", i as f32 * 0.1, 100.0 - i as f32));
        }
        let raw = parse_csv_series(&text, DatasetKind::Exchange, true)
            .ok()
            .unwrap();
        let ds = SplitDataset::from_raw(raw, 16, 8);
        // num_vars reflects the file width (2 columns), not the canonical
        // Exchange width (8).
        assert_eq!(ds.num_vars(), 2);
        let w = &ds.windows(crate::Split::Train, 8)[0];
        assert_eq!(w.x.dims(), &[16, 2]);
    }

    #[test]
    fn file_round_trip() {
        let dir = std::env::temp_dir().join("timekd_loader_test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("series.csv");
        std::fs::write(&path, SAMPLE).unwrap();
        let s = load_csv_series(&path, DatasetKind::EttH1, true)
            .ok()
            .unwrap();
        assert_eq!(s.num_steps, 3);
        std::fs::remove_dir_all(&dir).ok();
    }
}
