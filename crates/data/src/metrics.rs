//! Evaluation metrics (paper Eq. 31–32) and streaming accumulation across
//! test windows.

use timekd_tensor::Tensor;

/// Mean squared error between equal-shape tensors.
pub fn mse(pred: &Tensor, target: &Tensor) -> f32 {
    assert_eq!(pred.dims(), target.dims(), "mse: shape mismatch");
    let p = pred.data();
    let t = target.data();
    let n = p.len();
    assert!(n > 0);
    p.iter()
        .zip(t.iter())
        .map(|(a, b)| (a - b) * (a - b))
        .sum::<f32>()
        / n as f32
}

/// Mean absolute error between equal-shape tensors.
pub fn mae(pred: &Tensor, target: &Tensor) -> f32 {
    assert_eq!(pred.dims(), target.dims(), "mae: shape mismatch");
    let p = pred.data();
    let t = target.data();
    let n = p.len();
    assert!(n > 0);
    p.iter()
        .zip(t.iter())
        .map(|(a, b)| (a - b).abs())
        .sum::<f32>()
        / n as f32
}

/// Streaming accumulator over per-window errors, weighted by element count
/// so windows of different sizes average correctly.
#[derive(Debug, Default, Clone, Copy)]
pub struct MetricAccumulator {
    sq_sum: f64,
    abs_sum: f64,
    count: u64,
}

impl MetricAccumulator {
    /// Fresh accumulator.
    pub fn new() -> MetricAccumulator {
        MetricAccumulator::default()
    }

    /// Adds one prediction/target pair.
    pub fn update(&mut self, pred: &Tensor, target: &Tensor) {
        assert_eq!(pred.dims(), target.dims(), "accumulator: shape mismatch");
        let p = pred.data();
        let t = target.data();
        for (a, b) in p.iter().zip(t.iter()) {
            let d = (a - b) as f64;
            self.sq_sum += d * d;
            self.abs_sum += d.abs();
        }
        self.count += p.len() as u64;
    }

    /// Aggregate MSE.
    pub fn mse(&self) -> f32 {
        assert!(self.count > 0, "no samples accumulated");
        (self.sq_sum / self.count as f64) as f32
    }

    /// Aggregate MAE.
    pub fn mae(&self) -> f32 {
        assert!(self.count > 0, "no samples accumulated");
        (self.abs_sum / self.count as f64) as f32
    }

    /// Number of scalar values accumulated.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Merges another accumulator into this one.
    pub fn merge(&mut self, other: &MetricAccumulator) {
        self.sq_sum += other.sq_sum;
        self.abs_sum += other.abs_sum;
        self.count += other.count;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mse_mae_known_values() {
        let p = Tensor::from_vec(vec![1.0, 2.0], [2]);
        let t = Tensor::from_vec(vec![0.0, 4.0], [2]);
        assert_eq!(mse(&p, &t), (1.0 + 4.0) / 2.0);
        assert_eq!(mae(&p, &t), (1.0 + 2.0) / 2.0);
    }

    #[test]
    fn perfect_prediction_zero() {
        let t = Tensor::from_vec(vec![1.0, -1.0], [2]);
        assert_eq!(mse(&t, &t), 0.0);
        assert_eq!(mae(&t, &t), 0.0);
    }

    #[test]
    fn accumulator_matches_batch_computation() {
        let p1 = Tensor::from_vec(vec![1.0, 2.0], [2]);
        let t1 = Tensor::zeros([2]);
        let p2 = Tensor::from_vec(vec![3.0], [1]);
        let t2 = Tensor::zeros([1]);
        let mut acc = MetricAccumulator::new();
        acc.update(&p1, &t1);
        acc.update(&p2, &t2);
        // Joint MSE over all 3 values.
        assert!((acc.mse() - (1.0 + 4.0 + 9.0) / 3.0).abs() < 1e-6);
        assert!((acc.mae() - (1.0 + 2.0 + 3.0) / 3.0).abs() < 1e-6);
        assert_eq!(acc.count(), 3);
    }

    #[test]
    fn merge_combines() {
        let p = Tensor::from_vec(vec![2.0], [1]);
        let t = Tensor::zeros([1]);
        let mut a = MetricAccumulator::new();
        a.update(&p, &t);
        let mut b = MetricAccumulator::new();
        b.update(&p, &t);
        a.merge(&b);
        assert_eq!(a.count(), 2);
        assert!((a.mse() - 4.0).abs() < 1e-6);
    }

    #[test]
    #[should_panic(expected = "no samples")]
    fn empty_accumulator_panics() {
        let _ = MetricAccumulator::new().mse();
    }
}
