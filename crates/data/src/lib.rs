//! # timekd-data
//!
//! Data substrate for the TimeKD reproduction: seeded synthetic generators
//! for the eight benchmark dataset families (ETTh1/h2/m1/m2, Weather,
//! Exchange, PEMS04/08), chronological train/val/test splits with
//! train-fitted standardisation, sliding-window forecasting datasets,
//! prompt templating per the paper's Fig. 2, and the MSE/MAE evaluation
//! metrics (Eq. 31–32).
//!
//! ## Example
//!
//! ```
//! use timekd_data::{DatasetKind, Split, SplitDataset};
//!
//! let ds = SplitDataset::new(DatasetKind::EttH1, 800, 42, 96, 24);
//! let windows = ds.windows(Split::Test, 4);
//! assert_eq!(windows[0].x.dims(), &[96, 7]);
//! assert_eq!(windows[0].y.dims(), &[24, 7]);
//! ```

mod csv;
mod dataset;
mod generators;
mod loader;
mod metrics;
mod prompts;
mod scaler;

pub use csv::write_csv;
pub use dataset::{ForecastWindow, Split, SplitDataset};
pub use generators::{all_kinds, generate, DatasetKind, RawSeries};
pub use loader::{load_csv_series, parse_csv_series, LoadError};
pub use metrics::{mae, mse, MetricAccumulator};
pub use prompts::{
    column, ground_truth_prompt, historical_prompt, window_prompts, PromptConfig, WindowPrompts,
};
pub use scaler::StandardScaler;
