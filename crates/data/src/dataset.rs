//! Chronological splits and sliding-window forecasting datasets.

use timekd_tensor::Tensor;

use crate::generators::{generate, DatasetKind, RawSeries};
use crate::scaler::StandardScaler;

/// Which chronological split to draw windows from.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Split {
    /// First 70% of the series.
    Train,
    /// Next 10%.
    Val,
    /// Final 20%.
    Test,
}

/// One supervised forecasting example.
#[derive(Clone)]
pub struct ForecastWindow {
    /// History `[input_len, num_vars]`, standardised.
    pub x: Tensor,
    /// Future `[horizon, num_vars]`, standardised.
    pub y: Tensor,
    /// Index of the window's first step within its split (stable cache key).
    pub index: usize,
}

/// A generated dataset with train/val/test splits, a train-fitted scaler,
/// and sliding-window access — the "time series data management" substrate
/// every experiment runs on.
pub struct SplitDataset {
    kind: DatasetKind,
    num_vars: usize,
    input_len: usize,
    horizon: usize,
    scaler: StandardScaler,
    train: Vec<f32>,
    val: Vec<f32>,
    test: Vec<f32>,
}

impl SplitDataset {
    /// Generates `num_steps` observations of `kind` (seeded), splits
    /// 70/10/20 chronologically, and standardises every split with
    /// statistics fit on the training split only.
    pub fn new(
        kind: DatasetKind,
        num_steps: usize,
        seed: u64,
        input_len: usize,
        horizon: usize,
    ) -> SplitDataset {
        let raw = generate(kind, num_steps, seed);
        Self::from_raw(raw, input_len, horizon)
    }

    /// Builds splits from an existing raw series (for custom data).
    pub fn from_raw(raw: RawSeries, input_len: usize, horizon: usize) -> SplitDataset {
        let n = raw.num_vars;
        let t = raw.num_steps;
        let window = input_len + horizon;
        assert!(
            t >= window * 4,
            "series of {t} steps too short for window {window}"
        );
        let train_end = (t as f32 * 0.7) as usize;
        let val_end = (t as f32 * 0.8) as usize;
        let mut train = raw.values[..train_end * n].to_vec();
        let mut val = raw.values[train_end * n..val_end * n].to_vec();
        let mut test = raw.values[val_end * n..].to_vec();
        let scaler = StandardScaler::fit(&train, n);
        scaler.transform(&mut train);
        scaler.transform(&mut val);
        scaler.transform(&mut test);
        SplitDataset {
            kind: raw.kind,
            num_vars: n,
            input_len,
            horizon,
            scaler,
            train,
            val,
            test,
        }
    }

    /// Dataset family.
    pub fn kind(&self) -> DatasetKind {
        self.kind
    }

    /// History length `H`.
    pub fn input_len(&self) -> usize {
        self.input_len
    }

    /// Forecast horizon `M`.
    pub fn horizon(&self) -> usize {
        self.horizon
    }

    /// Number of variables `N` — taken from the actual data, which may
    /// differ from the canonical family width when the series was loaded
    /// from a custom CSV.
    pub fn num_vars(&self) -> usize {
        self.num_vars
    }

    /// The train-fitted scaler.
    pub fn scaler(&self) -> &StandardScaler {
        &self.scaler
    }

    fn split_data(&self, split: Split) -> &[f32] {
        match split {
            Split::Train => &self.train,
            Split::Val => &self.val,
            Split::Test => &self.test,
        }
    }

    /// Number of steps in a split.
    pub fn split_len(&self, split: Split) -> usize {
        self.split_data(split).len() / self.num_vars()
    }

    /// Number of windows available in a split at stride 1.
    pub fn num_windows(&self, split: Split) -> usize {
        let steps = self.split_len(split);
        let window = self.input_len + self.horizon;
        steps.saturating_sub(window) + usize::from(steps >= window)
    }

    /// Extracts windows from `split` with the given `stride`, keeping only
    /// the first `fraction` of them (chronologically) — `fraction = 0.1`
    /// reproduces the paper's few-shot protocol, `0.2..=1.0` the
    /// scalability sweep of Fig. 7.
    pub fn windows_with(&self, split: Split, stride: usize, fraction: f32) -> Vec<ForecastWindow> {
        assert!(stride >= 1, "stride must be positive");
        assert!((0.0..=1.0).contains(&fraction), "fraction out of range");
        let n = self.num_vars();
        let data = self.split_data(split);
        let total = self.num_windows(split);
        let keep = ((total as f32 * fraction).floor() as usize)
            .max(1)
            .min(total);
        let mut out = Vec::new();
        let mut start = 0usize;
        while start < keep {
            let x_base = start * n;
            let y_base = (start + self.input_len) * n;
            let x = Tensor::from_vec(
                data[x_base..x_base + self.input_len * n].to_vec(),
                [self.input_len, n],
            );
            let y = Tensor::from_vec(
                data[y_base..y_base + self.horizon * n].to_vec(),
                [self.horizon, n],
            );
            out.push(ForecastWindow { x, y, index: start });
            start += stride;
        }
        out
    }

    /// All windows of a split at the given stride.
    pub fn windows(&self, split: Split, stride: usize) -> Vec<ForecastWindow> {
        self.windows_with(split, stride, 1.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ds() -> SplitDataset {
        SplitDataset::new(DatasetKind::EttH1, 800, 1, 48, 24)
    }

    #[test]
    fn split_sizes_chronological() {
        let d = ds();
        assert_eq!(d.split_len(Split::Train), 560);
        assert_eq!(d.split_len(Split::Val), 80);
        assert_eq!(d.split_len(Split::Test), 160);
    }

    #[test]
    fn window_shapes() {
        let d = ds();
        let w = &d.windows(Split::Train, 7)[0];
        assert_eq!(w.x.dims(), &[48, 7]);
        assert_eq!(w.y.dims(), &[24, 7]);
    }

    #[test]
    fn window_continuity() {
        // y must start exactly where x ends in the underlying series.
        let d = ds();
        let all = d.windows(Split::Test, 1);
        let (w0, w1) = (&all[0], &all[1]);
        // Window 1's history is window 0's shifted by one step.
        let x0 = w0.x.to_vec();
        let x1 = w1.x.to_vec();
        assert_eq!(&x0[7..], &x1[..x1.len() - 7]);
        // And y follows x contiguously: x1 last row == x0 row 47 shifted.
        let y0 = w0.y.to_vec();
        assert_eq!(&x1[x1.len() - 7..], &y0[..7]);
    }

    #[test]
    fn num_windows_formula() {
        let d = ds();
        assert_eq!(d.num_windows(Split::Val), 80 - 72 + 1);
        assert_eq!(d.windows(Split::Val, 1).len(), d.num_windows(Split::Val));
    }

    #[test]
    fn stride_subsamples() {
        let d = ds();
        let full = d.windows(Split::Train, 1).len();
        let strided = d.windows(Split::Train, 4).len();
        assert!(strided <= full / 4 + 1);
    }

    #[test]
    fn fraction_keeps_earliest() {
        let d = ds();
        let few = d.windows_with(Split::Train, 1, 0.1);
        let all = d.windows(Split::Train, 1);
        assert_eq!(few.len(), (all.len() as f32 * 0.1).floor() as usize);
        assert_eq!(few[0].index, 0);
        assert!(few.last().unwrap().index < all.len() / 10 + 1);
    }

    #[test]
    fn training_split_standardised() {
        let d = ds();
        let n = d.num_vars();
        let train = d.split_data(Split::Train);
        let steps = train.len() / n;
        for j in 0..n {
            let col: Vec<f32> = (0..steps).map(|t| train[t * n + j]).collect();
            let mean = col.iter().sum::<f32>() / steps as f32;
            assert!(mean.abs() < 1e-3, "channel {j} mean {mean}");
        }
    }

    #[test]
    #[should_panic(expected = "too short")]
    fn too_short_series_panics() {
        let _ = SplitDataset::new(DatasetKind::EttH1, 100, 1, 96, 96);
    }
}
