//! Seeded synthetic generators for the eight benchmark dataset families.
//!
//! The real ETT/Weather/Exchange/PEMS files are not available offline, so
//! each family is reproduced by a generator matching its documented
//! signature (see DESIGN.md "Substitutions"):
//!
//! | family | sampling | #vars | structure |
//! |---|---|---|---|
//! | ETTh1/h2 | hourly | 7 | daily+weekly cycles, trend, coupled OT |
//! | ETTm1/m2 | 15 min | 7 | same but 4× finer sampling |
//! | Weather | 10 min | 21 | strong daily cycles, slow drift, mixed noise |
//! | Exchange | daily | 8 | correlated random walks, non-stationary |
//! | PEMS04/08 | 5 min | 12/10 | daily periodicity with rush-hour peaks, spatially smoothed |
//!
//! Everything is deterministic given the seed.

use timekd_tensor::SeededRng;
use timekd_tensor::{sample_standard_normal, seeded_rng};

/// The eight dataset families evaluated in the paper.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum DatasetKind {
    /// ETT hourly, transformer 1.
    EttH1,
    /// ETT hourly, transformer 2.
    EttH2,
    /// ETT 15-minute, transformer 1.
    EttM1,
    /// ETT 15-minute, transformer 2.
    EttM2,
    /// German weather indicators, 10-minute sampling.
    Weather,
    /// Daily exchange rates of eight countries.
    Exchange,
    /// California traffic, district 4.
    Pems04,
    /// California traffic, district 8.
    Pems08,
}

impl DatasetKind {
    /// Canonical dataset name as printed in the paper's tables.
    pub fn name(self) -> &'static str {
        match self {
            DatasetKind::EttH1 => "ETTh1",
            DatasetKind::EttH2 => "ETTh2",
            DatasetKind::EttM1 => "ETTm1",
            DatasetKind::EttM2 => "ETTm2",
            DatasetKind::Weather => "Weather",
            DatasetKind::Exchange => "Exchange",
            DatasetKind::Pems04 => "PEMS04",
            DatasetKind::Pems08 => "PEMS08",
        }
    }

    /// Number of variables (PEMS scaled down from hundreds of sensors to a
    /// tractable sensor subset; see DESIGN.md).
    pub fn num_vars(self) -> usize {
        match self {
            DatasetKind::EttH1 | DatasetKind::EttH2 | DatasetKind::EttM1 | DatasetKind::EttM2 => 7,
            DatasetKind::Weather => 21,
            DatasetKind::Exchange => 8,
            DatasetKind::Pems04 => 12,
            DatasetKind::Pems08 => 10,
        }
    }

    /// Sampling period in minutes.
    pub fn freq_minutes(self) -> usize {
        match self {
            DatasetKind::EttH1 | DatasetKind::EttH2 => 60,
            DatasetKind::EttM1 | DatasetKind::EttM2 => 15,
            DatasetKind::Weather => 10,
            DatasetKind::Exchange => 1440,
            DatasetKind::Pems04 | DatasetKind::Pems08 => 5,
        }
    }

    /// Steps per day at this sampling rate.
    pub fn steps_per_day(self) -> usize {
        (24 * 60) / self.freq_minutes()
    }

    /// Variable names for the ETT datasets (used by Fig. 10).
    pub fn variable_names(self) -> Vec<String> {
        match self {
            DatasetKind::EttH1 | DatasetKind::EttH2 | DatasetKind::EttM1 | DatasetKind::EttM2 => {
                ["HUFL", "HULL", "MUFL", "MULL", "LUFL", "LULL", "OT"]
                    .iter()
                    .map(|s| s.to_string())
                    .collect()
            }
            _ => (0..self.num_vars()).map(|i| format!("V{i}")).collect(),
        }
    }

    fn seed_offset(self) -> u64 {
        match self {
            DatasetKind::EttH1 => 0x01,
            DatasetKind::EttH2 => 0x02,
            DatasetKind::EttM1 => 0x03,
            DatasetKind::EttM2 => 0x04,
            DatasetKind::Weather => 0x05,
            DatasetKind::Exchange => 0x06,
            DatasetKind::Pems04 => 0x07,
            DatasetKind::Pems08 => 0x08,
        }
    }
}

/// A raw generated multivariate series (row-major `[T, N]`).
#[derive(Clone)]
pub struct RawSeries {
    /// Which family this came from.
    pub kind: DatasetKind,
    /// Row-major values, `len = num_steps * num_vars`.
    pub values: Vec<f32>,
    /// Number of time steps.
    pub num_steps: usize,
    /// Number of variables.
    pub num_vars: usize,
}

impl RawSeries {
    /// Value of variable `var` at step `t`.
    pub fn at(&self, t: usize, var: usize) -> f32 {
        self.values[t * self.num_vars + var]
    }
}

/// Generates `num_steps` observations of the requested family.
pub fn generate(kind: DatasetKind, num_steps: usize, seed: u64) -> RawSeries {
    let mut rng = seeded_rng(
        seed.wrapping_mul(0x9E37_79B9)
            .wrapping_add(kind.seed_offset()),
    );
    let n = kind.num_vars();
    match kind {
        DatasetKind::EttH1 | DatasetKind::EttM1 => ett_like(kind, num_steps, 1.0, 0.35, &mut rng),
        DatasetKind::EttH2 | DatasetKind::EttM2 => {
            // Transformer 2: heavier noise, stronger weekly component.
            ett_like(kind, num_steps, 1.4, 0.5, &mut rng)
        }
        DatasetKind::Weather => weather_like(kind, num_steps, &mut rng),
        DatasetKind::Exchange => exchange_like(kind, num_steps, &mut rng),
        DatasetKind::Pems04 | DatasetKind::Pems08 => pems_like(kind, num_steps, &mut rng),
    }
    .tap_validate(num_steps, n)
}

impl RawSeries {
    fn tap_validate(self, steps: usize, vars: usize) -> RawSeries {
        debug_assert_eq!(self.num_steps, steps);
        debug_assert_eq!(self.num_vars, vars);
        debug_assert_eq!(self.values.len(), steps * vars);
        debug_assert!(self.values.iter().all(|v| v.is_finite()));
        self
    }
}

/// Electricity-transformer-style: six load channels as mixtures of shared
/// daily/weekly factors + an oil-temperature channel that integrates the
/// loads (slow thermal response), giving the strong cross-channel
/// dependence iTransformer-style models exploit.
fn ett_like(
    kind: DatasetKind,
    num_steps: usize,
    weekly_strength: f32,
    noise: f32,
    rng: &mut SeededRng,
) -> RawSeries {
    let n = kind.num_vars();
    let day = kind.steps_per_day() as f32;
    let week = day * 7.0;
    // Per-channel mixing of shared factors.
    let mut mix_day = vec![0.0f32; n];
    let mut mix_week = vec![0.0f32; n];
    let mut phase = vec![0.0f32; n];
    let mut level = vec![0.0f32; n];
    for j in 0..n {
        mix_day[j] = rng.gen_range(0.5f32..1.5);
        mix_week[j] = rng.gen_range(0.2f32..0.8) * weekly_strength;
        phase[j] = rng.gen_range(0.0f32..std::f32::consts::TAU);
        level[j] = rng.gen_range(-2.0f32..6.0);
    }
    let mut ar = vec![0.0f32; n];
    let trend_slope = rng.gen_range(-0.4f32..0.4) / num_steps as f32;
    let mut values = vec![0.0f32; num_steps * n];
    let mut oil = 0.0f32;
    for t in 0..num_steps {
        let tt = t as f32;
        let mut load_sum = 0.0f32;
        for j in 0..n - 1 {
            ar[j] = 0.8 * ar[j] + noise * sample_standard_normal(rng);
            let v = level[j]
                + mix_day[j] * (std::f32::consts::TAU * tt / day + phase[j]).sin()
                + mix_week[j] * (std::f32::consts::TAU * tt / week + 0.5 * phase[j]).sin()
                + trend_slope * tt * (1.0 + j as f32 * 0.2)
                + ar[j];
            values[t * n + j] = v;
            load_sum += v;
        }
        // OT: exponential smoothing of total load + its own noise.
        oil = 0.97 * oil + 0.03 * (load_sum / (n - 1) as f32);
        values[t * n + (n - 1)] = oil + 0.1 * noise * sample_standard_normal(rng);
    }
    RawSeries {
        kind,
        values,
        num_steps,
        num_vars: n,
    }
}

/// Weather-style: 21 indicators with shared daily cycle, slow synoptic
/// drift (integrated noise low-pass), and per-channel noise levels spanning
/// an order of magnitude (temperature is smooth, wind gusts are not).
fn weather_like(kind: DatasetKind, num_steps: usize, rng: &mut SeededRng) -> RawSeries {
    let n = kind.num_vars();
    let day = kind.steps_per_day() as f32;
    let mut values = vec![0.0f32; num_steps * n];
    let mut synoptic = 0.0f32; // shared slow weather front
    let mut channel_ar = vec![0.0f32; n];
    let gains: Vec<f32> = (0..n).map(|_| rng.gen_range(0.3f32..1.8)).collect();
    let phases: Vec<f32> = (0..n)
        .map(|_| rng.gen_range(0.0f32..std::f32::consts::TAU))
        .collect();
    let noises: Vec<f32> = (0..n).map(|_| rng.gen_range(0.05f32..0.6)).collect();
    let levels: Vec<f32> = (0..n).map(|_| rng.gen_range(-1.0f32..10.0)).collect();
    for t in 0..num_steps {
        let tt = t as f32;
        synoptic = 0.999 * synoptic + 0.02 * sample_standard_normal(rng);
        let daily = (std::f32::consts::TAU * tt / day).sin();
        for j in 0..n {
            channel_ar[j] = 0.9 * channel_ar[j] + noises[j] * sample_standard_normal(rng);
            values[t * n + j] = levels[j]
                + gains[j]
                    * (daily * phases[j].cos()
                        + (std::f32::consts::TAU * tt / day + phases[j]).sin() * 0.5)
                + 2.0 * synoptic * gains[j]
                + channel_ar[j];
        }
    }
    RawSeries {
        kind,
        values,
        num_steps,
        num_vars: n,
    }
}

/// Exchange-style: eight correlated geometric-ish random walks — no
/// seasonality, dominated by non-stationary drift, the regime where simple
/// models are near-optimal and errors are small in normalised units.
fn exchange_like(kind: DatasetKind, num_steps: usize, rng: &mut SeededRng) -> RawSeries {
    let n = kind.num_vars();
    let mut values = vec![0.0f32; num_steps * n];
    let mut level: Vec<f32> = (0..n).map(|_| rng.gen_range(0.5f32..2.0)).collect();
    let vol: Vec<f32> = (0..n).map(|_| rng.gen_range(0.002f32..0.01)).collect();
    for t in 0..num_steps {
        // One global macro shock + idiosyncratic innovations.
        let global = sample_standard_normal(rng);
        for j in 0..n {
            let shock = 0.6 * global + 0.8 * sample_standard_normal(rng);
            level[j] += vol[j] * shock;
            values[t * n + j] = level[j];
        }
    }
    RawSeries {
        kind,
        values,
        num_steps,
        num_vars: n,
    }
}

/// PEMS-style: sensor flows with a strong daily profile including morning
/// and evening rush-hour peaks, plus spatial smoothing so adjacent sensors
/// co-vary (the dependence that channel-dependent models exploit,
/// cf. Table II's discussion).
fn pems_like(kind: DatasetKind, num_steps: usize, rng: &mut SeededRng) -> RawSeries {
    let n = kind.num_vars();
    let day = kind.steps_per_day() as f32;
    let mut raw = vec![0.0f32; num_steps * n];
    let capacities: Vec<f32> = (0..n).map(|_| rng.gen_range(3.0f32..8.0)).collect();
    let mut ar = vec![0.0f32; n];
    for t in 0..num_steps {
        let frac = (t as f32 % day) / day; // time of day in [0, 1)
                                           // Two rush-hour bumps at ~8:00 and ~17:30 plus a broad daytime base.
        let rush = gaussian_bump(frac, 8.0 / 24.0, 0.04)
            + gaussian_bump(frac, 17.5 / 24.0, 0.05)
            + 0.5 * gaussian_bump(frac, 13.0 / 24.0, 0.15);
        for j in 0..n {
            ar[j] = 0.85 * ar[j] + 0.3 * sample_standard_normal(rng);
            raw[t * n + j] = capacities[j] * rush + 0.3 * capacities[j] + ar[j];
        }
    }
    // Spatial smoothing: each sensor mixes with its neighbours on a line
    // graph (a cheap stand-in for the freeway adjacency).
    let mut values = vec![0.0f32; num_steps * n];
    for t in 0..num_steps {
        for j in 0..n {
            let left = raw[t * n + j.saturating_sub(1)];
            let right = raw[t * n + (j + 1).min(n - 1)];
            values[t * n + j] = 0.6 * raw[t * n + j] + 0.2 * left + 0.2 * right;
        }
    }
    RawSeries {
        kind,
        values,
        num_steps,
        num_vars: n,
    }
}

fn gaussian_bump(x: f32, center: f32, width: f32) -> f32 {
    let d = x - center;
    (-0.5 * (d / width) * (d / width)).exp()
}

/// All eight dataset kinds in the paper's table order.
pub fn all_kinds() -> [DatasetKind; 8] {
    [
        DatasetKind::EttM1,
        DatasetKind::EttM2,
        DatasetKind::EttH1,
        DatasetKind::EttH2,
        DatasetKind::Weather,
        DatasetKind::Exchange,
        DatasetKind::Pems04,
        DatasetKind::Pems08,
    ]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_per_seed() {
        let a = generate(DatasetKind::EttH1, 200, 1);
        let b = generate(DatasetKind::EttH1, 200, 1);
        assert_eq!(a.values, b.values);
        let c = generate(DatasetKind::EttH1, 200, 2);
        assert_ne!(a.values, c.values);
    }

    #[test]
    fn kinds_have_distinct_streams() {
        let a = generate(DatasetKind::EttH1, 100, 1);
        let b = generate(DatasetKind::EttH2, 100, 1);
        assert_ne!(a.values, b.values);
    }

    #[test]
    fn shapes_match_spec() {
        for kind in all_kinds() {
            let s = generate(kind, 150, 3);
            assert_eq!(s.num_vars, kind.num_vars());
            assert_eq!(s.num_steps, 150);
            assert_eq!(s.values.len(), 150 * kind.num_vars());
            assert!(s.values.iter().all(|v| v.is_finite()), "{kind:?}");
        }
    }

    #[test]
    fn ett_oil_temperature_tracks_load() {
        // OT is a smoothed integral of the loads: its lag-1 autocorrelation
        // must be much higher than the loads'.
        let s = generate(DatasetKind::EttH1, 2000, 7);
        let n = s.num_vars;
        let autocorr = |j: usize| {
            let col: Vec<f32> = (0..s.num_steps).map(|t| s.at(t, j)).collect();
            lag1_autocorr(&col)
        };
        let ot = autocorr(n - 1);
        let load = autocorr(0);
        assert!(ot > load, "OT autocorr {ot} should exceed load {load}");
        assert!(ot > 0.95, "OT should be very smooth, got {ot}");
    }

    #[test]
    fn ett_daily_seasonality_present() {
        let kind = DatasetKind::EttH1;
        let s = generate(kind, 24 * 40, 5);
        let day = kind.steps_per_day();
        let col: Vec<f32> = (0..s.num_steps).map(|t| s.at(t, 0)).collect();
        let seasonal = autocorr_at_lag(&col, day);
        assert!(seasonal > 0.3, "daily autocorrelation too weak: {seasonal}");
    }

    #[test]
    fn exchange_is_nonstationary_walk() {
        let s = generate(DatasetKind::Exchange, 3000, 11);
        // A random walk's variance grows with time: compare first and last
        // thirds around their own means.
        let col: Vec<f32> = (0..s.num_steps).map(|t| s.at(t, 0)).collect();
        let d1: Vec<f32> = col.windows(2).map(|w| w[1] - w[0]).collect();
        // Increments should be near-white: lag-1 autocorr of diffs ~ 0.
        let white = lag1_autocorr(&d1).abs();
        assert!(white < 0.15, "walk increments autocorrelated: {white}");
        // And the level should wander far relative to increment scale.
        let range = col.iter().cloned().fold(f32::MIN, f32::max)
            - col.iter().cloned().fold(f32::MAX, f32::min);
        let step_scale = d1.iter().map(|x| x.abs()).sum::<f32>() / d1.len() as f32;
        assert!(range > 10.0 * step_scale);
    }

    #[test]
    fn pems_has_rush_hour_peaks() {
        let kind = DatasetKind::Pems04;
        let s = generate(kind, kind.steps_per_day() * 10, 9);
        let day = kind.steps_per_day();
        // Average the daily profile of sensor 0 and check morning peak
        // (~8:00) well above the 3:00 trough.
        let mut profile = vec![0.0f32; day];
        let mut counts = vec![0usize; day];
        for t in 0..s.num_steps {
            profile[t % day] += s.at(t, 0);
            counts[t % day] += 1;
        }
        for (p, c) in profile.iter_mut().zip(counts) {
            *p /= c as f32;
        }
        let at_8 = profile[day * 8 / 24];
        let at_3 = profile[day * 3 / 24];
        assert!(at_8 > at_3 + 1.0, "rush peak missing: 8h={at_8} 3h={at_3}");
    }

    #[test]
    fn pems_neighbours_correlated() {
        let s = generate(DatasetKind::Pems08, 2000, 13);
        let a: Vec<f32> = (0..s.num_steps).map(|t| s.at(t, 4)).collect();
        let b: Vec<f32> = (0..s.num_steps).map(|t| s.at(t, 5)).collect();
        let far: Vec<f32> = (0..s.num_steps).map(|t| s.at(t, 9)).collect();
        let near_corr = pearson(&a, &b);
        let far_corr = pearson(&a, &far);
        assert!(
            near_corr > 0.5,
            "adjacent sensors uncorrelated: {near_corr}"
        );
        assert!(near_corr > far_corr, "{near_corr} vs {far_corr}");
    }

    #[test]
    fn weather_channels_have_varied_noise() {
        let s = generate(DatasetKind::Weather, 2000, 17);
        let mut stds = Vec::new();
        for j in 0..s.num_vars {
            let col: Vec<f32> = (0..s.num_steps).map(|t| s.at(t, j)).collect();
            let diffs: Vec<f32> = col.windows(2).map(|w| w[1] - w[0]).collect();
            let m = diffs.iter().sum::<f32>() / diffs.len() as f32;
            let v = diffs.iter().map(|x| (x - m) * (x - m)).sum::<f32>() / diffs.len() as f32;
            stds.push(v.sqrt());
        }
        let max = stds.iter().cloned().fold(f32::MIN, f32::max);
        let min = stds.iter().cloned().fold(f32::MAX, f32::min);
        assert!(max / min > 2.0, "noise levels too uniform: {min}..{max}");
    }

    fn lag1_autocorr(x: &[f32]) -> f32 {
        autocorr_at_lag(x, 1)
    }

    fn autocorr_at_lag(x: &[f32], lag: usize) -> f32 {
        let n = x.len();
        let mean = x.iter().sum::<f32>() / n as f32;
        let var: f32 = x.iter().map(|v| (v - mean) * (v - mean)).sum();
        let cov: f32 = (0..n - lag)
            .map(|i| (x[i] - mean) * (x[i + lag] - mean))
            .sum();
        cov / var
    }

    fn pearson(a: &[f32], b: &[f32]) -> f32 {
        let n = a.len() as f32;
        let ma = a.iter().sum::<f32>() / n;
        let mb = b.iter().sum::<f32>() / n;
        let cov: f32 = a.iter().zip(b).map(|(x, y)| (x - ma) * (y - mb)).sum();
        let va: f32 = a.iter().map(|x| (x - ma) * (x - ma)).sum();
        let vb: f32 = b.iter().map(|y| (y - mb) * (y - mb)).sum();
        cov / (va.sqrt() * vb.sqrt())
    }
}
