//! Per-channel standardisation fit on the training split only.

/// Per-channel mean/std scaler (z-score), the preprocessing every baseline
//  in the paper shares.
#[derive(Clone, Debug)]
pub struct StandardScaler {
    mean: Vec<f32>,
    std: Vec<f32>,
}

impl StandardScaler {
    /// Fits channel-wise statistics on `data` (`[num_steps, num_vars]`
    /// row-major). Channels with zero variance get std 1 so transform stays
    /// finite.
    pub fn fit(data: &[f32], num_vars: usize) -> StandardScaler {
        assert!(
            num_vars > 0 && data.len().is_multiple_of(num_vars),
            "bad data layout"
        );
        let steps = data.len() / num_vars;
        assert!(steps > 0, "cannot fit scaler on empty data");
        let mut mean = vec![0.0f32; num_vars];
        for t in 0..steps {
            for j in 0..num_vars {
                mean[j] += data[t * num_vars + j];
            }
        }
        for m in &mut mean {
            *m /= steps as f32;
        }
        let mut var = vec![0.0f32; num_vars];
        for t in 0..steps {
            for j in 0..num_vars {
                let d = data[t * num_vars + j] - mean[j];
                var[j] += d * d;
            }
        }
        let std = var
            .iter()
            .map(|v| {
                let s = (v / steps as f32).sqrt();
                if s > 1e-8 {
                    s
                } else {
                    1.0
                }
            })
            .collect();
        StandardScaler { mean, std }
    }

    /// Number of channels.
    pub fn num_vars(&self) -> usize {
        self.mean.len()
    }

    /// Standardises in place.
    pub fn transform(&self, data: &mut [f32]) {
        let n = self.num_vars();
        assert_eq!(data.len() % n, 0);
        for (i, v) in data.iter_mut().enumerate() {
            let j = i % n;
            *v = (*v - self.mean[j]) / self.std[j];
        }
    }

    /// Inverts [`StandardScaler::transform`] in place.
    pub fn inverse_transform(&self, data: &mut [f32]) {
        let n = self.num_vars();
        assert_eq!(data.len() % n, 0);
        for (i, v) in data.iter_mut().enumerate() {
            let j = i % n;
            *v = *v * self.std[j] + self.mean[j];
        }
    }

    /// Channel means.
    pub fn mean(&self) -> &[f32] {
        &self.mean
    }

    /// Channel standard deviations.
    pub fn std(&self) -> &[f32] {
        &self.std
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn transform_standardises() {
        let data: Vec<f32> = vec![1.0, 10.0, 2.0, 20.0, 3.0, 30.0];
        let scaler = StandardScaler::fit(&data, 2);
        let mut d = data.clone();
        scaler.transform(&mut d);
        // Channel 0: mean 2, channel 1: mean 20.
        let m0 = (d[0] + d[2] + d[4]) / 3.0;
        let m1 = (d[1] + d[3] + d[5]) / 3.0;
        assert!(m0.abs() < 1e-6 && m1.abs() < 1e-6);
    }

    #[test]
    fn round_trip() {
        let data: Vec<f32> = (0..20).map(|x| x as f32 * 1.3 - 4.0).collect();
        let scaler = StandardScaler::fit(&data, 4);
        let mut d = data.clone();
        scaler.transform(&mut d);
        scaler.inverse_transform(&mut d);
        for (a, b) in d.iter().zip(&data) {
            assert!((a - b).abs() < 1e-4);
        }
    }

    #[test]
    fn constant_channel_survives() {
        let data = vec![5.0, 1.0, 5.0, 2.0, 5.0, 3.0];
        let scaler = StandardScaler::fit(&data, 2);
        let mut d = data.clone();
        scaler.transform(&mut d);
        assert!(d.iter().all(|v| v.is_finite()));
        assert_eq!(d[0], 0.0);
    }

    #[test]
    fn transform_uses_train_stats_not_test() {
        // Fit on one distribution, apply to a shifted one: output should be
        // offset, not re-centred (that's what makes it a train-split fit).
        let train = vec![0.0f32; 10];
        let scaler = StandardScaler::fit(&train, 1);
        let mut test = vec![3.0f32; 5];
        scaler.transform(&mut test);
        assert!(test.iter().all(|&v| v == 3.0));
    }
}
