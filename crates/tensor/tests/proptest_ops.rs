//! Property-based tests for the tensor substrate: algebraic identities,
//! broadcasting consistency, and gradient invariants over random inputs.

use proptest::prelude::*;
use timekd_tensor::{Shape, Tensor};

/// Strategy: a small shape (rank 1–3, axes 1–4).
fn small_shape() -> impl Strategy<Value = Vec<usize>> {
    prop::collection::vec(1usize..=4, 1..=3)
}

/// Strategy: finite f32 data of the given length, bounded to avoid
/// overflow in squared terms.
fn data_for(len: usize) -> impl Strategy<Value = Vec<f32>> {
    prop::collection::vec(-100.0f32..100.0, len..=len)
}

fn shaped_tensor() -> impl Strategy<Value = Tensor> {
    small_shape().prop_flat_map(|dims| {
        let len: usize = dims.iter().product();
        data_for(len).prop_map(move |data| Tensor::from_vec(data, dims.clone()))
    })
}

proptest! {
    #[test]
    fn add_commutes(t in shaped_tensor()) {
        let u = t.mul_scalar(0.5).add_scalar(1.0);
        let ab = t.add(&u).to_vec();
        let ba = u.add(&t).to_vec();
        prop_assert_eq!(ab, ba);
    }

    #[test]
    fn sub_self_is_zero(t in shaped_tensor()) {
        prop_assert!(t.sub(&t).to_vec().iter().all(|&x| x == 0.0));
    }

    #[test]
    fn mul_by_one_identity(t in shaped_tensor()) {
        let one = Tensor::ones(Shape::new(t.dims().to_vec()));
        prop_assert_eq!(t.mul(&one).to_vec(), t.to_vec());
    }

    #[test]
    fn double_negation(t in shaped_tensor()) {
        prop_assert_eq!(t.neg().neg().to_vec(), t.to_vec());
    }

    #[test]
    fn relu_idempotent_and_nonnegative(t in shaped_tensor()) {
        let r = t.relu();
        prop_assert!(r.to_vec().iter().all(|&x| x >= 0.0));
        prop_assert_eq!(r.relu().to_vec(), r.to_vec());
    }

    #[test]
    fn abs_matches_relu_decomposition(t in shaped_tensor()) {
        // |x| = relu(x) + relu(-x)
        let lhs = t.abs().to_vec();
        let rhs = t.relu().add(&t.neg().relu()).to_vec();
        for (a, b) in lhs.iter().zip(&rhs) {
            prop_assert!((a - b).abs() < 1e-5);
        }
    }

    #[test]
    fn smooth_l1_nonnegative_and_zero_at_equal(t in shaped_tensor()) {
        let l = t.smooth_l1(&t);
        prop_assert!(l.to_vec().iter().all(|&x| x == 0.0));
        let shifted = t.add_scalar(0.5);
        prop_assert!(t.smooth_l1(&shifted).to_vec().iter().all(|&x| x >= 0.0));
    }

    #[test]
    fn smooth_l1_bounded_by_mse_half(t in shaped_tensor()) {
        // Huber(d) <= 0.5 d² always.
        let target = t.mul_scalar(0.3);
        let huber = t.smooth_l1(&target).to_vec();
        let half_sq = t.sub(&target).square().mul_scalar(0.5).to_vec();
        for (h, m) in huber.iter().zip(&half_sq) {
            prop_assert!(*h <= m + 1e-4);
        }
    }

    #[test]
    fn sum_matches_axis_decomposition(t in shaped_tensor()) {
        let direct = t.sum().item();
        let mut via_axis = t.clone();
        while via_axis.shape().rank() > 0 {
            via_axis = via_axis.sum_axis(0, false);
            if via_axis.shape().rank() == 0 {
                break;
            }
        }
        let chained = via_axis.item();
        let scale = direct.abs().max(1.0);
        prop_assert!((direct - chained).abs() / scale < 1e-3,
            "direct {direct} vs chained {chained}");
    }

    #[test]
    fn reshape_preserves_sum(t in shaped_tensor()) {
        let n = t.num_elements();
        let r = t.reshape([n]);
        prop_assert_eq!(r.sum().item(), t.sum().item());
    }

    #[test]
    fn transpose_involution(rows in 1usize..5, cols in 1usize..5, seed in 0u64..1000) {
        let mut rng = timekd_tensor::seeded_rng(seed);
        let t = Tensor::randn([rows, cols], 1.0, &mut rng);
        prop_assert_eq!(t.transpose_last().transpose_last().to_vec(), t.to_vec());
    }

    #[test]
    fn softmax_rows_are_distributions(rows in 1usize..5, cols in 1usize..6, seed in 0u64..1000) {
        let mut rng = timekd_tensor::seeded_rng(seed);
        let t = Tensor::randn([rows, cols], 5.0, &mut rng);
        let s = t.softmax_last().to_vec();
        for r in 0..rows {
            let row = &s[r * cols..(r + 1) * cols];
            prop_assert!(row.iter().all(|&p| (0.0..=1.0).contains(&p)));
            let total: f32 = row.iter().sum();
            prop_assert!((total - 1.0).abs() < 1e-4);
        }
    }

    #[test]
    fn broadcast_equivalent_to_materialised(seed in 0u64..1000, rows in 1usize..4, cols in 1usize..4) {
        let mut rng = timekd_tensor::seeded_rng(seed);
        let a = Tensor::randn([rows, cols], 1.0, &mut rng);
        let b = Tensor::randn([cols], 1.0, &mut rng);
        let fast = a.mul(&b).to_vec();
        let slow = a.mul(&b.broadcast_to([rows, cols])).to_vec();
        prop_assert_eq!(fast, slow);
    }

    #[test]
    fn matmul_distributes_over_addition(seed in 0u64..500) {
        let mut rng = timekd_tensor::seeded_rng(seed);
        let a = Tensor::randn([3, 4], 1.0, &mut rng);
        let b = Tensor::randn([4, 2], 1.0, &mut rng);
        let c = Tensor::randn([4, 2], 1.0, &mut rng);
        let lhs = a.matmul(&b.add(&c)).to_vec();
        let rhs = a.matmul(&b).add(&a.matmul(&c)).to_vec();
        for (x, y) in lhs.iter().zip(&rhs) {
            prop_assert!((x - y).abs() < 1e-3, "{x} vs {y}");
        }
    }

    #[test]
    fn gradient_of_linear_map_is_input_independent_scale(seed in 0u64..200, scale in -3.0f32..3.0) {
        // d/dp sum(scale * p) = scale everywhere.
        let mut rng = timekd_tensor::seeded_rng(seed);
        let p = Tensor::randn_param([6], 1.0, &mut rng);
        p.mul_scalar(scale).sum().backward();
        for g in p.grad().unwrap() {
            prop_assert!((g - scale).abs() < 1e-6);
        }
    }

    #[test]
    fn gradient_accumulates_linearly(seed in 0u64..200) {
        // Backward through (a+a) gives exactly twice the gradient of a.
        let mut rng = timekd_tensor::seeded_rng(seed);
        let p = Tensor::randn_param([4], 1.0, &mut rng);
        p.add(&p).sum().backward();
        let doubled = p.grad().unwrap();
        p.zero_grad();
        p.sum().backward();
        let single = p.grad().unwrap();
        for (d, s) in doubled.iter().zip(&single) {
            prop_assert!((d - 2.0 * s).abs() < 1e-6);
        }
    }

    #[test]
    fn concat_then_slice_recovers_parts(seed in 0u64..500, left in 1usize..4, right in 1usize..4) {
        let mut rng = timekd_tensor::seeded_rng(seed);
        let a = Tensor::randn([2, left], 1.0, &mut rng);
        let b = Tensor::randn([2, right], 1.0, &mut rng);
        let joined = Tensor::concat(&[a.clone(), b.clone()], 1);
        prop_assert_eq!(joined.slice(1, 0, left).to_vec(), a.to_vec());
        prop_assert_eq!(joined.slice(1, left, right).to_vec(), b.to_vec());
    }

    #[test]
    fn io_round_trip_any_tensor(t in shaped_tensor()) {
        let mut blob = timekd_tensor::io::encode_tensor(&t);
        let back = timekd_tensor::io::decode_tensor(&mut blob).unwrap();
        prop_assert_eq!(back.dims(), t.dims());
        prop_assert_eq!(back.to_vec(), t.to_vec());
    }
}
