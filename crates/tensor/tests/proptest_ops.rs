//! Randomised property tests for the tensor substrate: algebraic
//! identities, broadcasting consistency, and gradient invariants over
//! random inputs.
//!
//! Each property is exercised over many seeded random cases drawn from the
//! in-tree [`timekd_tensor::SeededRng`]; failures print the offending seed
//! so a case can be replayed deterministically.

use timekd_tensor::{seeded_rng, SeededRng, Shape, Tensor};

const CASES: u64 = 64;

/// A random small shape (rank 1–3, axes 1–4).
fn small_shape(rng: &mut SeededRng) -> Vec<usize> {
    let rank = rng.gen_range(1usize..4);
    (0..rank).map(|_| rng.gen_range(1usize..5)).collect()
}

/// A random tensor with finite data bounded to avoid overflow in squared
/// terms.
fn shaped_tensor(rng: &mut SeededRng) -> Tensor {
    let dims = small_shape(rng);
    let len: usize = dims.iter().product();
    let data: Vec<f32> = (0..len).map(|_| rng.gen_range(-100.0f32..100.0)).collect();
    Tensor::from_vec(data, dims)
}

#[test]
fn add_commutes() {
    for seed in 0..CASES {
        let mut rng = seeded_rng(seed);
        let t = shaped_tensor(&mut rng);
        let u = t.mul_scalar(0.5).add_scalar(1.0);
        assert_eq!(t.add(&u).to_vec(), u.add(&t).to_vec(), "seed {seed}");
    }
}

#[test]
fn sub_self_is_zero() {
    for seed in 0..CASES {
        let t = shaped_tensor(&mut seeded_rng(seed));
        assert!(t.sub(&t).to_vec().iter().all(|&x| x == 0.0), "seed {seed}");
    }
}

#[test]
fn mul_by_one_identity() {
    for seed in 0..CASES {
        let t = shaped_tensor(&mut seeded_rng(seed));
        let one = Tensor::ones(Shape::new(t.dims().to_vec()));
        assert_eq!(t.mul(&one).to_vec(), t.to_vec(), "seed {seed}");
    }
}

#[test]
fn double_negation() {
    for seed in 0..CASES {
        let t = shaped_tensor(&mut seeded_rng(seed));
        assert_eq!(t.neg().neg().to_vec(), t.to_vec(), "seed {seed}");
    }
}

#[test]
fn relu_idempotent_and_nonnegative() {
    for seed in 0..CASES {
        let t = shaped_tensor(&mut seeded_rng(seed));
        let r = t.relu();
        assert!(r.to_vec().iter().all(|&x| x >= 0.0), "seed {seed}");
        assert_eq!(r.relu().to_vec(), r.to_vec(), "seed {seed}");
    }
}

#[test]
fn abs_matches_relu_decomposition() {
    // |x| = relu(x) + relu(-x)
    for seed in 0..CASES {
        let t = shaped_tensor(&mut seeded_rng(seed));
        let lhs = t.abs().to_vec();
        let rhs = t.relu().add(&t.neg().relu()).to_vec();
        for (a, b) in lhs.iter().zip(&rhs) {
            assert!((a - b).abs() < 1e-5, "seed {seed}: {a} vs {b}");
        }
    }
}

#[test]
fn smooth_l1_nonnegative_and_zero_at_equal() {
    for seed in 0..CASES {
        let t = shaped_tensor(&mut seeded_rng(seed));
        let l = t.smooth_l1(&t);
        assert!(l.to_vec().iter().all(|&x| x == 0.0), "seed {seed}");
        let shifted = t.add_scalar(0.5);
        assert!(
            t.smooth_l1(&shifted).to_vec().iter().all(|&x| x >= 0.0),
            "seed {seed}"
        );
    }
}

#[test]
fn smooth_l1_bounded_by_mse_half() {
    // Huber(d) <= 0.5 d² always.
    for seed in 0..CASES {
        let t = shaped_tensor(&mut seeded_rng(seed));
        let target = t.mul_scalar(0.3);
        let huber = t.smooth_l1(&target).to_vec();
        let half_sq = t.sub(&target).square().mul_scalar(0.5).to_vec();
        for (h, m) in huber.iter().zip(&half_sq) {
            assert!(*h <= m + 1e-4, "seed {seed}");
        }
    }
}

#[test]
fn sum_matches_axis_decomposition() {
    for seed in 0..CASES {
        let t = shaped_tensor(&mut seeded_rng(seed));
        let direct = t.sum().item();
        let mut via_axis = t.clone();
        while via_axis.shape().rank() > 0 {
            via_axis = via_axis.sum_axis(0, false);
            if via_axis.shape().rank() == 0 {
                break;
            }
        }
        let chained = via_axis.item();
        let scale = direct.abs().max(1.0);
        assert!(
            (direct - chained).abs() / scale < 1e-3,
            "seed {seed}: direct {direct} vs chained {chained}"
        );
    }
}

#[test]
fn reshape_preserves_sum() {
    for seed in 0..CASES {
        let t = shaped_tensor(&mut seeded_rng(seed));
        let n = t.num_elements();
        let r = t.reshape([n]);
        assert_eq!(r.sum().item(), t.sum().item(), "seed {seed}");
    }
}

#[test]
fn transpose_involution() {
    for seed in 0..CASES {
        let mut rng = seeded_rng(seed);
        let rows = rng.gen_range(1usize..5);
        let cols = rng.gen_range(1usize..5);
        let t = Tensor::randn([rows, cols], 1.0, &mut rng);
        assert_eq!(
            t.transpose_last().transpose_last().to_vec(),
            t.to_vec(),
            "seed {seed}"
        );
    }
}

#[test]
fn softmax_rows_are_distributions() {
    for seed in 0..CASES {
        let mut rng = seeded_rng(seed);
        let rows = rng.gen_range(1usize..5);
        let cols = rng.gen_range(1usize..6);
        let t = Tensor::randn([rows, cols], 5.0, &mut rng);
        let s = t.softmax_last().to_vec();
        for r in 0..rows {
            let row = &s[r * cols..(r + 1) * cols];
            assert!(row.iter().all(|&p| (0.0..=1.0).contains(&p)), "seed {seed}");
            let total: f32 = row.iter().sum();
            assert!((total - 1.0).abs() < 1e-4, "seed {seed}: sum {total}");
        }
    }
}

#[test]
fn broadcast_equivalent_to_materialised() {
    for seed in 0..CASES {
        let mut rng = seeded_rng(seed);
        let rows = rng.gen_range(1usize..4);
        let cols = rng.gen_range(1usize..4);
        let a = Tensor::randn([rows, cols], 1.0, &mut rng);
        let b = Tensor::randn([cols], 1.0, &mut rng);
        let fast = a.mul(&b).to_vec();
        let slow = a.mul(&b.broadcast_to([rows, cols])).to_vec();
        assert_eq!(fast, slow, "seed {seed}");
    }
}

#[test]
fn matmul_distributes_over_addition() {
    for seed in 0..CASES {
        let mut rng = seeded_rng(seed);
        let a = Tensor::randn([3, 4], 1.0, &mut rng);
        let b = Tensor::randn([4, 2], 1.0, &mut rng);
        let c = Tensor::randn([4, 2], 1.0, &mut rng);
        let lhs = a.matmul(&b.add(&c)).to_vec();
        let rhs = a.matmul(&b).add(&a.matmul(&c)).to_vec();
        for (x, y) in lhs.iter().zip(&rhs) {
            assert!((x - y).abs() < 1e-3, "seed {seed}: {x} vs {y}");
        }
    }
}

#[test]
fn gradient_of_linear_map_is_input_independent_scale() {
    // d/dp sum(scale * p) = scale everywhere.
    for seed in 0..CASES {
        let mut rng = seeded_rng(seed);
        let scale = rng.gen_range(-3.0f32..3.0);
        let p = Tensor::randn_param([6], 1.0, &mut rng);
        p.mul_scalar(scale).sum().backward();
        for g in p.grad().expect("gradient must reach p") {
            assert!((g - scale).abs() < 1e-6, "seed {seed}: {g} vs {scale}");
        }
    }
}

#[test]
fn gradient_accumulates_linearly() {
    // Backward through (a+a) gives exactly twice the gradient of a.
    for seed in 0..CASES {
        let mut rng = seeded_rng(seed);
        let p = Tensor::randn_param([4], 1.0, &mut rng);
        p.add(&p).sum().backward();
        let doubled = p.grad().expect("gradient must reach p");
        p.zero_grad();
        p.sum().backward();
        let single = p.grad().expect("gradient must reach p");
        for (d, s) in doubled.iter().zip(&single) {
            assert!((d - 2.0 * s).abs() < 1e-6, "seed {seed}");
        }
    }
}

#[test]
fn concat_then_slice_recovers_parts() {
    for seed in 0..CASES {
        let mut rng = seeded_rng(seed);
        let left = rng.gen_range(1usize..4);
        let right = rng.gen_range(1usize..4);
        let a = Tensor::randn([2, left], 1.0, &mut rng);
        let b = Tensor::randn([2, right], 1.0, &mut rng);
        let joined = Tensor::concat(&[a.clone(), b.clone()], 1);
        assert_eq!(joined.slice(1, 0, left).to_vec(), a.to_vec(), "seed {seed}");
        assert_eq!(
            joined.slice(1, left, right).to_vec(),
            b.to_vec(),
            "seed {seed}"
        );
    }
}

#[test]
fn io_round_trip_any_tensor() {
    for seed in 0..CASES {
        let t = shaped_tensor(&mut seeded_rng(seed));
        let mut blob = timekd_tensor::io::encode_tensor(&t);
        let back = timekd_tensor::io::decode_tensor(&mut blob).expect("round trip");
        assert_eq!(back.dims(), t.dims(), "seed {seed}");
        assert_eq!(back.to_vec(), t.to_vec(), "seed {seed}");
    }
}
