//! SIMD-vs-scalar equivalence for the f32x8 microkernels.
//!
//! The SIMD-mode kernels promise *pinned* reduction orders (see
//! `timekd_tensor::simd`): NN products accumulate one ascending-`k` fused
//! multiply-add chain per output element, and NT/dot-style contractions
//! use the 8-lane blocked `dot_lanes` order. These tests restate both
//! orders as plain scalar reference loops — no `F32x8`, no register
//! tiling — and assert the shipped kernels match them **bitwise**, at
//! thread counts {1, 2, 5}, on shapes with row/column/lane remainders,
//! through the forward kernel and both gradient kernels (NT for `dA`, TN
//! for `dB`). Scalar mode (`TIMEKD_SIMD=off`) is pinned separately to the
//! pre-SIMD 4-wide kernel order and checked for thread invariance the
//! same way.

use timekd_tensor::parallel::with_threads;
use timekd_tensor::simd::fmadd;
use timekd_tensor::{seeded_rng, with_simd, Tensor};

fn assert_bits_eq(a: &[f32], b: &[f32], what: &str) {
    assert_eq!(a.len(), b.len(), "{what}: length mismatch");
    for (i, (x, y)) in a.iter().zip(b).enumerate() {
        assert_eq!(
            x.to_bits(),
            y.to_bits(),
            "{what}: bit mismatch at {i}: {x} vs {y}"
        );
    }
}

/// Scalar restatement of the SIMD NN order: one ascending-`k` fmadd chain
/// per output element, regardless of how the kernel tiles the schedule.
fn nn_chain_reference(a: &[f32], b: &[f32], m: usize, k: usize, n: usize) -> Vec<f32> {
    let mut out = vec![0.0f32; m * n];
    for i in 0..m {
        for j in 0..n {
            let mut acc = 0.0f32;
            for kk in 0..k {
                acc = fmadd(a[i * k + kk], b[kk * n + j], acc);
            }
            out[i * n + j] = acc;
        }
    }
    out
}

/// Scalar restatement of the `dot_lanes` order: element `i` feeds lane
/// `i % 8`, lanes accumulate ascending with fmadd, partials combine via
/// the fixed tree `((l0+l1)+(l2+l3)) + ((l4+l5)+(l6+l7))`, and the tail
/// folds ascending with scalar fmadd.
fn dot_lanes_reference(a: &[f32], b: &[f32]) -> f32 {
    let n = a.len();
    let mut lanes = [0.0f32; 8];
    let mut i = 0;
    while i + 8 <= n {
        for (l, lane) in lanes.iter_mut().enumerate() {
            *lane = fmadd(a[i + l], b[i + l], *lane);
        }
        i += 8;
    }
    let mut sum = ((lanes[0] + lanes[1]) + (lanes[2] + lanes[3]))
        + ((lanes[4] + lanes[5]) + (lanes[6] + lanes[7]));
    while i < n {
        sum = fmadd(a[i], b[i], sum);
        i += 1;
    }
    sum
}

/// Scalar restatement of the pre-SIMD NN kernel (`TIMEKD_SIMD=off`): four
/// fused `k`-steps per output pass, each rounding multiply and add
/// separately, with a single-step tail for `k % 4`.
fn nn_legacy_reference(a: &[f32], b: &[f32], m: usize, k: usize, n: usize) -> Vec<f32> {
    let mut out = vec![0.0f32; m * n];
    for i in 0..m {
        for j in 0..n {
            let o = &mut out[i * n + j];
            let mut kk = 0;
            while kk + 4 <= k {
                *o += a[i * k + kk] * b[kk * n + j]
                    + a[i * k + kk + 1] * b[(kk + 1) * n + j]
                    + a[i * k + kk + 2] * b[(kk + 2) * n + j]
                    + a[i * k + kk + 3] * b[(kk + 3) * n + j];
                kk += 4;
            }
            while kk < k {
                *o += a[i * k + kk] * b[kk * n + j];
                kk += 1;
            }
        }
    }
    out
}

/// Remainder-heavy geometries: rows not divisible by the 4-row tiling,
/// columns hitting the 16-wide, 8-wide, and scalar column tails, `k % 4`
/// and `k % 8` tails — plus one shape above the parallel cutoff
/// (`80·64·72 ≥ 64³`) so the pool genuinely engages at threads 2 and 5.
const SHAPES: [(usize, usize, usize); 5] =
    [(5, 7, 19), (4, 8, 16), (9, 13, 33), (3, 9, 7), (80, 64, 72)];

fn seeded_pair(m: usize, k: usize, n: usize, seed: u64) -> (Vec<f32>, Vec<f32>) {
    let mut rng = seeded_rng(seed);
    (
        Tensor::randn([m, k], 1.0, &mut rng).to_vec(),
        Tensor::randn([k, n], 1.0, &mut rng).to_vec(),
    )
}

#[test]
fn simd_forward_matches_chain_reference_at_all_threads() {
    for (si, &(m, k, n)) in SHAPES.iter().enumerate() {
        let (a0, b0) = seeded_pair(m, k, n, 40 + si as u64);
        let want = nn_chain_reference(&a0, &b0, m, k, n);
        let a = Tensor::from_vec(a0, [m, k]);
        let b = Tensor::from_vec(b0, [k, n]);
        for threads in [1, 2, 5] {
            let got = with_threads(threads, || with_simd(true, || a.matmul(&b).to_vec()));
            assert_bits_eq(&got, &want, &format!("NN {m}x{k}x{n} threads={threads}"));
        }
    }
}

#[test]
fn simd_gradients_match_pinned_references_at_all_threads() {
    // Loss = sum(A@B ⊙ M), so the upstream gradient is the mask M itself:
    // dA = M·Bᵀ runs the NT kernel (dot_lanes order, one dot per element)
    // and dB = Aᵀ·M runs packed-transpose + the NN kernel (fmadd chains
    // ascending over the row index).
    for (si, &(m, k, n)) in SHAPES.iter().enumerate() {
        let (a0, b0) = seeded_pair(m, k, n, 60 + si as u64);
        let mut rng = seeded_rng(80 + si as u64);
        let mask = Tensor::randn([m, n], 1.0, &mut rng);
        let g = mask.to_vec();

        let mut want_da = vec![0.0f32; m * k];
        for i in 0..m {
            for kk in 0..k {
                want_da[i * k + kk] =
                    dot_lanes_reference(&g[i * n..(i + 1) * n], &b0[kk * n..(kk + 1) * n]);
            }
        }
        let mut want_db = vec![0.0f32; k * n];
        for kk in 0..k {
            for j in 0..n {
                let mut acc = 0.0f32;
                for i in 0..m {
                    acc = fmadd(a0[i * k + kk], g[i * n + j], acc);
                }
                want_db[kk * n + j] = acc;
            }
        }

        for threads in [1, 2, 5] {
            let (da, db) = with_threads(threads, || {
                with_simd(true, || {
                    let a = Tensor::param(a0.clone(), [m, k]);
                    let b = Tensor::param(b0.clone(), [k, n]);
                    a.matmul(&b).mul(&mask).sum().backward();
                    (a.grad().expect("dA"), b.grad().expect("dB"))
                })
            });
            assert_bits_eq(
                &da,
                &want_da,
                &format!("NT dA {m}x{k}x{n} threads={threads}"),
            );
            assert_bits_eq(
                &db,
                &want_db,
                &format!("TN dB {m}x{k}x{n} threads={threads}"),
            );
        }
    }
}

#[test]
fn scalar_mode_matches_legacy_reference_at_all_threads() {
    for (si, &(m, k, n)) in SHAPES.iter().enumerate() {
        let (a0, b0) = seeded_pair(m, k, n, 120 + si as u64);
        let want = nn_legacy_reference(&a0, &b0, m, k, n);
        let a = Tensor::from_vec(a0, [m, k]);
        let b = Tensor::from_vec(b0, [k, n]);
        for threads in [1, 2, 5] {
            let got = with_threads(threads, || with_simd(false, || a.matmul(&b).to_vec()));
            assert_bits_eq(
                &got,
                &want,
                &format!("scalar NN {m}x{k}x{n} threads={threads}"),
            );
        }
    }
}

#[test]
fn scalar_mode_gradients_are_thread_invariant() {
    // The legacy gradient kernels keep their own pinned order; assert the
    // off-mode path is still bitwise thread-invariant end to end.
    let (m, k, n) = (80, 64, 72);
    let (a0, b0) = seeded_pair(m, k, n, 200);
    let mut rng = seeded_rng(201);
    let mask = Tensor::randn([m, n], 1.0, &mut rng);
    let run = || {
        with_simd(false, || {
            let a = Tensor::param(a0.clone(), [m, k]);
            let b = Tensor::param(b0.clone(), [k, n]);
            a.matmul(&b).mul(&mask).sum().backward();
            (a.grad().expect("dA"), b.grad().expect("dB"))
        })
    };
    let (da1, db1) = with_threads(1, run);
    for threads in [2, 5] {
        let (da, db) = with_threads(threads, run);
        assert_bits_eq(&da, &da1, &format!("scalar dA threads={threads}"));
        assert_bits_eq(&db, &db1, &format!("scalar dB threads={threads}"));
    }
}

#[test]
fn int8_round_trip_error_is_bounded_on_seeded_matrices() {
    // Property-style sweep: per-column absmax quantization must
    // reconstruct every weight within half a code step of its column
    // scale, for a range of magnitudes and shapes.
    use timekd_tensor::QuantizedMatrix;
    for (si, &(k, n)) in [(7usize, 5usize), (32, 9), (64, 3), (1, 1), (128, 16)]
        .iter()
        .enumerate()
    {
        let mut rng = seeded_rng(300 + si as u64);
        let scale = 10.0f32.powi(si as i32 - 2);
        let w = Tensor::randn([k, n], scale, &mut rng).to_vec();
        let q = QuantizedMatrix::quantize(&w, k, n);
        let back = q.dequantize();
        for j in 0..n {
            let half_step = q.scales()[j] * 0.5 + 1e-12;
            for kk in 0..k {
                let err = (back[kk * n + j] - w[kk * n + j]).abs();
                assert!(
                    err <= half_step,
                    "shape {k}x{n} col {j} row {kk}: err {err} > half step {half_step}"
                );
            }
        }
    }
}
