//! Bitwise determinism of the parallel matmul kernels.
//!
//! The contract (see `timekd_tensor::parallel`): kernels partition work by
//! disjoint output blocks, every row is computed by the same serial code
//! regardless of the split, so results under any thread count are **bitwise
//! identical** to the serial path (`with_threads(1)`, the in-process
//! equivalent of `TIMEKD_THREADS=1`). These tests run forward and both
//! gradient kernels across rectangular, batched and 3d×2d shapes — all
//! sized above the parallel cutoff so the pool genuinely engages — and
//! compare exact bit patterns, not tolerances.

use timekd_tensor::parallel::{block_ranges, with_threads};
use timekd_tensor::{seeded_rng, Tensor};

/// Bitwise comparison: f32 equality would conflate 0.0 and -0.0 and choke
/// on NaN; comparing the raw bits is the actual determinism claim.
fn assert_bits_eq(a: &[f32], b: &[f32], what: &str) {
    assert_eq!(a.len(), b.len(), "{what}: length mismatch");
    for (i, (x, y)) in a.iter().zip(b).enumerate() {
        assert_eq!(
            x.to_bits(),
            y.to_bits(),
            "{what}: bit mismatch at {i}: {x} vs {y}"
        );
    }
}

/// Runs `f` serially and under several parallel thread counts (including
/// deliberately awkward ones) and asserts every returned buffer set is
/// bitwise identical to the serial one.
fn check_thread_invariance(what: &str, f: impl Fn() -> Vec<Vec<f32>>) {
    let serial = with_threads(1, &f);
    for threads in [2, 3, 4, 7] {
        let parallel = with_threads(threads, &f);
        assert_eq!(serial.len(), parallel.len());
        for (s, p) in serial.iter().zip(&parallel) {
            assert_bits_eq(s, p, &format!("{what} (threads={threads})"));
        }
    }
}

#[test]
fn forward_2d_rectangular_is_thread_invariant() {
    // 67×64 @ 64×70: above the parallel cutoff, with row/col counts that
    // do not divide evenly by any tested thread count or by the 4-wide
    // register blocking.
    let mut rng = seeded_rng(11);
    let a = Tensor::randn([67, 64], 1.0, &mut rng);
    let b = Tensor::randn([64, 70], 1.0, &mut rng);
    check_thread_invariance("matmul_2d forward", || vec![a.matmul(&b).to_vec()]);
}

#[test]
fn gradients_2d_are_thread_invariant() {
    // Loss = sum(A@B ⊙ M) with a random mask so both gradient kernels
    // (gA = gC@Bᵀ via NT, gB = Aᵀ@gC via TN) see non-uniform upstream
    // gradients at parallel-worthy sizes.
    let mut rng = seeded_rng(12);
    let a0 = Tensor::randn([67, 64], 1.0, &mut rng).to_vec();
    let b0 = Tensor::randn([64, 70], 1.0, &mut rng).to_vec();
    let mask = Tensor::randn([67, 70], 1.0, &mut rng);
    check_thread_invariance("matmul_2d gradients", || {
        let a = Tensor::param(a0.clone(), [67, 64]);
        let b = Tensor::param(b0.clone(), [64, 70]);
        a.matmul(&b).mul(&mask).sum().backward();
        vec![a.grad().expect("gA"), b.grad().expect("gB")]
    });
}

#[test]
fn forward_and_grad_batched_are_thread_invariant() {
    // 5 batches: more batches than some tested thread counts and fewer
    // than others, so both branches of the batch-axis scheduler run.
    let mut rng = seeded_rng(13);
    let a0 = Tensor::randn([5, 40, 64], 1.0, &mut rng).to_vec();
    let b0 = Tensor::randn([5, 64, 41], 1.0, &mut rng).to_vec();
    let mask = Tensor::randn([5, 40, 41], 1.0, &mut rng);
    check_thread_invariance("matmul_batched forward+grad", || {
        let a = Tensor::param(a0.clone(), [5, 40, 64]);
        let b = Tensor::param(b0.clone(), [5, 64, 41]);
        let c = a.matmul(&b);
        let out = c.to_vec();
        c.mul(&mask).sum().backward();
        vec![out, a.grad().expect("gA"), b.grad().expect("gB")]
    });
}

#[test]
fn forward_and_grad_3d_2d_are_thread_invariant() {
    // [4, 33, 64] @ [64, 40] runs as one [132, 64] @ [64, 40] product; the
    // gB kernel contracts over all 132 flattened rows.
    let mut rng = seeded_rng(14);
    let x0 = Tensor::randn([4, 33, 64], 1.0, &mut rng).to_vec();
    let w0 = Tensor::randn([64, 40], 1.0, &mut rng).to_vec();
    let mask = Tensor::randn([4, 33, 40], 1.0, &mut rng);
    check_thread_invariance("matmul_3d_2d forward+grad", || {
        let x = Tensor::param(x0.clone(), [4, 33, 64]);
        let w = Tensor::param(w0.clone(), [64, 40]);
        let y = x.matmul(&w);
        let out = y.to_vec();
        y.mul(&mask).sum().backward();
        vec![out, x.grad().expect("gX"), w.grad().expect("gW")]
    });
}

#[test]
fn seeded_shape_sweep_is_thread_invariant() {
    // Seeded property-style sweep over rectangular geometries, including
    // k % 4 tails, single-row and single-column extremes.
    let shapes: [(usize, usize, usize); 6] = [
        (64, 65, 66),
        (127, 33, 65),
        (1, 70, 4096),
        (130, 64, 1),
        (96, 2, 2048),
        (65, 127, 35),
    ];
    for (si, &(m, k, n)) in shapes.iter().enumerate() {
        let mut rng = seeded_rng(100 + si as u64);
        let a = Tensor::randn([m, k], 1.0, &mut rng);
        let b = Tensor::randn([k, n], 1.0, &mut rng);
        check_thread_invariance(&format!("sweep {m}x{k}x{n}"), || {
            vec![a.matmul(&b).to_vec()]
        });
    }
}

/// Parallel-worthy fused-attention geometry: `H·T_q·T_k·dh = 4·80·80·32 =
/// 819 200 ≥ 64³`, so the pool genuinely engages under every tested thread
/// count; 80 rows also split unevenly across 3 and 7 threads.
const ATTN: (usize, usize, usize, usize) = (4, 80, 80, 32);

fn attn_inputs(seed: u64) -> (Vec<f32>, Vec<f32>, Vec<f32>, Tensor) {
    let (h, tq, tk, dh) = ATTN;
    let mut rng = seeded_rng(seed);
    (
        Tensor::randn([h, tq, dh], 0.5, &mut rng).to_vec(),
        Tensor::randn([h, tk, dh], 0.5, &mut rng).to_vec(),
        Tensor::randn([h, tk, dh], 0.5, &mut rng).to_vec(),
        Tensor::randn([tq, tk], 0.5, &mut rng),
    )
}

#[test]
fn fused_attention_forward_is_thread_invariant() {
    let (h, tq, tk, dh) = ATTN;
    let (q0, k0, v0, mask) = attn_inputs(21);
    let q = Tensor::from_vec(q0, [h, tq, dh]);
    let k = Tensor::from_vec(k0, [h, tk, dh]);
    let v = Tensor::from_vec(v0, [h, tk, dh]);
    check_thread_invariance("fused_attention forward", || {
        let (out, map) = Tensor::fused_attention(&q, &k, &v, Some(&mask));
        vec![out.to_vec(), map.to_vec()]
    });
}

#[test]
fn fused_attention_backward_is_thread_invariant() {
    // Loss touches both outputs (merged context and averaged map), so the
    // two independent backward closures — and both passes of each — run.
    let (h, tq, tk, dh) = ATTN;
    let (q0, k0, v0, mask) = attn_inputs(22);
    check_thread_invariance("fused_attention backward", || {
        let q = Tensor::param(q0.clone(), [h, tq, dh]);
        let k = Tensor::param(k0.clone(), [h, tk, dh]);
        let v = Tensor::param(v0.clone(), [h, tk, dh]);
        let (out, map) = Tensor::fused_attention(&q, &k, &v, Some(&mask));
        out.square().sum().add(&map.square().sum()).backward();
        vec![
            q.grad().expect("dq"),
            k.grad().expect("dk"),
            v.grad().expect("dv"),
        ]
    });
}

#[test]
fn fused_attention_epoch_is_thread_invariant() {
    // End-to-end mini-epoch: several SGD steps where each iteration's
    // inputs are the previous iteration's updated parameters, so any
    // nondeterministic bit anywhere would compound and show up in the final
    // weights. Threads {1, 4} per the issue spec (the per-op tests above
    // cover the awkward counts).
    let (h, tq, tk, dh) = ATTN;
    let (q0, k0, v0, mask) = attn_inputs(23);
    let run_epoch = || {
        let q = Tensor::param(q0.clone(), [h, tq, dh]);
        let k = Tensor::param(k0.clone(), [h, tk, dh]);
        let v = Tensor::param(v0.clone(), [h, tk, dh]);
        for _ in 0..3 {
            let (out, map) = Tensor::fused_attention(&q, &k, &v, Some(&mask));
            out.square().mean().add(&map.square().mean()).backward();
            for p in [&q, &k, &v] {
                let g = p.grad().expect("grad after backward");
                let mut w = p.to_vec();
                for (wi, gi) in w.iter_mut().zip(&g) {
                    *wi -= 0.05 * gi;
                }
                p.copy_from_slice(&w);
                p.zero_grad();
            }
        }
        vec![q.to_vec(), k.to_vec(), v.to_vec()]
    };
    let serial = with_threads(1, run_epoch);
    let parallel = with_threads(4, run_epoch);
    for (i, (s, p)) in serial.iter().zip(&parallel).enumerate() {
        assert_bits_eq(s, p, &format!("fused_attention epoch param {i}"));
    }
}

#[test]
fn odd_row_split_covers_every_row_exactly_once() {
    // The issue's adversarial case: 7 rows over 4 threads must cover every
    // row exactly once with contiguous, ordered, non-overlapping blocks.
    let ranges = block_ranges(7, 4);
    assert_eq!(ranges, vec![(0, 2), (2, 4), (4, 6), (6, 7)]);

    // And in general: any (rows, threads) split partitions 0..rows.
    for rows in 1..40 {
        for threads in 1..9 {
            let ranges = block_ranges(rows, threads);
            let mut covered = vec![0u32; rows];
            let mut prev_end = 0;
            for &(s, e) in &ranges {
                assert_eq!(s, prev_end, "blocks must be contiguous and ordered");
                assert!(e > s, "no empty blocks");
                for slot in &mut covered[s..e] {
                    *slot += 1;
                }
                prev_end = e;
            }
            assert_eq!(prev_end, rows);
            assert!(
                covered.iter().all(|&c| c == 1),
                "rows={rows} threads={threads}: {ranges:?}"
            );
        }
    }
}
