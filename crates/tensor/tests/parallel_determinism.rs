//! Bitwise determinism of the parallel matmul kernels.
//!
//! The contract (see `timekd_tensor::parallel`): kernels partition work by
//! disjoint output blocks, every row is computed by the same serial code
//! regardless of the split, so results under any thread count are **bitwise
//! identical** to the serial path (`with_threads(1)`, the in-process
//! equivalent of `TIMEKD_THREADS=1`). These tests run forward and both
//! gradient kernels across rectangular, batched and 3d×2d shapes — all
//! sized above the parallel cutoff so the pool genuinely engages — and
//! compare exact bit patterns, not tolerances.

use timekd_tensor::parallel::{block_ranges, with_threads};
use timekd_tensor::{seeded_rng, Tensor};

/// Bitwise comparison: f32 equality would conflate 0.0 and -0.0 and choke
/// on NaN; comparing the raw bits is the actual determinism claim.
fn assert_bits_eq(a: &[f32], b: &[f32], what: &str) {
    assert_eq!(a.len(), b.len(), "{what}: length mismatch");
    for (i, (x, y)) in a.iter().zip(b).enumerate() {
        assert_eq!(
            x.to_bits(),
            y.to_bits(),
            "{what}: bit mismatch at {i}: {x} vs {y}"
        );
    }
}

/// Runs `f` serially and under several parallel thread counts (including
/// deliberately awkward ones) and asserts every returned buffer set is
/// bitwise identical to the serial one.
fn check_thread_invariance(what: &str, f: impl Fn() -> Vec<Vec<f32>>) {
    let serial = with_threads(1, &f);
    for threads in [2, 3, 4, 7] {
        let parallel = with_threads(threads, &f);
        assert_eq!(serial.len(), parallel.len());
        for (s, p) in serial.iter().zip(&parallel) {
            assert_bits_eq(s, p, &format!("{what} (threads={threads})"));
        }
    }
}

#[test]
fn forward_2d_rectangular_is_thread_invariant() {
    // 67×64 @ 64×70: above the parallel cutoff, with row/col counts that
    // do not divide evenly by any tested thread count or by the 4-wide
    // register blocking.
    let mut rng = seeded_rng(11);
    let a = Tensor::randn([67, 64], 1.0, &mut rng);
    let b = Tensor::randn([64, 70], 1.0, &mut rng);
    check_thread_invariance("matmul_2d forward", || vec![a.matmul(&b).to_vec()]);
}

#[test]
fn gradients_2d_are_thread_invariant() {
    // Loss = sum(A@B ⊙ M) with a random mask so both gradient kernels
    // (gA = gC@Bᵀ via NT, gB = Aᵀ@gC via TN) see non-uniform upstream
    // gradients at parallel-worthy sizes.
    let mut rng = seeded_rng(12);
    let a0 = Tensor::randn([67, 64], 1.0, &mut rng).to_vec();
    let b0 = Tensor::randn([64, 70], 1.0, &mut rng).to_vec();
    let mask = Tensor::randn([67, 70], 1.0, &mut rng);
    check_thread_invariance("matmul_2d gradients", || {
        let a = Tensor::param(a0.clone(), [67, 64]);
        let b = Tensor::param(b0.clone(), [64, 70]);
        a.matmul(&b).mul(&mask).sum().backward();
        vec![a.grad().expect("gA"), b.grad().expect("gB")]
    });
}

#[test]
fn forward_and_grad_batched_are_thread_invariant() {
    // 5 batches: more batches than some tested thread counts and fewer
    // than others, so both branches of the batch-axis scheduler run.
    let mut rng = seeded_rng(13);
    let a0 = Tensor::randn([5, 40, 64], 1.0, &mut rng).to_vec();
    let b0 = Tensor::randn([5, 64, 41], 1.0, &mut rng).to_vec();
    let mask = Tensor::randn([5, 40, 41], 1.0, &mut rng);
    check_thread_invariance("matmul_batched forward+grad", || {
        let a = Tensor::param(a0.clone(), [5, 40, 64]);
        let b = Tensor::param(b0.clone(), [5, 64, 41]);
        let c = a.matmul(&b);
        let out = c.to_vec();
        c.mul(&mask).sum().backward();
        vec![out, a.grad().expect("gA"), b.grad().expect("gB")]
    });
}

#[test]
fn forward_and_grad_3d_2d_are_thread_invariant() {
    // [4, 33, 64] @ [64, 40] runs as one [132, 64] @ [64, 40] product; the
    // gB kernel contracts over all 132 flattened rows.
    let mut rng = seeded_rng(14);
    let x0 = Tensor::randn([4, 33, 64], 1.0, &mut rng).to_vec();
    let w0 = Tensor::randn([64, 40], 1.0, &mut rng).to_vec();
    let mask = Tensor::randn([4, 33, 40], 1.0, &mut rng);
    check_thread_invariance("matmul_3d_2d forward+grad", || {
        let x = Tensor::param(x0.clone(), [4, 33, 64]);
        let w = Tensor::param(w0.clone(), [64, 40]);
        let y = x.matmul(&w);
        let out = y.to_vec();
        y.mul(&mask).sum().backward();
        vec![out, x.grad().expect("gX"), w.grad().expect("gW")]
    });
}

#[test]
fn seeded_shape_sweep_is_thread_invariant() {
    // Seeded property-style sweep over rectangular geometries, including
    // k % 4 tails, single-row and single-column extremes.
    let shapes: [(usize, usize, usize); 6] = [
        (64, 65, 66),
        (127, 33, 65),
        (1, 70, 4096),
        (130, 64, 1),
        (96, 2, 2048),
        (65, 127, 35),
    ];
    for (si, &(m, k, n)) in shapes.iter().enumerate() {
        let mut rng = seeded_rng(100 + si as u64);
        let a = Tensor::randn([m, k], 1.0, &mut rng);
        let b = Tensor::randn([k, n], 1.0, &mut rng);
        check_thread_invariance(&format!("sweep {m}x{k}x{n}"), || {
            vec![a.matmul(&b).to_vec()]
        });
    }
}

#[test]
fn odd_row_split_covers_every_row_exactly_once() {
    // The issue's adversarial case: 7 rows over 4 threads must cover every
    // row exactly once with contiguous, ordered, non-overlapping blocks.
    let ranges = block_ranges(7, 4);
    assert_eq!(ranges, vec![(0, 2), (2, 4), (4, 6), (6, 7)]);

    // And in general: any (rows, threads) split partitions 0..rows.
    for rows in 1..40 {
        for threads in 1..9 {
            let ranges = block_ranges(rows, threads);
            let mut covered = vec![0u32; rows];
            let mut prev_end = 0;
            for &(s, e) in &ranges {
                assert_eq!(s, prev_end, "blocks must be contiguous and ordered");
                assert!(e > s, "no empty blocks");
                for slot in &mut covered[s..e] {
                    *slot += 1;
                }
                prev_end = e;
            }
            assert_eq!(prev_end, rows);
            assert!(
                covered.iter().all(|&c| c == 1),
                "rows={rows} threads={threads}: {ranges:?}"
            );
        }
    }
}
