//! # timekd-tensor
//!
//! A small, dependency-light CPU tensor library with reverse-mode autograd,
//! built as the numerical substrate of the TimeKD reproduction.
//!
//! Features:
//! - dense row-major f32 tensors of arbitrary rank ([`Tensor`], [`Shape`]);
//! - NumPy-style broadcasting for all element-wise ops;
//! - 2-D, batched 3-D, and `[B, M, K] @ [K, N]` matrix products;
//! - reductions, numerically stable softmax / log-softmax / cross-entropy,
//!   the Smooth-L1 loss of the TimeKD paper (Eq. 17), and the activations
//!   its models use (ReLU, GELU, tanh, sigmoid);
//! - shape surgery (reshape, permute, slice, concat, gather) with exact
//!   gradient scatter;
//! - reverse-mode autodiff over the recorded DAG with a [`no_grad`]
//!   inference scope;
//! - deterministic kernel-level parallelism: the dense matmul kernels fan
//!   out over a persistent worker pool ([`parallel`], sized by
//!   `TIMEKD_THREADS`) while the graph itself stays single-threaded, and
//!   parallel results are bitwise identical to serial ones;
//! - explicit-width `f32x8` microkernels ([`simd`]) with a pinned
//!   lane-blocked reduction order and a full scalar fallback
//!   (`TIMEKD_SIMD=off`), plus an int8 per-column-absmax quantized matmul
//!   path for student inference ([`QuantizedMatrix`]);
//! - seedable initialisers and finite-difference gradient-check utilities;
//! - a compact binary tensor format for model checkpoints ([`io`]);
//! - graph introspection and auditing ([`GraphAudit`]) plus an opt-in
//!   numeric sanitizer (`--features sanitize`) that traps NaN outputs at
//!   the op that produced them and prints its provenance chain.
//!
//! ## Example
//!
//! ```
//! use timekd_tensor::{seeded_rng, Tensor};
//!
//! let mut rng = seeded_rng(0);
//! let w = Tensor::xavier_uniform([3, 2], &mut rng);
//! let x = Tensor::randn([4, 3], 1.0, &mut rng);
//! let loss = x.matmul(&w).square().mean();
//! loss.backward();
//! assert_eq!(w.grad().unwrap().len(), 6);
//! ```

#![deny(
    unused_must_use,
    unused_imports,
    unused_variables,
    dead_code,
    unreachable_patterns,
    missing_debug_implementations
)]
#![warn(missing_docs)]

pub mod audit;
pub mod bytes;
mod grad_check;
mod init;
pub mod io;
mod ops;
pub mod parallel;
pub mod plan;
pub mod plan_batch;
pub mod plan_train;
pub mod rng;
#[cfg(feature = "sanitize")]
pub mod sanitize;
mod shape;
pub mod simd;
pub mod symbolic;
mod tensor;

pub use audit::{AuditIssue, GraphAudit, GraphStats, NodeSummary};
pub use grad_check::{assert_gradients_close, check_gradient, GradCheckReport};
pub use init::{sample_standard_normal, seeded_rng};
pub use ops::qmm::QuantizedMatrix;
pub use plan::{
    Plan, PlanError, PlanExecutor, PlanFault, PlanOp, PlanSlot, PlanSpec, PlanStep, PlanValue,
    Precision, ValueId, ValueSource,
};
pub use plan_batch::{BatchTrainExecutor, ReduceStep};
pub use plan_train::{BwdStep, GradMode, PlanOptimizer, TrainExecutor, TrainSpec, UpdateStep};
pub use rng::SeededRng;
pub use shape::{IndexIter, Shape};
pub use simd::{simd_enabled, with_simd, F32x8};
pub use symbolic::{
    find_path, graph_stats, reachable_params, render_dims, ShapeError, SymCtx, SymDim,
    SymGraphStats, SymbolicTensor,
};
pub use tensor::{is_grad_disabled, no_grad, Tensor};
