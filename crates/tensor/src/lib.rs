//! # timekd-tensor
//!
//! A small, dependency-light CPU tensor library with reverse-mode autograd,
//! built as the numerical substrate of the TimeKD reproduction.
//!
//! Features:
//! - dense row-major f32 tensors of arbitrary rank ([`Tensor`], [`Shape`]);
//! - NumPy-style broadcasting for all element-wise ops;
//! - 2-D, batched 3-D, and `[B, M, K] @ [K, N]` matrix products;
//! - reductions, numerically stable softmax / log-softmax / cross-entropy,
//!   the Smooth-L1 loss of the TimeKD paper (Eq. 17), and the activations
//!   its models use (ReLU, GELU, tanh, sigmoid);
//! - shape surgery (reshape, permute, slice, concat, gather) with exact
//!   gradient scatter;
//! - reverse-mode autodiff over the recorded DAG with a [`no_grad`]
//!   inference scope;
//! - seedable initialisers and finite-difference gradient-check utilities;
//! - a compact binary tensor format for model checkpoints ([`io`]).
//!
//! ## Example
//!
//! ```
//! use timekd_tensor::{seeded_rng, Tensor};
//!
//! let mut rng = seeded_rng(0);
//! let w = Tensor::xavier_uniform([3, 2], &mut rng);
//! let x = Tensor::randn([4, 3], 1.0, &mut rng);
//! let loss = x.matmul(&w).square().mean();
//! loss.backward();
//! assert_eq!(w.grad().unwrap().len(), 6);
//! ```

mod grad_check;
mod init;
pub mod io;
mod ops;
mod shape;
mod tensor;

pub use grad_check::{assert_gradients_close, check_gradient, GradCheckReport};
pub use init::{sample_standard_normal, seeded_rng};
pub use shape::{IndexIter, Shape};
pub use tensor::{is_grad_disabled, no_grad, Tensor};
