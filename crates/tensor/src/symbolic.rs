//! Symbolic graph IR: shape inference and gradient-flow analysis without
//! executing kernels.
//!
//! A [`SymbolicTensor`] mirrors one autograd node — op name, shape, parents,
//! `requires_grad` — but carries *named* dimensions ([`SymDim`]) instead of
//! data, so a whole model forward can be traced in microseconds and
//! type-checked for every configuration. The op set matches the real
//! [`Tensor`](crate::Tensor) ops one-for-one, including the tracking rule of
//! `Tensor::from_op`: a node produced under [`SymCtx::no_grad`] or with no
//! grad-requiring parent records no *gradient* edges (it becomes a frontier
//! leaf exactly as the real engine's untracked nodes do), though full
//! provenance parents are always retained for error messages.
//!
//! Three analyses build on the IR:
//! - every op returns `Result<_, ShapeError>`, so shape inference is the
//!   trace itself — a mismatch surfaces with a provenance chain naming the
//!   offending op;
//! - [`reachable_params`] walks gradient edges from a loss root, yielding
//!   the set of parameters the backward pass would update — the basis for
//!   loss→parameter flow matrices and frozen-parameter proofs;
//! - [`graph_stats`] reproduces the counts of the dynamic
//!   [`GraphAudit`](crate::GraphAudit) (nodes, edges, leaves, params, depth)
//!   so symbolic and executed graphs can be cross-checked for agreement.

use std::cell::RefCell;
use std::collections::{HashMap, HashSet};
use std::fmt;
use std::rc::Rc;

/// A named symbolic dimension with a concrete size for the configuration
/// being verified, e.g. `d_model(32)` or `N(7)`.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct SymDim {
    /// Human-readable dimension name (`"B"`, `"L"`, `"N"`, `"d_model"`, …).
    pub name: String,
    /// Concrete size under the traced configuration.
    pub size: usize,
}

impl SymDim {
    /// Builds a named dimension.
    pub fn new(name: impl Into<String>, size: usize) -> SymDim {
        SymDim {
            name: name.into(),
            size,
        }
    }

    /// An anonymous dimension (shown as just its size).
    pub fn anon(size: usize) -> SymDim {
        SymDim {
            name: String::new(),
            size,
        }
    }
}

impl fmt::Display for SymDim {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.name.is_empty() {
            write!(f, "{}", self.size)
        } else {
            write!(f, "{}({})", self.name, self.size)
        }
    }
}

/// Renders a symbolic shape as `[L(96), d_model(32)]`.
pub fn render_dims(dims: &[SymDim]) -> String {
    let parts: Vec<String> = dims.iter().map(|d| d.to_string()).collect();
    format!("[{}]", parts.join(", "))
}

/// A static shape-inference failure, carrying the op that rejected its
/// inputs and the provenance chain that produced them.
#[derive(Clone, Debug)]
pub struct ShapeError {
    /// Op that rejected its inputs.
    pub op: String,
    /// Component label of the op (e.g. `"teacher.sca.phi_q"`).
    pub label: String,
    /// Human-readable description of the mismatch.
    pub message: String,
    /// First-parent lineage of the offending inputs, outermost first.
    pub provenance: Vec<String>,
}

impl ShapeError {
    fn new(op: &str, label: &str, message: String, inputs: &[&SymbolicTensor]) -> ShapeError {
        let mut provenance = Vec::new();
        for t in inputs {
            provenance.extend(t.provenance_lines(8));
        }
        ShapeError {
            op: op.to_string(),
            label: label.to_string(),
            message,
            provenance,
        }
    }
}

impl fmt::Display for ShapeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "shape error in `{}` at `{}`: {}",
            self.op, self.label, self.message
        )?;
        for line in &self.provenance {
            writeln!(f, "    {line}")?;
        }
        Ok(())
    }
}

impl std::error::Error for ShapeError {}

/// Static operand payload recorded on a symbolic node — the part of an
/// op's semantics that is not captured by shapes alone. The plan compiler
/// ([`crate::plan`]) needs these to lower a traced graph into executable
/// steps; ops whose behaviour is fully determined by input/output shapes
/// record [`SymAttr::None`].
#[derive(Clone, Debug, PartialEq)]
pub enum SymAttr {
    /// No payload beyond the shapes.
    None,
    /// Scalar operand of `add_scalar` / `mul_scalar` (and therefore of the
    /// `mean` family, which lowers to `sum` + `mul_scalar(1/n)` exactly as
    /// the real kernels do).
    Scalar(f32),
    /// Reduced axis of `sum_axis`.
    Axis {
        /// Axis index in the input shape.
        axis: usize,
        /// Whether the axis is kept with size 1.
        keepdim: bool,
    },
    /// Axis order of `permute`.
    Perm(Vec<usize>),
}

struct SymNode {
    id: u64,
    op: &'static str,
    label: String,
    dims: Vec<SymDim>,
    attr: SymAttr,
    /// Full provenance parents — always recorded, even when untracked.
    parents: Vec<SymbolicTensor>,
    /// Mirrors `Tensor::requires_grad` under the `from_op` tracking rule.
    requires_grad: bool,
    /// Mirrors `backward.is_some()`: true only for tracked op nodes.
    has_backward: bool,
    /// True for trainable leaves registered via [`SymCtx::param`].
    is_param: bool,
    /// True for parameters created inside a [`SymCtx::frozen`] scope.
    pub(crate) frozen: bool,
}

/// A node of the symbolic graph. Cheap to clone (reference-counted).
#[derive(Clone)]
pub struct SymbolicTensor {
    node: Rc<SymNode>,
    ctx: SymCtx,
}

impl fmt::Debug for SymbolicTensor {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "#{} {} {} @{}",
            self.node.id,
            self.node.op,
            render_dims(&self.node.dims),
            self.node.label
        )
    }
}

struct CtxInner {
    next_id: u64,
    no_grad_depth: usize,
    frozen_depth: usize,
    scope: Vec<String>,
    params: Vec<SymbolicTensor>,
}

/// Tracing context: id allocation, `no_grad`/frozen scopes, component
/// labels, and the registry of parameters created during the trace.
#[derive(Clone)]
pub struct SymCtx {
    inner: Rc<RefCell<CtxInner>>,
}

impl fmt::Debug for SymCtx {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let inner = self.inner.borrow();
        write!(
            f,
            "SymCtx {{ nodes: {}, params: {} }}",
            inner.next_id,
            inner.params.len()
        )
    }
}

impl Default for SymCtx {
    fn default() -> Self {
        SymCtx::new()
    }
}

impl SymCtx {
    /// Fresh context with no nodes.
    pub fn new() -> SymCtx {
        SymCtx {
            inner: Rc::new(RefCell::new(CtxInner {
                next_id: 0,
                no_grad_depth: 0,
                frozen_depth: 0,
                scope: Vec::new(),
                params: Vec::new(),
            })),
        }
    }

    fn next_id(&self) -> u64 {
        let mut inner = self.inner.borrow_mut();
        let id = inner.next_id;
        inner.next_id += 1;
        id
    }

    fn grad_disabled(&self) -> bool {
        self.inner.borrow().no_grad_depth > 0
    }

    fn current_label(&self) -> String {
        self.inner.borrow().scope.join(".")
    }

    fn scoped_label(&self, name: &str) -> String {
        let base = self.current_label();
        if base.is_empty() {
            name.to_string()
        } else if name.is_empty() {
            base
        } else {
            format!("{base}.{name}")
        }
    }

    /// Runs `f` with `name` pushed onto the component-label scope, so nodes
    /// created inside report labels like `student.encoder.layer0.ln1`.
    pub fn scoped<R>(&self, name: &str, f: impl FnOnce() -> R) -> R {
        self.inner.borrow_mut().scope.push(name.to_string());
        let out = f();
        self.inner.borrow_mut().scope.pop();
        out
    }

    /// Runs `f` with the scope replaced by the absolute `path`. Module
    /// mirrors capture their construction path and re-enter it in their
    /// forward methods so ops report the same component labels as the
    /// parameters they touch.
    pub fn with_label<R>(&self, path: &str, f: impl FnOnce() -> R) -> R {
        let saved = std::mem::take(&mut self.inner.borrow_mut().scope);
        if !path.is_empty() {
            self.inner.borrow_mut().scope.push(path.to_string());
        }
        let out = f();
        self.inner.borrow_mut().scope = saved;
        out
    }

    /// The current component label (joined scope stack).
    pub fn label(&self) -> String {
        self.current_label()
    }

    /// Joins the current scope with `name` (how leaf labels are formed).
    pub fn label_for(&self, name: &str) -> String {
        self.scoped_label(name)
    }

    /// Runs `f` with gradient tracking disabled, mirroring
    /// [`no_grad`](crate::no_grad): ops created inside record no gradient
    /// edges and do not require grad.
    pub fn no_grad<R>(&self, f: impl FnOnce() -> R) -> R {
        self.inner.borrow_mut().no_grad_depth += 1;
        let out = f();
        self.inner.borrow_mut().no_grad_depth -= 1;
        out
    }

    /// Runs `f` with the frozen flag set: parameters created inside are
    /// marked frozen (e.g. the pretrained CLM weights), which the
    /// gradient-flow pass uses to prove no loss can update them.
    pub fn frozen<R>(&self, f: impl FnOnce() -> R) -> R {
        self.inner.borrow_mut().frozen_depth += 1;
        let out = f();
        self.inner.borrow_mut().frozen_depth -= 1;
        out
    }

    fn leaf(
        &self,
        op: &'static str,
        name: &str,
        dims: Vec<SymDim>,
        is_param: bool,
    ) -> SymbolicTensor {
        let frozen = self.inner.borrow().frozen_depth > 0;
        let t = SymbolicTensor {
            node: Rc::new(SymNode {
                id: self.next_id(),
                op,
                label: self.scoped_label(name),
                dims,
                attr: SymAttr::None,
                parents: Vec::new(),
                // `Tensor::param` sets requires_grad unconditionally.
                requires_grad: is_param,
                has_backward: false,
                is_param,
                frozen,
            }),
            ctx: self.clone(),
        };
        if is_param {
            self.inner.borrow_mut().params.push(t.clone());
        }
        t
    }

    /// Registers a trainable parameter leaf (mirrors `Tensor::param`).
    pub fn param(&self, name: &str, dims: Vec<SymDim>) -> SymbolicTensor {
        self.leaf("param", name, dims, true)
    }

    /// Creates a constant leaf (mirrors `Tensor::from_vec`).
    pub fn constant(&self, name: &str, dims: Vec<SymDim>) -> SymbolicTensor {
        self.leaf("leaf", name, dims, false)
    }

    /// Scalar constant leaf (mirrors `Tensor::scalar`).
    pub fn scalar(&self, name: &str) -> SymbolicTensor {
        self.leaf("leaf", name, Vec::new(), false)
    }

    /// All parameters registered during the trace, in creation order.
    pub fn params(&self) -> Vec<SymbolicTensor> {
        self.inner.borrow().params.clone()
    }
}

type SymResult = Result<SymbolicTensor, ShapeError>;

impl SymbolicTensor {
    fn from_op(
        ctx: &SymCtx,
        op: &'static str,
        dims: Vec<SymDim>,
        parents: Vec<SymbolicTensor>,
    ) -> SymbolicTensor {
        SymbolicTensor::from_op_attr(ctx, op, dims, parents, SymAttr::None)
    }

    fn from_op_attr(
        ctx: &SymCtx,
        op: &'static str,
        dims: Vec<SymDim>,
        parents: Vec<SymbolicTensor>,
        attr: SymAttr,
    ) -> SymbolicTensor {
        // Mirrors `Tensor::from_op`: track only outside no_grad and when
        // some parent requires grad. Untracked nodes keep provenance
        // parents but expose no gradient edges.
        let track = !ctx.grad_disabled() && parents.iter().any(|p| p.node.requires_grad);
        SymbolicTensor {
            node: Rc::new(SymNode {
                id: ctx.next_id(),
                op,
                label: ctx.current_label(),
                dims,
                attr,
                parents,
                requires_grad: track,
                has_backward: track,
                is_param: false,
                frozen: false,
            }),
            ctx: ctx.clone(),
        }
    }

    /// Unique node id within its context.
    pub fn id(&self) -> u64 {
        self.node.id
    }

    /// The tracing context this node belongs to.
    pub fn ctx(&self) -> &SymCtx {
        &self.ctx
    }

    /// Producing op name (`"leaf"` / `"param"` for leaves).
    pub fn op_name(&self) -> &'static str {
        self.node.op
    }

    /// Component label recorded at creation (e.g. `"student.projection"`).
    pub fn label(&self) -> &str {
        &self.node.label
    }

    /// Static operand payload recorded at creation (scalar constants,
    /// reduction axes, permutations) — what the plan compiler consumes.
    pub fn attr(&self) -> &SymAttr {
        &self.node.attr
    }

    /// Symbolic shape.
    pub fn dims(&self) -> &[SymDim] {
        &self.node.dims
    }

    /// Concrete sizes of the symbolic shape.
    pub fn sizes(&self) -> Vec<usize> {
        self.node.dims.iter().map(|d| d.size).collect()
    }

    /// Product of all dimension sizes.
    pub fn num_elements(&self) -> usize {
        self.node.dims.iter().map(|d| d.size).product()
    }

    /// Mirrors `Tensor::requires_grad`.
    pub fn requires_grad(&self) -> bool {
        self.node.requires_grad
    }

    /// Mirrors `Tensor::is_leaf` (`backward.is_none()`): true for leaves
    /// *and* untracked op nodes.
    pub fn is_leaf(&self) -> bool {
        !self.node.has_backward
    }

    /// True for trainable parameter leaves.
    pub fn is_param(&self) -> bool {
        self.node.is_param
    }

    /// True for parameters created in a [`SymCtx::frozen`] scope.
    pub fn is_frozen(&self) -> bool {
        self.node.frozen
    }

    /// Provenance parents (always recorded, even for untracked nodes).
    pub fn parents(&self) -> &[SymbolicTensor] {
        &self.node.parents
    }

    /// Gradient-edge parents: what the real engine records. Empty for
    /// leaves and untracked nodes, mirroring `Tensor::parents`.
    pub fn grad_parents(&self) -> &[SymbolicTensor] {
        if self.node.has_backward {
            &self.node.parents
        } else {
            const EMPTY: &[SymbolicTensor] = &[];
            EMPTY
        }
    }

    fn describe(&self) -> String {
        let grad = if self.node.requires_grad { " grad" } else { "" };
        if self.node.label.is_empty() {
            format!(
                "#{} {} {}{grad}",
                self.node.id,
                self.node.op,
                render_dims(&self.node.dims)
            )
        } else {
            format!(
                "#{} {} {} @{}{grad}",
                self.node.id,
                self.node.op,
                render_dims(&self.node.dims),
                self.node.label
            )
        }
    }

    /// First-parent lineage as display lines, mirroring
    /// `Tensor::provenance` (at most `max_hops` entries).
    pub fn provenance_lines(&self, max_hops: usize) -> Vec<String> {
        let mut lines = Vec::new();
        let mut cur = self.clone();
        for _ in 0..max_hops {
            lines.push(cur.describe());
            match cur.node.parents.first() {
                Some(p) => {
                    let p = p.clone();
                    cur = p;
                }
                None => return lines,
            }
        }
        lines.push("…".to_string());
        lines
    }

    fn err(&self, op: &str, message: String, inputs: &[&SymbolicTensor]) -> ShapeError {
        ShapeError::new(op, &self.ctx.scoped_label(""), message, inputs)
    }

    // ---- element-wise binary ops (NumPy broadcast) ----

    fn broadcast_dims(
        &self,
        other: &SymbolicTensor,
        op: &'static str,
    ) -> Result<Vec<SymDim>, ShapeError> {
        let a = &self.node.dims;
        let b = &other.node.dims;
        let rank = a.len().max(b.len());
        let mut out = Vec::with_capacity(rank);
        for i in 0..rank {
            let da = if i < rank - a.len() {
                None
            } else {
                Some(&a[i - (rank - a.len())])
            };
            let db = if i < rank - b.len() {
                None
            } else {
                Some(&b[i - (rank - b.len())])
            };
            let d = match (da, db) {
                (Some(x), None) | (None, Some(x)) => x.clone(),
                (Some(x), Some(y)) if x.size == y.size => {
                    if x.name.is_empty() {
                        y.clone()
                    } else {
                        x.clone()
                    }
                }
                (Some(x), Some(y)) if x.size == 1 => y.clone(),
                (Some(x), Some(y)) if y.size == 1 => x.clone(),
                (Some(x), Some(y)) => {
                    return Err(self.err(
                        op,
                        format!(
                            "cannot broadcast {} with {}: axis {i} has {x} vs {y}",
                            render_dims(a),
                            render_dims(b)
                        ),
                        &[self, other],
                    ));
                }
                (None, None) => unreachable!(),
            };
            out.push(d);
        }
        Ok(out)
    }

    fn binary(&self, other: &SymbolicTensor, op: &'static str) -> SymResult {
        let dims = self.broadcast_dims(other, op)?;
        Ok(SymbolicTensor::from_op(
            &self.ctx,
            op,
            dims,
            vec![self.clone(), other.clone()],
        ))
    }

    /// Mirrors `Tensor::add`.
    pub fn add(&self, other: &SymbolicTensor) -> SymResult {
        self.binary(other, "add")
    }

    /// Mirrors `Tensor::sub`.
    pub fn sub(&self, other: &SymbolicTensor) -> SymResult {
        self.binary(other, "sub")
    }

    /// Mirrors `Tensor::mul`.
    pub fn mul(&self, other: &SymbolicTensor) -> SymResult {
        self.binary(other, "mul")
    }

    /// Mirrors `Tensor::div`.
    pub fn div(&self, other: &SymbolicTensor) -> SymResult {
        self.binary(other, "div")
    }

    /// Mirrors `Tensor::smooth_l1` — requires identical shapes.
    pub fn smooth_l1(&self, target: &SymbolicTensor) -> SymResult {
        if self.sizes() != target.sizes() {
            return Err(self.err(
                "smooth_l1",
                format!(
                    "prediction {} and target {} must have identical shapes",
                    render_dims(self.dims()),
                    render_dims(target.dims())
                ),
                &[self, target],
            ));
        }
        Ok(SymbolicTensor::from_op(
            &self.ctx,
            "smooth_l1",
            self.node.dims.clone(),
            vec![self.clone(), target.clone()],
        ))
    }

    // ---- element-wise unary ops ----

    fn unary(&self, op: &'static str) -> SymbolicTensor {
        SymbolicTensor::from_op(&self.ctx, op, self.node.dims.clone(), vec![self.clone()])
    }

    fn unary_attr(&self, op: &'static str, attr: SymAttr) -> SymbolicTensor {
        SymbolicTensor::from_op_attr(
            &self.ctx,
            op,
            self.node.dims.clone(),
            vec![self.clone()],
            attr,
        )
    }

    /// Mirrors `Tensor::add_scalar`, recording the scalar operand so a
    /// compiled plan can replay the op exactly.
    pub fn add_scalar(&self, c: f32) -> SymbolicTensor {
        self.unary_attr("add_scalar", SymAttr::Scalar(c))
    }

    /// Mirrors `Tensor::mul_scalar`, recording the scalar operand so a
    /// compiled plan can replay the op exactly.
    pub fn mul_scalar(&self, c: f32) -> SymbolicTensor {
        self.unary_attr("mul_scalar", SymAttr::Scalar(c))
    }

    /// Mirrors `Tensor::rsqrt`.
    pub fn rsqrt(&self) -> SymbolicTensor {
        self.unary("rsqrt")
    }

    /// Mirrors `Tensor::square`.
    pub fn square(&self) -> SymbolicTensor {
        self.unary("square")
    }

    /// Mirrors `Tensor::relu`.
    pub fn relu(&self) -> SymbolicTensor {
        self.unary("relu")
    }

    /// Mirrors `Tensor::gelu`.
    pub fn gelu(&self) -> SymbolicTensor {
        self.unary("gelu")
    }

    /// Mirrors `Tensor::softmax_last`.
    pub fn softmax_last(&self) -> SymbolicTensor {
        self.unary("softmax_last")
    }

    // ---- reductions ----

    /// Mirrors `Tensor::sum` (scalar output).
    pub fn sum(&self) -> SymbolicTensor {
        SymbolicTensor::from_op(&self.ctx, "sum", Vec::new(), vec![self.clone()])
    }

    /// Mirrors `Tensor::mean` = `sum` + `mul_scalar(1/n)` (two nodes, with
    /// the same scalar the real kernel applies).
    pub fn mean(&self) -> SymbolicTensor {
        let n = self.num_elements();
        self.sum().mul_scalar(1.0 / n as f32)
    }

    /// Mirrors `Tensor::sum_axis`.
    pub fn sum_axis(&self, axis: usize, keepdim: bool) -> SymResult {
        if axis >= self.node.dims.len() {
            return Err(self.err(
                "sum_axis",
                format!("axis {axis} out of range for {}", render_dims(self.dims())),
                &[self],
            ));
        }
        let mut dims = self.node.dims.clone();
        if keepdim {
            dims[axis] = SymDim::anon(1);
        } else {
            dims.remove(axis);
        }
        Ok(SymbolicTensor::from_op_attr(
            &self.ctx,
            "sum_axis",
            dims,
            vec![self.clone()],
            SymAttr::Axis { axis, keepdim },
        ))
    }

    /// Mirrors `Tensor::mean_axis` = `sum_axis` + `mul_scalar(1/count)`.
    pub fn mean_axis(&self, axis: usize, keepdim: bool) -> SymResult {
        let summed = self.sum_axis(axis, keepdim)?;
        let count = self.node.dims[axis].size;
        Ok(summed.mul_scalar(1.0 / count as f32))
    }

    // ---- matmul (rank dispatch mirrors `Tensor::matmul`) ----

    /// Mirrors `Tensor::matmul`: `[M,K]@[K,N]`, `[B,M,K]@[B,K,N]`, or
    /// `[B,M,K]@[K,N]`.
    pub fn matmul(&self, other: &SymbolicTensor) -> SymResult {
        let a = &self.node.dims;
        let b = &other.node.dims;
        match (a.len(), b.len()) {
            (2, 2) => {
                self.check_inner("matmul_2d", &a[1], &b[0], other)?;
                Ok(SymbolicTensor::from_op(
                    &self.ctx,
                    "matmul_2d",
                    vec![a[0].clone(), b[1].clone()],
                    vec![self.clone(), other.clone()],
                ))
            }
            (3, 3) => {
                if a[0].size != b[0].size {
                    return Err(self.err(
                        "matmul_batched",
                        format!("batch dims differ: {} vs {}", a[0], b[0]),
                        &[self, other],
                    ));
                }
                self.check_inner("matmul_batched", &a[2], &b[1], other)?;
                Ok(SymbolicTensor::from_op(
                    &self.ctx,
                    "matmul_batched",
                    vec![a[0].clone(), a[1].clone(), b[2].clone()],
                    vec![self.clone(), other.clone()],
                ))
            }
            (3, 2) => {
                self.check_inner("matmul_3d_2d", &a[2], &b[0], other)?;
                Ok(SymbolicTensor::from_op(
                    &self.ctx,
                    "matmul_3d_2d",
                    vec![a[0].clone(), a[1].clone(), b[1].clone()],
                    vec![self.clone(), other.clone()],
                ))
            }
            (ra, rb) => Err(self.err(
                "matmul",
                format!(
                    "unsupported rank combination {ra}x{rb} ({} @ {})",
                    render_dims(a),
                    render_dims(b)
                ),
                &[self, other],
            )),
        }
    }

    fn check_inner(
        &self,
        op: &str,
        lhs: &SymDim,
        rhs: &SymDim,
        other: &SymbolicTensor,
    ) -> Result<(), ShapeError> {
        if lhs.size != rhs.size {
            return Err(self.err(
                op,
                format!(
                    "inner dimensions disagree: {} @ {} ({lhs} != {rhs})",
                    render_dims(self.dims()),
                    render_dims(other.dims())
                ),
                &[self, other],
            ));
        }
        Ok(())
    }

    // ---- shape surgery ----

    /// Mirrors `Tensor::reshape` — element count must be preserved, which
    /// is what catches a head dim that does not divide the model dim.
    pub fn reshape(&self, dims: Vec<SymDim>) -> SymResult {
        let new: usize = dims.iter().map(|d| d.size).product();
        if new != self.num_elements() {
            return Err(self.err(
                "reshape",
                format!(
                    "cannot reshape {} ({} elements) into {} ({} elements)",
                    render_dims(self.dims()),
                    self.num_elements(),
                    render_dims(&dims),
                    new
                ),
                &[self],
            ));
        }
        Ok(SymbolicTensor::from_op(
            &self.ctx,
            "reshape",
            dims,
            vec![self.clone()],
        ))
    }

    /// Mirrors `Tensor::permute`.
    pub fn permute(&self, perm: &[usize]) -> SymResult {
        let rank = self.node.dims.len();
        let mut seen = vec![false; rank];
        if perm.len() != rank
            || perm
                .iter()
                .any(|&p| p >= rank || std::mem::replace(&mut seen[p], true))
        {
            return Err(self.err(
                "permute",
                format!(
                    "invalid permutation {perm:?} for {}",
                    render_dims(self.dims())
                ),
                &[self],
            ));
        }
        let dims = perm.iter().map(|&p| self.node.dims[p].clone()).collect();
        Ok(SymbolicTensor::from_op_attr(
            &self.ctx,
            "permute",
            dims,
            vec![self.clone()],
            SymAttr::Perm(perm.to_vec()),
        ))
    }

    /// Mirrors `Tensor::transpose_last` (a permute swapping the last two
    /// axes).
    pub fn transpose_last(&self) -> SymResult {
        let rank = self.node.dims.len();
        if rank < 2 {
            return Err(self.err(
                "permute",
                format!(
                    "transpose_last needs rank >= 2, got {}",
                    render_dims(self.dims())
                ),
                &[self],
            ));
        }
        let mut perm: Vec<usize> = (0..rank).collect();
        perm.swap(rank - 2, rank - 1);
        self.permute(&perm)
    }

    /// Mirrors `Tensor::slice`.
    pub fn slice(&self, axis: usize, start: usize, len: usize, name: &str) -> SymResult {
        if axis >= self.node.dims.len() || start + len > self.node.dims[axis].size {
            return Err(self.err(
                "slice",
                format!(
                    "slice axis {axis} range {start}..{} out of bounds for {}",
                    start + len,
                    render_dims(self.dims())
                ),
                &[self],
            ));
        }
        let mut dims = self.node.dims.clone();
        dims[axis] = SymDim::new(name, len);
        Ok(SymbolicTensor::from_op(
            &self.ctx,
            "slice",
            dims,
            vec![self.clone()],
        ))
    }

    /// Mirrors `Tensor::concat` along `axis`.
    pub fn concat(tensors: &[SymbolicTensor], axis: usize, name: &str) -> SymResult {
        let first = tensors.first().expect("concat of zero tensors");
        let rank = first.node.dims.len();
        let mut total = 0usize;
        for t in tensors {
            if t.node.dims.len() != rank || axis >= rank {
                return Err(first.err(
                    "concat",
                    format!(
                        "rank mismatch in concat: {} vs {}",
                        render_dims(first.dims()),
                        render_dims(t.dims())
                    ),
                    &[first, t],
                ));
            }
            for (i, (a, b)) in first.node.dims.iter().zip(t.node.dims.iter()).enumerate() {
                if i != axis && a.size != b.size {
                    return Err(first.err(
                        "concat",
                        format!(
                            "non-concat axis {i} differs: {} vs {}",
                            render_dims(first.dims()),
                            render_dims(t.dims())
                        ),
                        &[first, t],
                    ));
                }
            }
            total += t.node.dims[axis].size;
        }
        let mut dims = first.node.dims.clone();
        dims[axis] = SymDim::new(name, total);
        Ok(SymbolicTensor::from_op(
            &first.ctx,
            "concat",
            dims,
            tensors.to_vec(),
        ))
    }

    /// Mirrors `Tensor::fused_attention`: one fused node for
    /// `softmax(QK^T/√dh + mask)V` over `[H, T, dh]` inputs.
    ///
    /// Returns the merged context `[T_q, H·dh]` (grad parents `[q, k, v]`)
    /// and the head-averaged map `[T_q, T_k]` (grad parents `[q, k]`).
    /// Like the dynamic op, the mask is captured data, not a parent, so
    /// node/edge counts stay in lockstep with the runtime graph.
    pub fn fused_attention(
        q: &SymbolicTensor,
        k: &SymbolicTensor,
        v: &SymbolicTensor,
        mask: Option<&SymbolicTensor>,
    ) -> Result<(SymbolicTensor, SymbolicTensor), ShapeError> {
        if q.node.dims.len() != 3 || k.node.dims.len() != 3 {
            return Err(q.err(
                "fused_attention",
                format!(
                    "q and k must be [H, T, dh], got {} and {}",
                    render_dims(q.dims()),
                    render_dims(k.dims())
                ),
                &[q, k],
            ));
        }
        let (heads, tq, dh) = (q.node.dims[0].size, &q.node.dims[1], q.node.dims[2].size);
        let tk = &k.node.dims[1];
        if k.node.dims[0].size != heads || k.node.dims[2].size != dh {
            return Err(q.err(
                "fused_attention",
                format!(
                    "q {} and k {} disagree on heads or head dim",
                    render_dims(q.dims()),
                    render_dims(k.dims())
                ),
                &[q, k],
            ));
        }
        if v.sizes() != k.sizes() {
            return Err(k.err(
                "fused_attention",
                format!(
                    "k {} and v {} must have identical shapes",
                    render_dims(k.dims()),
                    render_dims(v.dims())
                ),
                &[k, v],
            ));
        }
        if let Some(m) = mask {
            if m.sizes() != vec![tq.size, tk.size] {
                return Err(m.err(
                    "fused_attention",
                    format!(
                        "mask {} does not match scores [{}, {}]",
                        render_dims(m.dims()),
                        tq.size,
                        tk.size
                    ),
                    &[q, k, m],
                ));
            }
            if m.requires_grad() {
                return Err(m.err(
                    "fused_attention",
                    "the additive mask must not require gradients".to_string(),
                    &[m],
                ));
            }
        }
        let out = SymbolicTensor::from_op(
            &q.ctx,
            "fused_attention",
            vec![tq.clone(), SymDim::new("d_model", heads * dh)],
            vec![q.clone(), k.clone(), v.clone()],
        );
        let map = SymbolicTensor::from_op(
            &q.ctx,
            "fused_attention_map",
            vec![tq.clone(), tk.clone()],
            vec![q.clone(), k.clone()],
        );
        Ok((out, map))
    }

    /// Mirrors `Tensor::index_select_rows` on a rank-2 table.
    pub fn index_select_rows(&self, num_indices: usize, name: &str) -> SymResult {
        if self.node.dims.len() != 2 {
            return Err(self.err(
                "index_select_rows",
                format!("expects a rank-2 table, got {}", render_dims(self.dims())),
                &[self],
            ));
        }
        let dims = vec![SymDim::new(name, num_indices), self.node.dims[1].clone()];
        Ok(SymbolicTensor::from_op(
            &self.ctx,
            "index_select_rows",
            dims,
            vec![self.clone()],
        ))
    }

    /// Mirrors `Tensor::detach`: a fresh constant leaf. Provenance parents
    /// are kept so error chains can cross the detach, but no gradient edge
    /// exists (the real detach returns a `from_vec` leaf).
    pub fn detach(&self) -> SymbolicTensor {
        SymbolicTensor {
            node: Rc::new(SymNode {
                id: self.ctx.next_id(),
                op: "leaf",
                label: self.ctx.scoped_label("detach"),
                dims: self.node.dims.clone(),
                attr: SymAttr::None,
                parents: vec![self.clone()],
                requires_grad: false,
                has_backward: false,
                is_param: false,
                frozen: false,
            }),
            ctx: self.ctx.clone(),
        }
    }
}

/// Aggregate statistics over the symbolic graph reachable from `root`
/// through *gradient* edges — directly comparable with the dynamic
/// [`GraphStats`](crate::GraphStats).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct SymGraphStats {
    /// Total reachable nodes.
    pub nodes: usize,
    /// Total gradient edges (sum of recorded parents per node).
    pub edges: usize,
    /// Leaves: constants, params, and untracked frontier nodes.
    pub leaves: usize,
    /// Trainable leaves.
    pub params: usize,
    /// Longest root-to-leaf path length in edges.
    pub max_depth: usize,
}

/// Walks the gradient graph reachable from `root`, reproducing the node,
/// edge, leaf, param and depth accounting of the dynamic
/// [`GraphAudit`](crate::GraphAudit).
pub fn graph_stats(root: &SymbolicTensor) -> SymGraphStats {
    let mut stats = SymGraphStats::default();
    let mut depth: HashMap<u64, usize> = HashMap::new();
    let mut stack = vec![(root.clone(), 0usize)];
    while let Some((t, d)) = stack.pop() {
        match depth.get(&t.id()) {
            Some(&seen) if seen >= d => continue,
            Some(_) => {
                depth.insert(t.id(), d);
                for p in t.grad_parents() {
                    stack.push((p.clone(), d + 1));
                }
                continue;
            }
            None => {}
        }
        depth.insert(t.id(), d);
        stats.nodes += 1;
        stats.edges += t.grad_parents().len();
        stats.max_depth = stats.max_depth.max(d);
        if t.is_leaf() {
            stats.leaves += 1;
            if t.requires_grad() {
                stats.params += 1;
            }
        }
        for p in t.grad_parents() {
            stack.push((p.clone(), d + 1));
        }
    }
    stats
}

/// All parameter leaves reachable from `root` through gradient edges — the
/// set the real backward pass would deposit gradients on.
pub fn reachable_params(root: &SymbolicTensor) -> Vec<SymbolicTensor> {
    let mut seen: HashSet<u64> = HashSet::new();
    let mut out = Vec::new();
    let mut stack = vec![root.clone()];
    while let Some(t) = stack.pop() {
        if !seen.insert(t.id()) {
            continue;
        }
        if t.is_param() {
            out.push(t.clone());
        }
        for p in t.grad_parents() {
            stack.push(p.clone());
        }
    }
    out.sort_by_key(|t| t.id());
    out
}

/// Shortest gradient path from `root` down to the node with `target_id`,
/// as display lines (root first). `None` when unreachable.
pub fn find_path(root: &SymbolicTensor, target_id: u64) -> Option<Vec<String>> {
    // BFS parent-pointer reconstruction over gradient edges.
    let mut prev: HashMap<u64, SymbolicTensor> = HashMap::new();
    let mut by_id: HashMap<u64, SymbolicTensor> = HashMap::new();
    let mut queue = std::collections::VecDeque::new();
    by_id.insert(root.id(), root.clone());
    queue.push_back(root.clone());
    while let Some(t) = queue.pop_front() {
        if t.id() == target_id {
            let mut chain = vec![t.describe()];
            let mut cur = t.id();
            while let Some(p) = prev.get(&cur) {
                chain.push(p.describe());
                cur = p.id();
            }
            chain.reverse();
            return Some(chain);
        }
        for p in t.grad_parents() {
            if let std::collections::hash_map::Entry::Vacant(e) = by_id.entry(p.id()) {
                e.insert(p.clone());
                prev.insert(p.id(), t.clone());
                queue.push_back(p.clone());
            }
        }
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;

    fn d(name: &str, size: usize) -> SymDim {
        SymDim::new(name, size)
    }

    #[test]
    fn matmul_shape_inference() {
        let ctx = SymCtx::new();
        let x = ctx.constant("x", vec![d("L", 96), d("N", 7)]);
        let w = ctx.param("w", vec![d("N", 7), d("d", 32)]);
        let y = x.matmul(&w).unwrap();
        assert_eq!(y.sizes(), vec![96, 32]);
        assert_eq!(y.op_name(), "matmul_2d");
    }

    #[test]
    fn matmul_mismatch_has_provenance() {
        let ctx = SymCtx::new();
        let x = ctx.constant("x", vec![d("L", 96), d("N", 7)]);
        let w = ctx.param("w", vec![d("d", 32), d("d", 32)]);
        let err = ctx.scoped("student.embed", || x.matmul(&w)).unwrap_err();
        assert_eq!(err.op, "matmul_2d");
        assert_eq!(err.label, "student.embed");
        assert!(err.message.contains("N(7)"), "{}", err.message);
        assert!(err.message.contains("d(32)"), "{}", err.message);
        assert!(!err.provenance.is_empty());
    }

    #[test]
    fn broadcast_matches_engine_rules() {
        let ctx = SymCtx::new();
        let a = ctx.constant("a", vec![d("L", 4), d("N", 3)]);
        let b = ctx.constant("b", vec![SymDim::anon(1), d("N", 3)]);
        assert_eq!(a.add(&b).unwrap().sizes(), vec![4, 3]);
        let c = ctx.constant("c", vec![d("M", 5)]);
        assert!(a.add(&c).is_err());
    }

    #[test]
    fn tracking_mirrors_from_op() {
        let ctx = SymCtx::new();
        let p = ctx.param("p", vec![d("n", 4)]);
        let c = ctx.constant("c", vec![d("n", 4)]);
        // Constant-only op: untracked, counts as a leaf.
        let cc = c.mul_scalar(2.0);
        assert!(!cc.requires_grad() && cc.is_leaf());
        assert!(cc.grad_parents().is_empty());
        // Param-involving op: tracked.
        let y = p.add(&c).unwrap();
        assert!(y.requires_grad() && !y.is_leaf());
        // Under no_grad nothing tracks.
        let z = ctx.no_grad(|| p.mul_scalar(2.0));
        assert!(!z.requires_grad() && z.is_leaf());
    }

    #[test]
    fn stats_match_dynamic_audit_on_tiny_graph() {
        // Mirror of audit::tests::tiny_graph: param -> mul_scalar -> sum.
        let ctx = SymCtx::new();
        let p = ctx.param("p", vec![d("n", 3)]);
        let loss = p.mul_scalar(2.0).sum();
        let s = graph_stats(&loss);
        assert_eq!(s.nodes, 3);
        assert_eq!(s.edges, 2);
        assert_eq!(s.leaves, 1);
        assert_eq!(s.params, 1);
        assert_eq!(s.max_depth, 2);
    }

    #[test]
    fn detach_blocks_gradient_reachability() {
        let ctx = SymCtx::new();
        let p = ctx.param("p", vec![d("n", 3)]);
        let reachable = p.mul_scalar(2.0).sum();
        let blocked = p.mul_scalar(2.0).detach().sum();
        assert_eq!(reachable_params(&reachable).len(), 1);
        assert_eq!(reachable_params(&blocked).len(), 0);
        // Provenance still crosses the detach for error reporting.
        assert!(blocked.parents()[0].parents()[0].parents().len() == 1);
    }

    #[test]
    fn find_path_names_route() {
        let ctx = SymCtx::new();
        let p = ctx.scoped("enc", || ctx.param("w", vec![d("n", 2)]));
        let loss = p.relu().sum();
        let path = find_path(&loss, p.id()).unwrap();
        assert_eq!(path.len(), 3);
        assert!(path[0].contains("sum"));
        assert!(path[2].contains("enc.w"));
        assert!(find_path(&loss, 9999).is_none());
    }

    #[test]
    fn frozen_scope_marks_params() {
        let ctx = SymCtx::new();
        let f = ctx.frozen(|| ctx.param("tok", vec![d("V", 10), d("D", 4)]));
        let t = ctx.param("w", vec![d("D", 4)]);
        assert!(f.is_frozen() && !t.is_frozen());
        assert_eq!(ctx.params().len(), 2);
    }

    #[test]
    fn reshape_rejects_element_count_change() {
        let ctx = SymCtx::new();
        let x = ctx.constant("x", vec![d("t", 5), d("d", 6)]);
        assert!(x.reshape(vec![d("t", 5), d("h", 2), d("dh", 3)]).is_ok());
        let err = x
            .reshape(vec![d("t", 5), d("h", 4), d("dh", 1)])
            .unwrap_err();
        assert!(err.message.contains("30 elements"), "{}", err.message);
    }

    #[test]
    fn slice_and_concat_shapes() {
        let ctx = SymCtx::new();
        let x = ctx.constant("x", vec![d("s", 10), d("d", 4)]);
        let last = x.slice(0, 9, 1, "last").unwrap();
        assert_eq!(last.sizes(), vec![1, 4]);
        assert!(x.slice(0, 8, 3, "oob").is_err());
        let rows: Vec<SymbolicTensor> = (0..3)
            .map(|_| ctx.constant("r", vec![SymDim::anon(1), d("d", 4)]))
            .collect();
        let cat = SymbolicTensor::concat(&rows, 0, "N").unwrap();
        assert_eq!(cat.sizes(), vec![3, 4]);
    }
}
