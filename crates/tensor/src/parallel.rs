//! Deterministic kernel-level parallelism on a persistent worker pool.
//!
//! The autograd graph stays strictly single-threaded (`Rc`-based handles,
//! `RefCell` buffers); only the dense inner kernels underneath it fan out.
//! A kernel call partitions its work into **disjoint output blocks**
//! (contiguous row ranges or batch chunks), and every block is computed by
//! exactly one task with the same serial inner-loop code the
//! single-threaded path runs. Because no output element is ever touched by
//! two tasks and no cross-task reduction exists, the parallel result is
//! bitwise identical to the serial one — there is no atomic accumulation
//! and no reduction-order drift, by construction.
//!
//! ## Pool model
//!
//! Workers are plain `std::thread`s (the workspace is dependency-free),
//! spawned lazily on first use and kept alive for the process lifetime.
//! The pool size comes from the `TIMEKD_THREADS` environment variable
//! (default: the host's available parallelism; `1` forces the serial
//! path). [`with_threads`] scopes a thread-local override so benchmarks
//! and determinism tests can compare serial and parallel execution inside
//! one process.
//!
//! A job is published under a mutex as a type-erased closure plus three
//! counters living on the submitter's stack: `next` (task claim cursor),
//! `done` (finished tasks) and `attached` (workers currently holding a
//! reference to the job). Workers and the submitting thread drain tasks
//! from the shared cursor; the submitter returns only after every task
//! finished **and** every worker detached, which is what makes the
//! borrowed-closure lifetime sound. Task *claiming* order is dynamic
//! (first-come first-served) but that only decides which thread computes a
//! block, never the arithmetic inside it, so scheduling cannot affect
//! results.
//!
//! Kernels called from inside a worker task run serially (a thread-local
//! flag suppresses nested parallelism), so e.g. a batched matmul that
//! parallelises over the batch axis never deadlocks the pool with inner
//! row-parallel calls.

use std::cell::Cell;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::{Condvar, Mutex, MutexGuard, OnceLock, PoisonError};

thread_local! {
    /// Thread-local effective-thread override installed by [`with_threads`].
    static THREAD_OVERRIDE: Cell<Option<usize>> = const { Cell::new(None) };
    /// True while this thread is executing pool tasks (worker threads, and
    /// any thread draining a job it submitted). Nested kernel calls then
    /// take the serial path.
    static IN_PARALLEL_REGION: Cell<bool> = const { Cell::new(false) };
}

/// Hard cap on the pool size; guards against absurd `TIMEKD_THREADS`
/// values and runaway [`with_threads`] requests.
const MAX_THREADS: usize = 128;

/// Number of threads the pool is configured for: `TIMEKD_THREADS` if set
/// to a positive integer, otherwise the host's available parallelism
/// (clamped to [1, 128]). A value of `1` disables the pool entirely.
pub fn configured_threads() -> usize {
    static CONFIGURED: OnceLock<usize> = OnceLock::new();
    *CONFIGURED.get_or_init(|| {
        let from_env = std::env::var("TIMEKD_THREADS")
            .ok()
            .and_then(|v| v.trim().parse::<usize>().ok())
            .filter(|&n| n > 0);
        let n =
            from_env.unwrap_or_else(|| std::thread::available_parallelism().map_or(1, usize::from));
        n.min(MAX_THREADS)
    })
}

/// Effective thread count for the current thread: the innermost
/// [`with_threads`] override if one is active, else [`configured_threads`].
pub fn effective_threads() -> usize {
    THREAD_OVERRIDE
        .with(Cell::get)
        .unwrap_or_else(configured_threads)
        .clamp(1, MAX_THREADS)
}

/// Number of hardware threads actually available to this process
/// (affinity/cgroup aware), clamped to `[1, 128]`. Shard-count heuristics
/// use this so an oversubscribed `TIMEKD_THREADS` never fans coarse
/// blocks wider than the machine can physically run: extra shards on a
/// smaller machine would only time-slice the same cores and thrash each
/// shard's working set through the cache. Results never depend on the
/// shard count — this is purely a scheduling bound.
pub fn hardware_threads() -> usize {
    static HW: OnceLock<usize> = OnceLock::new();
    *HW.get_or_init(|| {
        std::thread::available_parallelism()
            .map_or(1, usize::from)
            .min(MAX_THREADS)
    })
}

/// Runs `f` with nested parallelism suppressed on this thread, exactly as
/// if it were executing inside a claimed pool task. The batched trainer
/// uses this when its lane shards collapse to a single block, so lane
/// replays keep the batch region's "no op-level fan-out" contract
/// regardless of how many shards the replay was split into.
pub(crate) fn with_serial_region<T>(f: impl FnOnce() -> T) -> T {
    struct Restore(bool);
    impl Drop for Restore {
        fn drop(&mut self) {
            IN_PARALLEL_REGION.with(|c| c.set(self.0));
        }
    }
    let prev = IN_PARALLEL_REGION.with(|c| c.replace(true));
    let _restore = Restore(prev);
    f()
}

/// Runs `f` with the effective thread count overridden to `n` on this
/// thread. `with_threads(1, …)` forces the serial path; benchmarks and
/// determinism tests use this to compare serial and parallel execution in
/// one process. Overrides nest; the previous value is restored even if
/// `f` panics.
pub fn with_threads<T>(n: usize, f: impl FnOnce() -> T) -> T {
    struct Restore(Option<usize>);
    impl Drop for Restore {
        fn drop(&mut self) {
            THREAD_OVERRIDE.with(|c| c.set(self.0));
        }
    }
    let prev = THREAD_OVERRIDE.with(|c| c.replace(Some(n.clamp(1, MAX_THREADS))));
    let _restore = Restore(prev);
    f()
}

/// True while the current thread is executing a pool task; kernels use
/// this to take the serial path instead of re-entering the pool.
pub fn in_parallel_region() -> bool {
    IN_PARALLEL_REGION.with(Cell::get)
}

/// Balanced contiguous split of `0..total` into at most `blocks` ranges.
///
/// Every index is covered by exactly one range (the determinism tests
/// assert this for adversarial splits such as 7 rows over 4 threads); the
/// first `total % blocks` ranges are one element longer. Returns fewer
/// ranges than requested when `total < blocks` and an empty vector when
/// `total == 0`.
pub fn block_ranges(total: usize, blocks: usize) -> Vec<(usize, usize)> {
    if total == 0 || blocks == 0 {
        return Vec::new();
    }
    let blocks = blocks.min(total);
    let base = total / blocks;
    let extra = total % blocks;
    let mut ranges = Vec::with_capacity(blocks);
    let mut start = 0;
    for b in 0..blocks {
        let len = base + usize::from(b < extra);
        ranges.push((start, start + len));
        start += len;
    }
    debug_assert_eq!(start, total);
    ranges
}

// ---------------------------------------------------------------------------
// Pool internals
// ---------------------------------------------------------------------------

/// A published job: a type-erased `Fn(usize)` plus coordination counters
/// that live on the submitting thread's stack. The submitter blocks until
/// `done == total` and `attached == 0`, so the raw pointers never dangle
/// while a worker can still dereference them.
#[derive(Clone, Copy)]
struct JobRef {
    /// Trampoline that downcasts `ctx` back to the concrete closure.
    run: unsafe fn(*const (), usize),
    /// Borrow of the caller's closure, valid until the submitter returns.
    ctx: *const (),
    /// Number of tasks in the job.
    total: usize,
    /// Claim cursor (`fetch_add` hands out task indices).
    next: *const AtomicUsize,
    /// Count of finished tasks.
    done: *const AtomicUsize,
    /// Workers currently holding this `JobRef`.
    attached: *const AtomicUsize,
    /// Set when any task panicked; the submitter re-raises.
    panicked: *const AtomicBool,
}

// SAFETY: the pointers target the submitting thread's stack frame, which
// outlives every dereference because the submitter waits for `done` and
// `attached` under the pool mutex before returning (or unwinding — see
// the drop guard in `parallel_for`).
unsafe impl Send for JobRef {}

struct InstalledJob {
    job: JobRef,
    epoch: u64,
}

#[derive(Default)]
struct State {
    /// Currently published job, if any. Cleared by its submitter once the
    /// claim cursor is exhausted.
    slot: Option<InstalledJob>,
    /// Monotonic job counter so a worker never re-attaches to a job it
    /// already drained.
    epoch: u64,
    /// Worker threads spawned so far.
    spawned: usize,
}

struct Shared {
    state: Mutex<State>,
    /// Signalled when a new job is published.
    work_cv: Condvar,
    /// Signalled when a worker detaches or a job slot frees up.
    done_cv: Condvar,
}

fn shared() -> &'static Shared {
    static SHARED: OnceLock<Shared> = OnceLock::new();
    SHARED.get_or_init(|| Shared {
        state: Mutex::new(State::default()),
        work_cv: Condvar::new(),
        done_cv: Condvar::new(),
    })
}

/// Poison-tolerant lock: a panic inside a kernel task must not wedge every
/// later kernel call behind a poisoned mutex.
fn lock_state(shared: &Shared) -> MutexGuard<'_, State> {
    shared.state.lock().unwrap_or_else(PoisonError::into_inner)
}

/// Ensures at least `want` worker threads exist (the submitter itself is
/// thread number `want + 1`). Workers park on `work_cv` between jobs.
fn ensure_workers(want: usize) {
    let sh = shared();
    let mut st = lock_state(sh);
    while st.spawned < want {
        let id = st.spawned;
        st.spawned += 1;
        let builder = std::thread::Builder::new().name(format!("timekd-kernel-{id}"));
        // Worker threads are detached by design: they live for the whole
        // process and exit with it.
        if builder.spawn(move || worker_loop(shared(), id)).is_err() {
            // Spawn failure (resource limits): fall back to fewer workers;
            // the submitting thread still drains every task itself.
            st.spawned -= 1;
            break;
        }
    }
}

fn worker_loop(sh: &'static Shared, id: usize) {
    // Anything a worker runs is by definition inside a parallel region;
    // kernels it calls must take their serial path.
    IN_PARALLEL_REGION.with(|c| c.set(true));
    let mut last_epoch = 0u64;
    loop {
        let job = {
            let mut st = lock_state(sh);
            loop {
                match &st.slot {
                    Some(ij) if ij.epoch != last_epoch => {
                        last_epoch = ij.epoch;
                        let job = ij.job;
                        // SAFETY: attach happens under the state lock while
                        // the job is still published, so the submitter's
                        // exit wait is guaranteed to observe it.
                        unsafe { (*job.attached).fetch_add(1, Ordering::SeqCst) };
                        break job;
                    }
                    _ => {
                        st = sh.work_cv.wait(st).unwrap_or_else(PoisonError::into_inner);
                    }
                }
            }
        };
        // Busy-time accounting stays out of `drain_tasks` (the lint-guarded
        // hot loop): one clock pair per job, and only while tracing is on.
        // `timekd_obs::now_ns` wraps the monotonic clock so this file never
        // names `Instant` (kernel-scope lint).
        if timekd_obs::enabled() {
            let t0 = timekd_obs::now_ns();
            drain_tasks(&job);
            timekd_obs::worker_busy_add(id, timekd_obs::now_ns().saturating_sub(t0));
        } else {
            drain_tasks(&job);
        }
        let _st = lock_state(sh);
        // SAFETY: detach under the lock; the submitter only frees the job
        // after observing `attached == 0` under this same lock.
        unsafe { (*job.attached).fetch_sub(1, Ordering::SeqCst) };
        sh.done_cv.notify_all();
    }
}

/// Hot claim-and-run loop shared by workers and the submitting thread.
///
/// This is a designated worker-loop function for `timekd-check`: no locks,
/// no allocation, no I/O — just the claim cursor and the kernel body. A
/// panicking task is caught here (and re-raised by the submitter) because
/// `done` must reach `total` even on failure or the submitter would wait
/// forever.
fn drain_tasks(job: &JobRef) {
    loop {
        // SAFETY: the submitter keeps the counters alive until all
        // attached threads (and itself) leave this loop.
        let t = unsafe { (*job.next).fetch_add(1, Ordering::SeqCst) };
        if t >= job.total {
            return;
        }
        let ok = catch_unwind(AssertUnwindSafe(|| unsafe { (job.run)(job.ctx, t) })).is_ok();
        unsafe {
            if !ok {
                (*job.panicked).store(true, Ordering::SeqCst);
            }
            (*job.done).fetch_add(1, Ordering::SeqCst);
        }
    }
}

unsafe fn trampoline<F: Fn(usize) + Sync>(ctx: *const (), task: usize) {
    (*(ctx as *const F))(task)
}

/// Clears the job slot and waits until every task finished and every
/// worker detached. Runs on drop so a panic in the submitter's own share
/// of the work still quiesces the pool before the stack frame (holding
/// the counters and closure) unwinds.
struct JobGuard<'a> {
    sh: &'static Shared,
    epoch: u64,
    done: &'a AtomicUsize,
    attached: &'a AtomicUsize,
    total: usize,
}

impl Drop for JobGuard<'_> {
    fn drop(&mut self) {
        let mut st = lock_state(self.sh);
        if st.slot.as_ref().is_some_and(|ij| ij.epoch == self.epoch) {
            st.slot = None;
            // A free slot is what queued submitters wait for.
            self.sh.done_cv.notify_all();
        }
        while self.done.load(Ordering::SeqCst) < self.total
            || self.attached.load(Ordering::SeqCst) > 0
        {
            st = self
                .sh
                .done_cv
                .wait(st)
                .unwrap_or_else(PoisonError::into_inner);
        }
    }
}

/// Runs `task(i)` for every `i in 0..total` across the pool, blocking
/// until all tasks finish. Tasks must write to disjoint data.
///
/// Falls back to a plain serial loop when the effective thread count is 1,
/// when there is at most one task, or when called from inside another
/// parallel region (nested parallelism runs serially by design).
pub(crate) fn parallel_for<F: Fn(usize) + Sync>(total: usize, task: F) {
    let threads = effective_threads();
    if total <= 1 || threads <= 1 || in_parallel_region() {
        timekd_obs::POOL_SERIAL_FALLBACK.add(1);
        for t in 0..total {
            task(t);
        }
        return;
    }
    timekd_obs::POOL_JOBS.add(1);
    timekd_obs::POOL_TASKS.add(total as u64);
    ensure_workers(threads.min(total) - 1);

    let next = AtomicUsize::new(0);
    let done = AtomicUsize::new(0);
    let attached = AtomicUsize::new(0);
    let panicked = AtomicBool::new(false);
    let job = JobRef {
        run: trampoline::<F>,
        ctx: &task as *const F as *const (),
        total,
        next: &next,
        done: &done,
        attached: &attached,
        panicked: &panicked,
    };

    let sh = shared();
    let epoch = {
        let mut st = lock_state(sh);
        while st.slot.is_some() {
            // Another thread's job is in flight; wait for the slot. The
            // owner always clears it, so this cannot deadlock.
            timekd_obs::POOL_SLOT_WAITS.add(1);
            st = sh.done_cv.wait(st).unwrap_or_else(PoisonError::into_inner);
        }
        st.epoch += 1;
        let epoch = st.epoch;
        st.slot = Some(InstalledJob { job, epoch });
        sh.work_cv.notify_all();
        epoch
    };

    let guard = JobGuard {
        sh,
        epoch,
        done: &done,
        attached: &attached,
        total,
    };
    // The submitting thread takes part in the drain; its own nested kernel
    // calls must also serialise.
    IN_PARALLEL_REGION.with(|c| c.set(true));
    drain_tasks(&job);
    IN_PARALLEL_REGION.with(|c| c.set(false));
    drop(guard); // quiesce: all tasks done, all workers detached
    assert!(
        !panicked.load(Ordering::SeqCst),
        "a kernel task panicked inside parallel_for"
    );
}

/// Splits `out` (a `rows × row_stride` row-major buffer) into disjoint
/// contiguous row-blocks and runs `body(row_start, row_end, block)` for
/// each, in parallel. Blocks never overlap, so results are bitwise
/// independent of the split. `min_rows` bounds how fine the split may get;
/// a single block runs inline with no pool traffic.
pub(crate) fn par_row_blocks(
    out: &mut [f32],
    rows: usize,
    row_stride: usize,
    min_rows: usize,
    body: impl Fn(usize, usize, &mut [f32]) + Sync,
) {
    debug_assert_eq!(out.len(), rows * row_stride);
    let threads = effective_threads();
    let max_blocks = if min_rows == 0 {
        threads
    } else {
        threads.min(rows.div_ceil(min_rows))
    };
    if rows == 0 {
        return;
    }
    if max_blocks <= 1 || threads <= 1 || in_parallel_region() {
        timekd_obs::POOL_SERIAL_FALLBACK.add(1);
        body(0, rows, out);
        return;
    }
    let ranges = block_ranges(rows, max_blocks);
    let base = out.as_mut_ptr() as usize;
    parallel_for(ranges.len(), |b| {
        let (start, end) = ranges[b];
        // SAFETY: ranges are disjoint and within `rows`, so each task gets
        // an exclusive sub-slice of `out`; `base` outlives the call
        // because `parallel_for` blocks until every task completes.
        let block = unsafe {
            std::slice::from_raw_parts_mut(
                (base as *mut f32).add(start * row_stride),
                (end - start) * row_stride,
            )
        };
        body(start, end, block);
    });
}

/// Splits `out` into `chunks` equal-length disjoint pieces (the batch axis
/// of a batched matmul) and runs `body(chunk_index, chunk)` for each in
/// parallel. `chunk_len * chunks` must equal `out.len()`.
pub(crate) fn par_chunks(
    out: &mut [f32],
    chunk_len: usize,
    chunks: usize,
    body: impl Fn(usize, &mut [f32]) + Sync,
) {
    debug_assert_eq!(out.len(), chunk_len.saturating_mul(chunks));
    if chunks == 0 || chunk_len == 0 {
        return;
    }
    if effective_threads() <= 1 || chunks == 1 || in_parallel_region() {
        timekd_obs::POOL_SERIAL_FALLBACK.add(1);
        for (t, chunk) in out.chunks_mut(chunk_len).enumerate() {
            body(t, chunk);
        }
        return;
    }
    let base = out.as_mut_ptr() as usize;
    parallel_for(chunks, |t| {
        // SAFETY: chunk `t` is the exclusive sub-slice
        // `[t * chunk_len, (t + 1) * chunk_len)`; chunks are disjoint and
        // `base` outlives the call (`parallel_for` blocks).
        let chunk = unsafe {
            std::slice::from_raw_parts_mut((base as *mut f32).add(t * chunk_len), chunk_len)
        };
        body(t, chunk);
    });
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn block_ranges_cover_exactly_once() {
        for total in 0..40usize {
            for blocks in 1..10usize {
                let ranges = block_ranges(total, blocks);
                let mut seen = vec![0u32; total];
                for &(s, e) in &ranges {
                    assert!(s < e, "empty range in {ranges:?}");
                    for slot in &mut seen[s..e] {
                        *slot += 1;
                    }
                }
                assert!(
                    seen.iter().all(|&c| c == 1),
                    "total={total} blocks={blocks}: {ranges:?}"
                );
                // Balanced: lengths differ by at most one.
                if let (Some(min), Some(max)) = (
                    ranges.iter().map(|(s, e)| e - s).min(),
                    ranges.iter().map(|(s, e)| e - s).max(),
                ) {
                    assert!(max - min <= 1);
                }
            }
        }
    }

    #[test]
    fn parallel_for_runs_every_task_once() {
        let n = 23;
        let hits: Vec<AtomicUsize> = (0..n).map(|_| AtomicUsize::new(0)).collect();
        with_threads(4, || {
            parallel_for(n, |t| {
                hits[t].fetch_add(1, Ordering::SeqCst);
            });
        });
        for (t, h) in hits.iter().enumerate() {
            assert_eq!(h.load(Ordering::SeqCst), 1, "task {t}");
        }
    }

    #[test]
    fn par_row_blocks_covers_odd_split() {
        // 7 rows over 4 threads: the adversarial split from the issue.
        let rows = 7;
        let cols = 3;
        let mut out = vec![0.0f32; rows * cols];
        with_threads(4, || {
            par_row_blocks(&mut out, rows, cols, 1, |start, end, block| {
                for (r, row) in block.chunks_mut(cols).enumerate() {
                    for v in row.iter_mut() {
                        *v += (start + r) as f32 + 1.0;
                    }
                }
                assert_eq!(block.len(), (end - start) * cols);
            });
        });
        for r in 0..rows {
            for c in 0..cols {
                assert_eq!(out[r * cols + c], r as f32 + 1.0, "row {r} col {c}");
            }
        }
    }

    #[test]
    fn nested_parallel_runs_serially() {
        let outer = AtomicUsize::new(0);
        let inner = AtomicUsize::new(0);
        with_threads(4, || {
            parallel_for(4, |_| {
                assert!(in_parallel_region());
                outer.fetch_add(1, Ordering::SeqCst);
                parallel_for(3, |_| {
                    inner.fetch_add(1, Ordering::SeqCst);
                });
            });
        });
        assert_eq!(outer.load(Ordering::SeqCst), 4);
        assert_eq!(inner.load(Ordering::SeqCst), 12);
    }

    #[test]
    fn with_threads_restores_on_panic() {
        let before = effective_threads();
        let res = std::panic::catch_unwind(|| with_threads(3, || panic!("boom")));
        assert!(res.is_err());
        assert_eq!(effective_threads(), before);
    }

    #[test]
    fn par_chunks_disjoint_batches() {
        let chunks = 5;
        let len = 4;
        let mut out = vec![0.0f32; chunks * len];
        with_threads(3, || {
            par_chunks(&mut out, len, chunks, |t, chunk| {
                for v in chunk.iter_mut() {
                    *v += t as f32 + 1.0;
                }
            });
        });
        for t in 0..chunks {
            assert!(out[t * len..(t + 1) * len]
                .iter()
                .all(|&v| v == t as f32 + 1.0));
        }
    }

    #[test]
    fn pool_panic_propagates_and_pool_survives() {
        let res = std::panic::catch_unwind(|| {
            with_threads(4, || {
                parallel_for(8, |t| {
                    if t == 5 {
                        panic!("task blew up");
                    }
                });
            })
        });
        assert!(res.is_err());
        // The pool must still be usable afterwards.
        let count = AtomicUsize::new(0);
        with_threads(4, || {
            parallel_for(6, |_| {
                count.fetch_add(1, Ordering::SeqCst);
            });
        });
        assert_eq!(count.load(Ordering::SeqCst), 6);
    }
}
