//! The [`Tensor`] type: a dense row-major f32 array with reverse-mode
//! autograd.
//!
//! Tensors form a DAG. Every operation that involves at least one
//! gradient-requiring input records a backward closure and keeps handles to
//! its parents; [`Tensor::backward`] topologically sorts the reachable
//! subgraph and propagates gradients. Tensors are reference-counted and
//! cheap to clone (a clone is a new handle to the same node).
//!
//! Threading model: the *graph* is single-threaded by design — `Rc`
//! handles, `RefCell` buffers, one thread per graph; experiment-level
//! parallelism happens across independent model instances, never across
//! one graph. The dense *kernels underneath* an op (matmul and friends)
//! may fan out over the [`crate::parallel`] worker pool, but they
//! partition work into disjoint output blocks and join before the op
//! returns, so nothing concurrent ever touches a tensor: ops stay
//! externally synchronous and bitwise deterministic (`TIMEKD_THREADS=1`
//! forces the fully serial path and produces identical bits).

use std::cell::{Cell, Ref, RefCell};
use std::fmt;
use std::rc::Rc;

use crate::shape::Shape;

thread_local! {
    static NEXT_ID: Cell<u64> = const { Cell::new(0) };
    static NO_GRAD_DEPTH: Cell<u32> = const { Cell::new(0) };
}

fn next_id() -> u64 {
    NEXT_ID.with(|c| {
        let id = c.get();
        c.set(id + 1);
        id
    })
}

/// Returns true while inside a [`no_grad`] scope.
pub fn is_grad_disabled() -> bool {
    NO_GRAD_DEPTH.with(|c| c.get() > 0)
}

/// Runs `f` with gradient recording disabled.
///
/// Operations executed inside the closure never build graph nodes, even on
/// tensors that require grad — used for inference, metric computation, and
/// cached teacher embeddings.
pub fn no_grad<T>(f: impl FnOnce() -> T) -> T {
    NO_GRAD_DEPTH.with(|c| c.set(c.get() + 1));
    // Ensure the depth is restored even if `f` panics.
    struct Guard;
    impl Drop for Guard {
        fn drop(&mut self) {
            NO_GRAD_DEPTH.with(|c| c.set(c.get() - 1));
        }
    }
    let _guard = Guard;
    f()
}

/// Backward closure: receives the output gradient and the parent handles,
/// and accumulates into each parent's gradient buffer.
pub(crate) type BackwardFn = Box<dyn Fn(&[f32], &[Tensor])>;

pub(crate) struct TensorInner {
    id: u64,
    /// Name of the op that produced this node (`"leaf"` / `"param"` for
    /// graph leaves). `&'static` so recording costs nothing.
    op: &'static str,
    shape: Shape,
    data: RefCell<Vec<f32>>,
    grad: RefCell<Option<Vec<f32>>>,
    requires_grad: bool,
    parents: Vec<Tensor>,
    backward: Option<BackwardFn>,
}

impl Drop for TensorInner {
    // Graphs from long training sequences can be tens of thousands of nodes
    // deep; the default recursive drop of the parent chain would overflow
    // the stack. Unlink parents iteratively instead.
    fn drop(&mut self) {
        let mut stack: Vec<Tensor> = std::mem::take(&mut self.parents);
        while let Some(mut t) = stack.pop() {
            if let Some(inner) = Rc::get_mut(&mut t.inner) {
                stack.append(&mut std::mem::take(&mut inner.parents));
            }
        }
    }
}

/// Dense row-major f32 tensor with reverse-mode autograd.
#[derive(Clone)]
pub struct Tensor {
    inner: Rc<TensorInner>,
}

impl Tensor {
    /// Creates a constant (non-differentiable) tensor from `data`.
    ///
    /// Panics if `data.len()` does not match the number of elements in
    /// `shape`.
    pub fn from_vec(data: Vec<f32>, shape: impl Into<Shape>) -> Tensor {
        let shape = shape.into();
        assert_eq!(
            data.len(),
            shape.num_elements(),
            "data length {} does not match shape {shape}",
            data.len()
        );
        Tensor {
            inner: Rc::new(TensorInner {
                id: next_id(),
                op: "leaf",
                shape,
                data: RefCell::new(data),
                grad: RefCell::new(None),
                requires_grad: false,
                parents: Vec::new(),
                backward: None,
            }),
        }
    }

    /// Creates a trainable leaf tensor (a parameter) from `data`.
    pub fn param(data: Vec<f32>, shape: impl Into<Shape>) -> Tensor {
        let shape = shape.into();
        assert_eq!(
            data.len(),
            shape.num_elements(),
            "data length {} does not match shape {shape}",
            data.len()
        );
        Tensor {
            inner: Rc::new(TensorInner {
                id: next_id(),
                op: "param",
                shape,
                data: RefCell::new(data),
                grad: RefCell::new(None),
                requires_grad: true,
                parents: Vec::new(),
                backward: None,
            }),
        }
    }

    /// Creates an interior graph node produced by the op named `op`.
    ///
    /// If gradients are globally disabled or no parent requires grad, the
    /// node is constant and records nothing (the op name is kept either
    /// way so diagnostics work under `no_grad` too).
    pub(crate) fn from_op(
        op: &'static str,
        data: Vec<f32>,
        shape: Shape,
        parents: Vec<Tensor>,
        backward: BackwardFn,
    ) -> Tensor {
        assert_eq!(data.len(), shape.num_elements());
        #[cfg(feature = "sanitize")]
        crate::sanitize::check_op_output(op, &data, &parents);
        timekd_obs::count_op(op);
        let track = !is_grad_disabled() && parents.iter().any(|p| p.requires_grad());
        Tensor {
            inner: Rc::new(TensorInner {
                id: next_id(),
                op,
                shape,
                data: RefCell::new(data),
                grad: RefCell::new(None),
                requires_grad: track,
                parents: if track { parents } else { Vec::new() },
                backward: if track { Some(backward) } else { None },
            }),
        }
    }

    /// Zero-filled constant tensor.
    pub fn zeros(shape: impl Into<Shape>) -> Tensor {
        let shape = shape.into();
        let n = shape.num_elements();
        Tensor::from_vec(vec![0.0; n], shape)
    }

    /// One-filled constant tensor.
    pub fn ones(shape: impl Into<Shape>) -> Tensor {
        Tensor::full(1.0, shape)
    }

    /// Constant tensor filled with `value`.
    pub fn full(value: f32, shape: impl Into<Shape>) -> Tensor {
        let shape = shape.into();
        let n = shape.num_elements();
        Tensor::from_vec(vec![value; n], shape)
    }

    /// Rank-0 constant scalar.
    pub fn scalar(value: f32) -> Tensor {
        Tensor::from_vec(vec![value], Shape::scalar())
    }

    /// Unique node id (monotonically increasing per thread).
    #[inline]
    pub fn id(&self) -> u64 {
        self.inner.id
    }

    /// Name of the op that produced this node; `"leaf"` for constants and
    /// `"param"` for trainable leaves.
    #[inline]
    pub fn op_name(&self) -> &'static str {
        self.inner.op
    }

    /// Recorded parent nodes (empty for leaves and untracked ops).
    #[inline]
    pub fn parents(&self) -> &[Tensor] {
        &self.inner.parents
    }

    /// True if a gradient buffer is currently accumulated on this node.
    /// Cheaper than [`Tensor::grad`], which clones the buffer.
    #[inline]
    pub fn has_grad(&self) -> bool {
        self.inner.grad.borrow().is_some()
    }

    /// Length of the accumulated gradient buffer, if any. The audit pass
    /// uses this to verify gradient/shape consistency without copying.
    pub fn grad_len(&self) -> Option<usize> {
        self.inner.grad.borrow().as_ref().map(Vec::len)
    }

    /// Length of the raw data buffer (normally equal to
    /// `num_elements()`; the audit pass verifies this).
    pub fn data_len(&self) -> usize {
        self.inner.data.borrow().len()
    }

    /// Human-readable provenance chain: this node, its parents, and the
    /// first-parent ancestor line, annotated with op names, shapes and a
    /// data health summary. Used by the `sanitize` feature to explain
    /// where a non-finite value came from.
    pub fn provenance(&self) -> String {
        fn summary(t: &Tensor) -> String {
            let data = t.inner.data.borrow();
            let (mut nan, mut inf) = (0usize, 0usize);
            let (mut lo, mut hi) = (f32::INFINITY, f32::NEG_INFINITY);
            for &v in data.iter() {
                if v.is_nan() {
                    nan += 1;
                } else if v.is_infinite() {
                    inf += 1;
                } else {
                    lo = lo.min(v);
                    hi = hi.max(v);
                }
            }
            let range = if lo <= hi {
                format!("[{lo:.3e}, {hi:.3e}]")
            } else {
                "[]".to_string()
            };
            format!(
                "#{} {} {} grad={} finite range {range}, {nan} NaN, {inf} Inf",
                t.id(),
                t.op_name(),
                t.shape(),
                t.requires_grad(),
            )
        }
        let mut out = String::new();
        out.push_str(&format!("-> {}\n", summary(self)));
        for p in self.parents() {
            out.push_str(&format!("   parent {}\n", summary(p)));
        }
        // Follow the first-parent line a few more hops for context.
        let mut cur = self.parents().first().cloned();
        let mut depth = 0;
        while let Some(t) = cur {
            if depth >= 8 {
                out.push_str("   ... (chain truncated)\n");
                break;
            }
            if depth > 0 {
                out.push_str(&format!("   ancestor {}\n", summary(&t)));
            }
            cur = t.parents().first().cloned();
            depth += 1;
        }
        out
    }

    /// Replaces the raw gradient buffer without any shape checking.
    /// Test-only hook for exercising the audit pass on corrupt graphs.
    #[doc(hidden)]
    pub fn set_raw_grad_for_tests(&self, g: Vec<f32>) {
        *self.inner.grad.borrow_mut() = Some(g);
    }

    /// Shape of this tensor.
    #[inline]
    pub fn shape(&self) -> &Shape {
        &self.inner.shape
    }

    /// Dimension sizes as a slice.
    #[inline]
    pub fn dims(&self) -> &[usize] {
        self.inner.shape.dims()
    }

    /// Number of elements.
    #[inline]
    pub fn num_elements(&self) -> usize {
        self.inner.shape.num_elements()
    }

    /// Borrows the underlying data.
    ///
    /// Panics if the data is mutably borrowed (e.g. during an in-place
    /// optimizer update).
    pub fn data(&self) -> Ref<'_, Vec<f32>> {
        self.inner.data.borrow()
    }

    /// Copies the data out.
    pub fn to_vec(&self) -> Vec<f32> {
        self.inner.data.borrow().clone()
    }

    /// The single value of a one-element tensor.
    ///
    /// Panics if the tensor has more than one element.
    pub fn item(&self) -> f32 {
        let data = self.inner.data.borrow();
        assert_eq!(
            data.len(),
            1,
            "item() on tensor with {} elements",
            data.len()
        );
        data[0]
    }

    /// Value at a multi-dimensional index.
    pub fn at(&self, index: &[usize]) -> f32 {
        let flat = self.inner.shape.flat_index(index);
        self.inner.data.borrow()[flat]
    }

    /// True if this tensor participates in gradient computation.
    #[inline]
    pub fn requires_grad(&self) -> bool {
        self.inner.requires_grad
    }

    /// True if this is a leaf (no recorded parents).
    #[inline]
    pub fn is_leaf(&self) -> bool {
        self.inner.backward.is_none()
    }

    /// The accumulated gradient, if any.
    pub fn grad(&self) -> Option<Vec<f32>> {
        self.inner.grad.borrow().clone()
    }

    /// Clears the gradient of this node.
    pub fn zero_grad(&self) {
        *self.inner.grad.borrow_mut() = None;
    }

    /// Accumulates `g` into this node's gradient buffer.
    ///
    /// Exposed so optimizers and tests can inject or rescale gradients
    /// (e.g. gradient clipping).
    pub fn accumulate_grad(&self, g: &[f32]) {
        debug_assert_eq!(g.len(), self.num_elements());
        let mut slot = self.inner.grad.borrow_mut();
        match slot.as_mut() {
            Some(buf) => {
                for (b, &x) in buf.iter_mut().zip(g) {
                    *b += x;
                }
            }
            None => *slot = Some(g.to_vec()),
        }
    }

    /// In-place update of the raw data (used by optimizers). The graph is
    /// not informed: call only on leaf parameters between steps.
    pub fn update_data(&self, f: impl FnOnce(&mut [f32])) {
        f(&mut self.inner.data.borrow_mut());
    }

    /// Overwrites the raw data from a slice of identical length.
    pub fn copy_from_slice(&self, src: &[f32]) {
        let mut data = self.inner.data.borrow_mut();
        assert_eq!(src.len(), data.len());
        data.copy_from_slice(src);
    }

    /// Returns a constant tensor sharing this tensor's current values but
    /// cut off from the graph.
    pub fn detach(&self) -> Tensor {
        Tensor::from_vec(self.to_vec(), self.shape().clone())
    }

    /// Runs reverse-mode autodiff from this tensor.
    ///
    /// The tensor must contain a single element (a loss). Gradients are
    /// accumulated into every reachable node that requires grad; leaves keep
    /// them for the optimizer, and interior buffers are dropped when the
    /// graph nodes are released.
    pub fn backward(&self) {
        assert_eq!(
            self.num_elements(),
            1,
            "backward() requires a scalar loss, got shape {}",
            self.shape()
        );
        assert!(
            self.requires_grad(),
            "backward() on a tensor that does not require grad"
        );
        let _span = timekd_obs::span("tensor.backward");
        let order = self.topo_order();
        self.accumulate_grad(&[1.0]);
        for node in order.iter().rev() {
            let Some(backward) = node.inner.backward.as_ref() else {
                continue;
            };
            let grad = node.inner.grad.borrow().clone();
            let Some(grad) = grad else { continue };
            backward(&grad, &node.inner.parents);
            // Interior gradients are only needed once; free them eagerly.
            *node.inner.grad.borrow_mut() = None;
        }
    }

    /// Topological order (parents before children) of the grad-requiring
    /// subgraph reachable from `self`.
    fn topo_order(&self) -> Vec<Tensor> {
        let mut order: Vec<Tensor> = Vec::new();
        let mut visited: std::collections::HashSet<u64> = std::collections::HashSet::new();
        // Iterative DFS with an explicit stack to avoid recursion depth
        // limits on deep graphs (long training sequences).
        enum Frame {
            Enter(Tensor),
            Exit(Tensor),
        }
        let mut stack = vec![Frame::Enter(self.clone())];
        while let Some(frame) = stack.pop() {
            match frame {
                Frame::Enter(t) => {
                    if !t.requires_grad() || visited.contains(&t.id()) {
                        continue;
                    }
                    visited.insert(t.id());
                    stack.push(Frame::Exit(t.clone()));
                    for p in &t.inner.parents {
                        stack.push(Frame::Enter(p.clone()));
                    }
                }
                Frame::Exit(t) => order.push(t),
            }
        }
        order
    }
}

impl fmt::Debug for Tensor {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let data = self.inner.data.borrow();
        let preview: Vec<f32> = data.iter().copied().take(8).collect();
        write!(
            f,
            "Tensor(id={}, shape={}, requires_grad={}, data≈{:?}{})",
            self.id(),
            self.shape(),
            self.requires_grad(),
            preview,
            if data.len() > 8 { ", …" } else { "" }
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn construct_and_read() {
        let t = Tensor::from_vec(vec![1.0, 2.0, 3.0, 4.0], [2, 2]);
        assert_eq!(t.dims(), &[2, 2]);
        assert_eq!(t.at(&[1, 0]), 3.0);
        assert!(!t.requires_grad());
        assert!(t.is_leaf());
    }

    #[test]
    #[should_panic(expected = "does not match shape")]
    fn shape_mismatch_panics() {
        let _ = Tensor::from_vec(vec![1.0; 5], [2, 2]);
    }

    #[test]
    fn param_requires_grad() {
        let p = Tensor::param(vec![0.5; 4], [4]);
        assert!(p.requires_grad());
        assert!(p.is_leaf());
        assert!(p.grad().is_none());
    }

    #[test]
    fn accumulate_and_zero_grad() {
        let p = Tensor::param(vec![0.0; 3], [3]);
        p.accumulate_grad(&[1.0, 2.0, 3.0]);
        p.accumulate_grad(&[1.0, 1.0, 1.0]);
        assert_eq!(p.grad().unwrap(), vec![2.0, 3.0, 4.0]);
        p.zero_grad();
        assert!(p.grad().is_none());
    }

    #[test]
    fn no_grad_scope_blocks_graph() {
        let p = Tensor::param(vec![1.0, 2.0], [2]);
        let out = no_grad(|| p.add(&p));
        assert!(!out.requires_grad());
        assert!(out.is_leaf());
    }

    #[test]
    fn no_grad_scope_restores_on_panic() {
        let res = std::panic::catch_unwind(|| no_grad(|| panic!("boom")));
        assert!(res.is_err());
        assert!(!is_grad_disabled());
    }

    #[test]
    fn detach_cuts_graph() {
        let p = Tensor::param(vec![1.0, 2.0], [2]);
        let y = p.mul_scalar(3.0);
        let d = y.detach();
        assert!(!d.requires_grad());
        assert_eq!(d.to_vec(), vec![3.0, 6.0]);
    }

    #[test]
    fn backward_simple_chain() {
        // y = sum(2 * p); dy/dp = 2.
        let p = Tensor::param(vec![1.0, 2.0, 3.0], [3]);
        let y = p.mul_scalar(2.0).sum();
        y.backward();
        assert_eq!(p.grad().unwrap(), vec![2.0, 2.0, 2.0]);
    }

    #[test]
    fn backward_diamond_accumulates() {
        // y = sum(p + p); dy/dp = 2 (gradient flows along both edges).
        let p = Tensor::param(vec![1.0, 1.0], [2]);
        let y = p.add(&p).sum();
        y.backward();
        assert_eq!(p.grad().unwrap(), vec![2.0, 2.0]);
    }

    #[test]
    #[should_panic(expected = "scalar loss")]
    fn backward_non_scalar_panics() {
        let p = Tensor::param(vec![1.0, 2.0], [2]);
        p.mul_scalar(1.0).backward();
    }

    #[test]
    fn deep_graph_backward_no_stack_overflow() {
        let p = Tensor::param(vec![1.0], [1]);
        let mut x = p.clone();
        for _ in 0..20_000 {
            x = x.add_scalar(0.0);
        }
        x.sum().backward();
        assert_eq!(p.grad().unwrap(), vec![1.0]);
    }
}
