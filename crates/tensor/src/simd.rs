//! Portable explicit-width SIMD lanes for the dense kernels.
//!
//! This module defines [`F32x8`], a fixed-width 8-lane f32 vector written as
//! a plain array newtype so that rustc/LLVM autovectorize it (no intrinsics,
//! no `unsafe`), plus the two hot lane loops ([`dot_lanes`], [`axpy_lanes`])
//! shared by the matmul and fused-attention kernels.
//!
//! ## Reduction-order contract
//!
//! The parallel-determinism suite proves every kernel produces bitwise
//! identical results at any `TIMEKD_THREADS`. SIMD does not weaken that
//! contract — it *re-pins* it: lane-width blocking is part of the defined
//! reduction order.
//!
//! - **SIMD mode** (default): dot-style reductions assign element `i` to
//!   lane `i % 8`; each lane accumulates in ascending order with a fused
//!   multiply-add chain; the 8 lane partials combine with the fixed tree
//!   `((l0+l1)+(l2+l3)) + ((l4+l5)+(l6+l7))`; the `len % 8` tail folds in
//!   ascending order with scalar [`fmadd`]. Matmul NN-style loops use one
//!   ascending-`k` fmadd chain per output element (register tiling over
//!   rows/columns never reorders a chain).
//! - **Scalar mode** (`TIMEKD_SIMD=off`): the pre-SIMD 4-wide kernels run
//!   unchanged, preserving their original pinned order exactly.
//!
//! The two modes are two *separately-pinned* orders: each is internally
//! deterministic and thread-count invariant, but they differ from each
//! other (fma rounds once; the lane blocking differs from the 4-wide
//! blocking). `crates/tensor/tests/simd_equivalence.rs` proves both pins.
//!
//! ## Mode resolution
//!
//! [`simd_enabled`] reads `TIMEKD_SIMD` once per process (anything but
//! `off`/`0`/`false` means on); [`with_simd`] is a thread-local scoped
//! override for tests and benches. Dispatchers resolve the mode **once,
//! before fanning out to the worker pool**, and pass it into the `_block`
//! kernels as a plain `bool` — worker threads never consult the
//! environment or the thread-local themselves, so the override composes
//! correctly with `with_threads`.

use std::cell::Cell;
use std::sync::OnceLock;

/// Process-wide `TIMEKD_SIMD` setting, read once on first use.
static ENV_SIMD: OnceLock<bool> = OnceLock::new();

thread_local! {
    /// Scoped override installed by [`with_simd`]; `None` defers to the env.
    static SIMD_OVERRIDE: Cell<Option<bool>> = const { Cell::new(None) };
}

/// Returns whether the SIMD microkernels are enabled on this thread.
///
/// Resolution order: the innermost [`with_simd`] override on this thread,
/// else the `TIMEKD_SIMD` environment variable (`off`/`0`/`false` disable;
/// default is on). Dispatchers call this once before any worker fan-out;
/// the resolved `bool` travels with the task, so pool threads inherit the
/// caller's mode. First use may allocate (env read) — executors that must
/// stay zero-alloc resolve the mode at construction time.
pub fn simd_enabled() -> bool {
    if let Some(forced) = SIMD_OVERRIDE.with(|o| o.get()) {
        return forced;
    }
    *ENV_SIMD.get_or_init(|| {
        !matches!(
            std::env::var("TIMEKD_SIMD").as_deref(),
            Ok("off") | Ok("0") | Ok("false")
        )
    })
}

/// Runs `f` with the SIMD mode forced to `on` on the current thread.
///
/// Restores the previous override when `f` returns (or unwinds via the
/// guard). Only affects mode *resolution* — kernels already dispatched
/// with a resolved `bool` are unaffected. Used by the equivalence tests
/// and the bench harness to measure both pinned orders in one process.
pub fn with_simd<T>(on: bool, f: impl FnOnce() -> T) -> T {
    struct Restore(Option<bool>);
    impl Drop for Restore {
        fn drop(&mut self) {
            SIMD_OVERRIDE.with(|o| o.set(self.0));
        }
    }
    let prev = SIMD_OVERRIDE.with(|o| o.replace(Some(on)));
    let _restore = Restore(prev);
    f()
}

/// Scalar fused multiply-add with a deterministic per-build contract.
///
/// Compiles to a single `vfmadd` when the build target has FMA (the
/// committed `.cargo/config.toml` sets `target-cpu=native`); otherwise
/// falls back to `a * b + c` so that builds without hardware FMA never
/// hit the slow libm `fma` path. Within one build the choice is fixed,
/// which is all the determinism contract requires.
#[inline(always)]
pub fn fmadd(a: f32, b: f32, c: f32) -> f32 {
    if cfg!(target_feature = "fma") {
        a.mul_add(b, c)
    } else {
        a * b + c
    }
}

/// Eight f32 lanes in a plain array, aligned for one AVX2 register.
///
/// Every operation is written as a straight-line per-lane loop so LLVM's
/// SLP vectorizer lowers it to single vector instructions under
/// `target-cpu=native`, while remaining portable scalar code elsewhere.
#[derive(Clone, Copy, Debug)]
#[repr(C, align(32))]
pub struct F32x8(pub [f32; 8]);

impl F32x8 {
    /// Number of lanes.
    pub const LANES: usize = 8;

    /// All-zero vector.
    pub const ZERO: F32x8 = F32x8([0.0; 8]);

    /// Broadcasts `x` into every lane.
    #[inline(always)]
    pub fn splat(x: f32) -> F32x8 {
        F32x8([x; 8])
    }

    /// Loads lanes from the first 8 elements of `src`.
    #[inline(always)]
    pub fn load(src: &[f32]) -> F32x8 {
        let mut lanes = [0.0f32; 8];
        lanes.copy_from_slice(&src[..8]);
        F32x8(lanes)
    }

    /// Stores lanes into the first 8 elements of `dst`.
    #[inline(always)]
    pub fn store(self, dst: &mut [f32]) {
        dst[..8].copy_from_slice(&self.0);
    }

    /// Lane-wise addition.
    #[inline(always)]
    pub fn add(self, rhs: F32x8) -> F32x8 {
        let mut out = [0.0f32; 8];
        for l in 0..8 {
            out[l] = self.0[l] + rhs.0[l];
        }
        F32x8(out)
    }

    /// Lane-wise multiplication.
    #[inline(always)]
    pub fn mul(self, rhs: F32x8) -> F32x8 {
        let mut out = [0.0f32; 8];
        for l in 0..8 {
            out[l] = self.0[l] * rhs.0[l];
        }
        F32x8(out)
    }

    /// Lane-wise fused multiply-add: `self * b + c` via [`fmadd`].
    #[inline(always)]
    pub fn fma(self, b: F32x8, c: F32x8) -> F32x8 {
        let mut out = [0.0f32; 8];
        for l in 0..8 {
            out[l] = fmadd(self.0[l], b.0[l], c.0[l]);
        }
        F32x8(out)
    }

    /// Horizontal sum with the pinned tree
    /// `((l0+l1)+(l2+l3)) + ((l4+l5)+(l6+l7))`.
    #[inline(always)]
    pub fn hsum(self) -> f32 {
        let l = self.0;
        ((l[0] + l[1]) + (l[2] + l[3])) + ((l[4] + l[5]) + (l[6] + l[7]))
    }
}

/// Pinned 8-lane dot product: `sum_i a[i] * b[i]` over `a.len()` elements.
///
/// Element `i` goes to lane `i % 8`; lanes accumulate ascending with fma;
/// partials combine via [`F32x8::hsum`]'s fixed tree; the tail folds
/// ascending with scalar [`fmadd`]. This is the SIMD-mode reduction order
/// for every dot-style contraction (NT matmul, attention scores/context).
#[inline]
pub fn dot_lanes(a: &[f32], b: &[f32]) -> f32 {
    let n = a.len();
    let mut acc = F32x8::ZERO;
    let mut i = 0;
    while i + F32x8::LANES <= n {
        acc = F32x8::load(&a[i..]).fma(F32x8::load(&b[i..]), acc);
        i += F32x8::LANES;
    }
    let mut sum = acc.hsum();
    while i < n {
        sum = fmadd(a[i], b[i], sum);
        i += 1;
    }
    sum
}

/// Pinned lane-wise axpy: `dst[j] += a * x[j]` with one fma per element.
///
/// Each output element depends on exactly one product, so lane blocking
/// cannot reorder anything; the SIMD pin is simply "one fused round per
/// element" (scalar mode rounds the multiply and add separately).
#[inline]
pub fn axpy_lanes(dst: &mut [f32], a: f32, x: &[f32]) {
    let n = dst.len();
    let av = F32x8::splat(a);
    let mut j = 0;
    while j + F32x8::LANES <= n {
        let d = av.fma(F32x8::load(&x[j..]), F32x8::load(&dst[j..]));
        d.store(&mut dst[j..]);
        j += F32x8::LANES;
    }
    while j < n {
        dst[j] = fmadd(a, x[j], dst[j]);
        j += 1;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn hsum_uses_pinned_tree() {
        let v = F32x8([1e8, 1.0, -1e8, 1.0, 0.5, 0.25, -0.5, -0.25]);
        let l = v.0;
        let expected = ((l[0] + l[1]) + (l[2] + l[3])) + ((l[4] + l[5]) + (l[6] + l[7]));
        assert_eq!(v.hsum().to_bits(), expected.to_bits());
    }

    #[test]
    fn dot_lanes_matches_blocked_scalar_reference() {
        for n in [0usize, 1, 7, 8, 9, 16, 37, 64, 100] {
            let a: Vec<f32> = (0..n).map(|i| (i as f32 * 0.37).sin()).collect();
            let b: Vec<f32> = (0..n).map(|i| (i as f32 * 0.11).cos()).collect();
            // Scalar replica of the pinned order: 8 lane accumulators,
            // ascending fmadd per lane, fixed combine tree, ascending tail.
            let mut lanes = [0.0f32; 8];
            let blocks = n / 8;
            for blk in 0..blocks {
                for l in 0..8 {
                    let i = blk * 8 + l;
                    lanes[l] = fmadd(a[i], b[i], lanes[l]);
                }
            }
            let mut sum = ((lanes[0] + lanes[1]) + (lanes[2] + lanes[3]))
                + ((lanes[4] + lanes[5]) + (lanes[6] + lanes[7]));
            for i in blocks * 8..n {
                sum = fmadd(a[i], b[i], sum);
            }
            assert_eq!(dot_lanes(&a, &b).to_bits(), sum.to_bits(), "n={n}");
        }
    }

    #[test]
    fn axpy_lanes_matches_per_element_fmadd() {
        for n in [0usize, 1, 7, 8, 13, 32, 53] {
            let x: Vec<f32> = (0..n).map(|i| (i as f32 * 0.19).sin()).collect();
            let mut dst: Vec<f32> = (0..n).map(|i| (i as f32 * 0.07).cos()).collect();
            let mut expect = dst.clone();
            for j in 0..n {
                expect[j] = fmadd(0.8125, x[j], expect[j]);
            }
            axpy_lanes(&mut dst, 0.8125, &x);
            for j in 0..n {
                assert_eq!(dst[j].to_bits(), expect[j].to_bits(), "n={n} j={j}");
            }
        }
    }

    #[test]
    fn with_simd_overrides_and_restores() {
        let ambient = simd_enabled();
        with_simd(false, || {
            assert!(!simd_enabled());
            with_simd(true, || assert!(simd_enabled()));
            assert!(!simd_enabled());
        });
        assert_eq!(simd_enabled(), ambient);
    }
}
