//! Shape and broadcasting arithmetic for dense row-major tensors.
//!
//! A [`Shape`] is a small vector of dimension sizes. All tensors in this
//! crate are dense and row-major (C order), so strides are always derivable
//! from the shape; we never store them separately. Broadcasting follows the
//! NumPy rules: trailing axes are aligned, and axes of size 1 stretch.

use std::fmt;

/// Dimension sizes of a dense row-major tensor.
///
/// The empty shape `[]` denotes a scalar with exactly one element.
#[derive(Clone, PartialEq, Eq, Hash)]
pub struct Shape(Vec<usize>);

impl Shape {
    /// Creates a shape from dimension sizes.
    pub fn new(dims: impl Into<Vec<usize>>) -> Self {
        Shape(dims.into())
    }

    /// The scalar shape `[]`.
    pub fn scalar() -> Self {
        Shape(Vec::new())
    }

    /// Dimension sizes as a slice.
    #[inline]
    pub fn dims(&self) -> &[usize] {
        &self.0
    }

    /// Number of axes (0 for a scalar).
    #[inline]
    pub fn rank(&self) -> usize {
        self.0.len()
    }

    /// Total number of elements (1 for a scalar, 0 if any axis is 0).
    #[inline]
    pub fn num_elements(&self) -> usize {
        self.0.iter().product()
    }

    /// Size of axis `axis`. Panics if out of range.
    #[inline]
    pub fn dim(&self, axis: usize) -> usize {
        self.0[axis]
    }

    /// Row-major strides, in elements.
    ///
    /// `strides()[i]` is the distance between consecutive indices along axis
    /// `i`. A scalar has no strides.
    pub fn strides(&self) -> Vec<usize> {
        let mut strides = vec![0; self.rank()];
        let mut acc = 1usize;
        for i in (0..self.rank()).rev() {
            strides[i] = acc;
            acc *= self.0[i];
        }
        strides
    }

    /// Converts a multi-dimensional index to a flat offset.
    ///
    /// Panics in debug builds if `index` is out of bounds.
    pub fn flat_index(&self, index: &[usize]) -> usize {
        debug_assert_eq!(index.len(), self.rank(), "index rank mismatch");
        let mut flat = 0usize;
        let mut acc = 1usize;
        for i in (0..self.rank()).rev() {
            debug_assert!(
                index[i] < self.0[i],
                "index {index:?} out of bounds for {self}"
            );
            flat += index[i] * acc;
            acc *= self.0[i];
        }
        flat
    }

    /// Computes the broadcast shape of `self` and `other` per NumPy rules.
    ///
    /// Returns `None` if the shapes are incompatible.
    pub fn broadcast_with(&self, other: &Shape) -> Option<Shape> {
        let rank = self.rank().max(other.rank());
        let mut dims = vec![0usize; rank];
        for (i, dim) in dims.iter_mut().enumerate() {
            let a = axis_from_right(&self.0, rank - 1 - i);
            let b = axis_from_right(&other.0, rank - 1 - i);
            *dim = match (a, b) {
                (1, d) | (d, 1) => d,
                (d1, d2) if d1 == d2 => d1,
                _ => return None,
            };
        }
        Some(Shape(dims))
    }

    /// True if a tensor of this shape can broadcast to `target` without
    /// changing `target`.
    pub fn broadcasts_to(&self, target: &Shape) -> bool {
        match self.broadcast_with(target) {
            Some(s) => s == *target,
            None => false,
        }
    }

    /// The axes of `target` along which `self` was stretched when
    /// broadcasting to `target` (for gradient reduction), including leading
    /// axes that `self` lacks.
    ///
    /// Panics if `self` does not broadcast to `target`.
    pub fn broadcast_reduction_axes(&self, target: &Shape) -> Vec<usize> {
        assert!(
            self.broadcasts_to(target),
            "{self} does not broadcast to {target}"
        );
        let offset = target.rank() - self.rank();
        let mut axes = Vec::new();
        for i in 0..target.rank() {
            let stretched = i < offset || (self.0[i - offset] == 1 && target.0[i] != 1);
            if stretched {
                axes.push(i);
            }
        }
        axes
    }
}

#[inline]
fn axis_from_right(dims: &[usize], k: usize) -> usize {
    if k < dims.len() {
        dims[dims.len() - 1 - k]
    } else {
        1
    }
}

impl fmt::Debug for Shape {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Shape{:?}", self.0)
    }
}

impl fmt::Display for Shape {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "[")?;
        for (i, d) in self.0.iter().enumerate() {
            if i > 0 {
                write!(f, ", ")?;
            }
            write!(f, "{d}")?;
        }
        write!(f, "]")
    }
}

impl From<Vec<usize>> for Shape {
    fn from(dims: Vec<usize>) -> Self {
        Shape(dims)
    }
}

impl From<&[usize]> for Shape {
    fn from(dims: &[usize]) -> Self {
        Shape(dims.to_vec())
    }
}

impl<const N: usize> From<[usize; N]> for Shape {
    fn from(dims: [usize; N]) -> Self {
        Shape(dims.to_vec())
    }
}

/// Iterates over all multi-dimensional indices of `shape` in row-major order.
///
/// Used by broadcasting kernels; for hot same-shape paths we bypass this.
#[derive(Debug)]
pub struct IndexIter {
    dims: Vec<usize>,
    current: Vec<usize>,
    done: bool,
}

impl IndexIter {
    /// Creates an iterator over every index of `shape`.
    pub fn new(shape: &Shape) -> Self {
        let done = shape.num_elements() == 0;
        IndexIter {
            dims: shape.dims().to_vec(),
            current: vec![0; shape.rank()],
            done,
        }
    }
}

impl Iterator for IndexIter {
    type Item = Vec<usize>;

    fn next(&mut self) -> Option<Vec<usize>> {
        if self.done {
            return None;
        }
        let out = self.current.clone();
        // Advance odometer.
        let mut i = self.dims.len();
        loop {
            if i == 0 {
                self.done = true;
                break;
            }
            i -= 1;
            self.current[i] += 1;
            if self.current[i] < self.dims[i] {
                break;
            }
            self.current[i] = 0;
        }
        Some(out)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn strides_row_major() {
        let s = Shape::new([2, 3, 4]);
        assert_eq!(s.strides(), vec![12, 4, 1]);
        assert_eq!(s.num_elements(), 24);
    }

    #[test]
    fn scalar_shape() {
        let s = Shape::scalar();
        assert_eq!(s.rank(), 0);
        assert_eq!(s.num_elements(), 1);
        assert!(s.strides().is_empty());
    }

    #[test]
    fn flat_index_round_trip() {
        let s = Shape::new([2, 3, 4]);
        let mut seen = [false; 24];
        for idx in IndexIter::new(&s) {
            let f = s.flat_index(&idx);
            assert!(!seen[f]);
            seen[f] = true;
        }
        assert!(seen.iter().all(|&b| b));
    }

    #[test]
    fn broadcast_basic() {
        let a = Shape::new([3, 1]);
        let b = Shape::new([1, 4]);
        assert_eq!(a.broadcast_with(&b).unwrap(), Shape::new([3, 4]));
    }

    #[test]
    fn broadcast_rank_extension() {
        let a = Shape::new([4]);
        let b = Shape::new([2, 3, 4]);
        assert_eq!(a.broadcast_with(&b).unwrap(), Shape::new([2, 3, 4]));
        assert!(a.broadcasts_to(&b));
        assert!(!b.broadcasts_to(&a));
    }

    #[test]
    fn broadcast_incompatible() {
        let a = Shape::new([3, 2]);
        let b = Shape::new([3, 4]);
        assert!(a.broadcast_with(&b).is_none());
    }

    #[test]
    fn broadcast_scalar() {
        let a = Shape::scalar();
        let b = Shape::new([5, 6]);
        assert_eq!(a.broadcast_with(&b).unwrap(), b);
        assert_eq!(a.broadcast_reduction_axes(&b), vec![0, 1]);
    }

    #[test]
    fn reduction_axes() {
        let a = Shape::new([1, 4]);
        let t = Shape::new([2, 3, 4]);
        assert_eq!(a.broadcast_reduction_axes(&t), vec![0, 1]);
        let b = Shape::new([3, 1]);
        let t2 = Shape::new([3, 5]);
        assert_eq!(b.broadcast_reduction_axes(&t2), vec![1]);
    }

    #[test]
    fn index_iter_order() {
        let s = Shape::new([2, 2]);
        let v: Vec<_> = IndexIter::new(&s).collect();
        assert_eq!(v, vec![vec![0, 0], vec![0, 1], vec![1, 0], vec![1, 1]]);
    }

    #[test]
    fn index_iter_empty() {
        let s = Shape::new([2, 0, 3]);
        assert_eq!(IndexIter::new(&s).count(), 0);
    }
}
