//! Graph auditing: structural verification and statistics for a recorded
//! autograd DAG.
//!
//! [`GraphAudit::run`] walks every node reachable from a root through the
//! recorded `parents` edges and verifies the invariants the engine relies
//! on but cannot express in types:
//!
//! - data and gradient buffer lengths match the node's shape;
//! - no interior (non-leaf) node retains an accumulated gradient — the
//!   backward pass frees interior buffers eagerly, so a retained one means
//!   a second backward through the node would double-accumulate into its
//!   parents;
//! - no node carries a backward closure that gradient flow can never
//!   reach (no recorded parents, or no parent requiring grad).
//!
//! It also reports node/leaf/parameter counts, the longest root-to-leaf
//! path, and resident data/gradient bytes, which makes graph blow-ups
//! (e.g. an accidentally retained training graph) visible in one line.

use std::collections::HashMap;

use crate::tensor::Tensor;

/// Identity and shape of a node referenced by an [`AuditIssue`].
#[derive(Clone, Debug)]
pub struct NodeSummary {
    /// Unique node id.
    pub id: u64,
    /// Producing op name (`"leaf"` / `"param"` for leaves).
    pub op: &'static str,
    /// Shape rendered as text, e.g. `[4, 8]`.
    pub shape: String,
}

impl NodeSummary {
    fn of(t: &Tensor) -> NodeSummary {
        NodeSummary {
            id: t.id(),
            op: t.op_name(),
            shape: t.shape().to_string(),
        }
    }
}

impl std::fmt::Display for NodeSummary {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "#{} {} {}", self.id, self.op, self.shape)
    }
}

/// A structural defect found in the graph.
#[derive(Clone, Debug)]
pub enum AuditIssue {
    /// The raw data buffer length disagrees with the node's shape.
    DataShapeMismatch {
        /// Offending node.
        node: NodeSummary,
        /// Actual buffer length.
        data_len: usize,
        /// `shape.num_elements()`.
        expected: usize,
    },
    /// The gradient buffer length disagrees with the node's shape.
    GradShapeMismatch {
        /// Offending node.
        node: NodeSummary,
        /// Actual gradient buffer length.
        grad_len: usize,
        /// `shape.num_elements()`.
        expected: usize,
    },
    /// A non-leaf node still holds an accumulated gradient; a subsequent
    /// backward through it would double-accumulate into its parents.
    RetainedInteriorGrad {
        /// Offending node.
        node: NodeSummary,
    },
    /// A node records a backward closure that can never fire usefully:
    /// either it has no recorded parents or none of them requires grad.
    DanglingBackward {
        /// Offending node.
        node: NodeSummary,
    },
}

impl std::fmt::Display for AuditIssue {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            AuditIssue::DataShapeMismatch { node, data_len, expected } => write!(
                f,
                "data/shape mismatch on {node}: buffer has {data_len} elements, shape wants {expected}"
            ),
            AuditIssue::GradShapeMismatch { node, grad_len, expected } => write!(
                f,
                "grad/shape mismatch on {node}: gradient has {grad_len} elements, shape wants {expected}"
            ),
            AuditIssue::RetainedInteriorGrad { node } => write!(
                f,
                "retained interior gradient on {node}: double accumulation risk on next backward"
            ),
            AuditIssue::DanglingBackward { node } => {
                write!(f, "dangling backward closure on {node}: gradient flow never reaches it")
            }
        }
    }
}

/// Aggregate statistics over the audited graph.
#[derive(Clone, Copy, Debug, Default)]
pub struct GraphStats {
    /// Total reachable nodes.
    pub nodes: usize,
    /// Total recorded parent edges across reachable nodes.
    pub edges: usize,
    /// Leaves (constants and parameters).
    pub leaves: usize,
    /// Trainable leaves.
    pub params: usize,
    /// Longest root-to-leaf path length in edges.
    pub max_depth: usize,
    /// Bytes held by data buffers.
    pub data_bytes: usize,
    /// Bytes held by accumulated gradient buffers.
    pub grad_bytes: usize,
}

/// Result of auditing the graph reachable from one root tensor.
#[derive(Debug)]
pub struct GraphAudit {
    /// Structural defects found, in discovery order.
    pub issues: Vec<AuditIssue>,
    /// Aggregate statistics.
    pub stats: GraphStats,
}

impl GraphAudit {
    /// Walks the graph reachable from `root` and checks every node.
    pub fn run(root: &Tensor) -> GraphAudit {
        let mut issues = Vec::new();
        let mut stats = GraphStats::default();
        // Depth of a node = longest path from the root reaching it;
        // computed with a BFS-like relaxation (the DAG is small enough
        // that revisiting on a longer path is fine, and `parents` edges
        // cannot cycle because ids strictly decrease toward leaves).
        let mut depth: HashMap<u64, usize> = HashMap::new();
        let mut stack = vec![(root.clone(), 0usize)];
        while let Some((t, d)) = stack.pop() {
            match depth.get(&t.id()) {
                Some(&seen) if seen >= d => continue,
                Some(_) => {
                    // Deeper path to an already-audited node: update depth
                    // only, don't re-check or re-count.
                    depth.insert(t.id(), d);
                    for p in t.parents() {
                        stack.push((p.clone(), d + 1));
                    }
                    continue;
                }
                None => {}
            }
            depth.insert(t.id(), d);
            stats.nodes += 1;
            stats.edges += t.parents().len();
            stats.max_depth = stats.max_depth.max(d);
            let expected = t.num_elements();
            stats.data_bytes += t.data_len() * std::mem::size_of::<f32>();
            if t.data_len() != expected {
                issues.push(AuditIssue::DataShapeMismatch {
                    node: NodeSummary::of(&t),
                    data_len: t.data_len(),
                    expected,
                });
            }
            if let Some(grad_len) = t.grad_len() {
                stats.grad_bytes += grad_len * std::mem::size_of::<f32>();
                if grad_len != expected {
                    issues.push(AuditIssue::GradShapeMismatch {
                        node: NodeSummary::of(&t),
                        grad_len,
                        expected,
                    });
                }
                if !t.is_leaf() {
                    issues.push(AuditIssue::RetainedInteriorGrad {
                        node: NodeSummary::of(&t),
                    });
                }
            }
            if t.is_leaf() {
                stats.leaves += 1;
                if t.requires_grad() {
                    stats.params += 1;
                }
            } else if !t.parents().iter().any(Tensor::requires_grad) {
                issues.push(AuditIssue::DanglingBackward {
                    node: NodeSummary::of(&t),
                });
            }
            for p in t.parents() {
                stack.push((p.clone(), d + 1));
            }
        }
        GraphAudit { issues, stats }
    }

    /// True when no structural defect was found.
    pub fn is_clean(&self) -> bool {
        self.issues.is_empty()
    }

    /// Multi-line human-readable report (stats line + one line per issue).
    pub fn report(&self) -> String {
        let s = &self.stats;
        let mut out = format!(
            "graph: {} nodes ({} leaves, {} params), depth {}, {} data bytes, {} grad bytes\n",
            s.nodes, s.leaves, s.params, s.max_depth, s.data_bytes, s.grad_bytes
        );
        if self.issues.is_empty() {
            out.push_str("no issues\n");
        } else {
            for issue in &self.issues {
                out.push_str(&format!("issue: {issue}\n"));
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny_graph() -> (Tensor, Tensor) {
        let p = Tensor::param(vec![1.0, 2.0, 3.0], [3]);
        let loss = p.mul_scalar(2.0).sum();
        (p, loss)
    }

    #[test]
    fn clean_graph_audits_clean() {
        let (_p, loss) = tiny_graph();
        let audit = GraphAudit::run(&loss);
        assert!(audit.is_clean(), "{}", audit.report());
        assert_eq!(audit.stats.nodes, 3);
        assert_eq!(audit.stats.leaves, 1);
        assert_eq!(audit.stats.params, 1);
        assert_eq!(audit.stats.max_depth, 2);
        assert_eq!(audit.stats.data_bytes, (3 + 3 + 1) * 4);
        assert_eq!(audit.stats.grad_bytes, 0);
    }

    #[test]
    fn audit_stays_clean_after_backward() {
        let (p, loss) = tiny_graph();
        loss.backward();
        let audit = GraphAudit::run(&loss);
        assert!(audit.is_clean(), "{}", audit.report());
        // The leaf keeps its gradient for the optimizer.
        assert_eq!(audit.stats.grad_bytes, p.num_elements() * 4);
    }

    #[test]
    fn retained_interior_grad_is_flagged() {
        let p = Tensor::param(vec![1.0, 2.0], [2]);
        let y = p.mul_scalar(2.0);
        // Inject a gradient into the interior node outside a backward pass.
        y.accumulate_grad(&[1.0, 1.0]);
        let audit = GraphAudit::run(&y.sum());
        assert!(
            audit
                .issues
                .iter()
                .any(|i| matches!(i, AuditIssue::RetainedInteriorGrad { node } if node.op == "mul_scalar")),
            "{}",
            audit.report()
        );
    }

    #[test]
    fn grad_shape_mismatch_is_flagged() {
        let p = Tensor::param(vec![1.0, 2.0, 3.0], [3]);
        p.set_raw_grad_for_tests(vec![1.0; 5]);
        let audit = GraphAudit::run(&p);
        assert!(
            audit.issues.iter().any(|i| matches!(
                i,
                AuditIssue::GradShapeMismatch {
                    grad_len: 5,
                    expected: 3,
                    ..
                }
            )),
            "{}",
            audit.report()
        );
    }

    #[test]
    fn depth_uses_longest_path() {
        // Diamond: p -> a, p -> b (via longer chain), a+b -> loss.
        let p = Tensor::param(vec![1.0], [1]);
        let a = p.mul_scalar(2.0);
        let b = p.mul_scalar(3.0).add_scalar(1.0).add_scalar(2.0);
        let loss = a.add(&b).sum();
        let audit = GraphAudit::run(&loss);
        // p via b's chain: loss -> add -> add_scalar -> add_scalar ->
        // mul_scalar -> p = 5 edges.
        assert_eq!(audit.stats.max_depth, 5, "{}", audit.report());
        // p counted once.
        assert_eq!(audit.stats.params, 1);
    }

    #[test]
    fn report_mentions_ops_and_counts() {
        let (_p, loss) = tiny_graph();
        let report = GraphAudit::run(&loss).report();
        assert!(report.contains("3 nodes"));
        assert!(report.contains("no issues"));
    }
}
