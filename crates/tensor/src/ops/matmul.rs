//! Matrix multiplication: 2-D, batched 3-D, and the `[..., K] @ [K, N]`
//! contraction used by linear layers.

use crate::shape::Shape;
use crate::tensor::Tensor;

/// `out[m, n] += a[m, k] * b[k, n]` over dense row-major buffers.
///
/// Loop order i-k-j keeps the inner loop streaming over contiguous rows of
/// `b` and `out`, which is the cache-friendly order for row-major data.
pub(crate) fn mm_accumulate(a: &[f32], b: &[f32], out: &mut [f32], m: usize, k: usize, n: usize) {
    debug_assert_eq!(a.len(), m * k);
    debug_assert_eq!(b.len(), k * n);
    debug_assert_eq!(out.len(), m * n);
    for i in 0..m {
        let a_row = &a[i * k..(i + 1) * k];
        let out_row = &mut out[i * n..(i + 1) * n];
        for (kk, &a_ik) in a_row.iter().enumerate() {
            if a_ik == 0.0 {
                continue;
            }
            let b_row = &b[kk * n..(kk + 1) * n];
            for (o, &b_kj) in out_row.iter_mut().zip(b_row) {
                *o += a_ik * b_kj;
            }
        }
    }
}

/// `out[m, n] += a[k, m]ᵀ * b[k, n]` (contract over the first axis of both).
pub(crate) fn mm_tn_accumulate(
    a: &[f32],
    b: &[f32],
    out: &mut [f32],
    m: usize,
    k: usize,
    n: usize,
) {
    debug_assert_eq!(a.len(), k * m);
    debug_assert_eq!(b.len(), k * n);
    debug_assert_eq!(out.len(), m * n);
    for kk in 0..k {
        let a_row = &a[kk * m..(kk + 1) * m];
        let b_row = &b[kk * n..(kk + 1) * n];
        for i in 0..m {
            let a_ki = a_row[i];
            if a_ki == 0.0 {
                continue;
            }
            let out_row = &mut out[i * n..(i + 1) * n];
            for (o, &b_kj) in out_row.iter_mut().zip(b_row) {
                *o += a_ki * b_kj;
            }
        }
    }
}

/// `out[m, n] += a[m, k] * b[n, k]ᵀ` (contract over the last axis of both).
pub(crate) fn mm_nt_accumulate(
    a: &[f32],
    b: &[f32],
    out: &mut [f32],
    m: usize,
    k: usize,
    n: usize,
) {
    debug_assert_eq!(a.len(), m * k);
    debug_assert_eq!(b.len(), n * k);
    debug_assert_eq!(out.len(), m * n);
    for i in 0..m {
        let a_row = &a[i * k..(i + 1) * k];
        let out_row = &mut out[i * n..(i + 1) * n];
        for (j, o) in out_row.iter_mut().enumerate() {
            let b_row = &b[j * k..(j + 1) * k];
            let mut acc = 0.0f32;
            for (x, y) in a_row.iter().zip(b_row) {
                acc += x * y;
            }
            *o += acc;
        }
    }
}

impl Tensor {
    /// Matrix product.
    ///
    /// Supported shapes:
    /// - `[M, K] @ [K, N] -> [M, N]`
    /// - `[B, M, K] @ [B, K, N] -> [B, M, N]` (batched)
    /// - `[B, M, K] @ [K, N] -> [B, M, N]` (shared right operand, e.g. a
    ///   linear layer applied per batch)
    pub fn matmul(&self, other: &Tensor) -> Tensor {
        let (ar, br) = (self.shape().rank(), other.shape().rank());
        match (ar, br) {
            (2, 2) => self.matmul_2d(other),
            (3, 3) => self.matmul_batched(other),
            (3, 2) => self.matmul_3d_2d(other),
            _ => panic!(
                "matmul: unsupported ranks {} x {} (shapes {} and {})",
                ar,
                br,
                self.shape(),
                other.shape()
            ),
        }
    }

    fn matmul_2d(&self, other: &Tensor) -> Tensor {
        let (m, k) = (self.dims()[0], self.dims()[1]);
        let (k2, n) = (other.dims()[0], other.dims()[1]);
        assert_eq!(
            k,
            k2,
            "matmul: inner dims differ: {} vs {}",
            self.shape(),
            other.shape()
        );
        let mut out = vec![0.0f32; m * n];
        mm_accumulate(&self.data(), &other.data(), &mut out, m, k, n);
        Tensor::from_op(
            "matmul_2d",
            out,
            Shape::new([m, n]),
            vec![self.clone(), other.clone()],
            Box::new(move |grad, parents| {
                let (a, b) = (&parents[0], &parents[1]);
                if a.requires_grad() {
                    // gA = gC @ Bᵀ
                    let mut ga = vec![0.0f32; m * k];
                    mm_nt_accumulate(grad, &b.data(), &mut ga, m, n, k);
                    a.accumulate_grad(&ga);
                }
                if b.requires_grad() {
                    // gB = Aᵀ @ gC
                    let mut gb = vec![0.0f32; k * n];
                    mm_tn_accumulate(&a.data(), grad, &mut gb, k, m, n);
                    b.accumulate_grad(&gb);
                }
            }),
        )
    }

    fn matmul_batched(&self, other: &Tensor) -> Tensor {
        let (ba, m, k) = (self.dims()[0], self.dims()[1], self.dims()[2]);
        let (bb, k2, n) = (other.dims()[0], other.dims()[1], other.dims()[2]);
        assert_eq!(ba, bb, "batched matmul: batch dims differ");
        assert_eq!(k, k2, "batched matmul: inner dims differ");
        let mut out = vec![0.0f32; ba * m * n];
        {
            let a = self.data();
            let b = other.data();
            for t in 0..ba {
                mm_accumulate(
                    &a[t * m * k..(t + 1) * m * k],
                    &b[t * k * n..(t + 1) * k * n],
                    &mut out[t * m * n..(t + 1) * m * n],
                    m,
                    k,
                    n,
                );
            }
        }
        Tensor::from_op(
            "matmul_batched",
            out,
            Shape::new([ba, m, n]),
            vec![self.clone(), other.clone()],
            Box::new(move |grad, parents| {
                let (a, b) = (&parents[0], &parents[1]);
                if a.requires_grad() {
                    let b_data = b.data();
                    let mut ga = vec![0.0f32; ba * m * k];
                    for t in 0..ba {
                        mm_nt_accumulate(
                            &grad[t * m * n..(t + 1) * m * n],
                            &b_data[t * k * n..(t + 1) * k * n],
                            &mut ga[t * m * k..(t + 1) * m * k],
                            m,
                            n,
                            k,
                        );
                    }
                    drop(b_data);
                    a.accumulate_grad(&ga);
                }
                if b.requires_grad() {
                    let a_data = a.data();
                    let mut gb = vec![0.0f32; ba * k * n];
                    for t in 0..ba {
                        mm_tn_accumulate(
                            &a_data[t * m * k..(t + 1) * m * k],
                            &grad[t * m * n..(t + 1) * m * n],
                            &mut gb[t * k * n..(t + 1) * k * n],
                            k,
                            m,
                            n,
                        );
                    }
                    drop(a_data);
                    b.accumulate_grad(&gb);
                }
            }),
        )
    }

    fn matmul_3d_2d(&self, other: &Tensor) -> Tensor {
        let (ba, m, k) = (self.dims()[0], self.dims()[1], self.dims()[2]);
        let (k2, n) = (other.dims()[0], other.dims()[1]);
        assert_eq!(k, k2, "matmul 3dx2d: inner dims differ");
        // Treat as a single [B*M, K] @ [K, N].
        let mut out = vec![0.0f32; ba * m * n];
        mm_accumulate(&self.data(), &other.data(), &mut out, ba * m, k, n);
        Tensor::from_op(
            "matmul_3d_2d",
            out,
            Shape::new([ba, m, n]),
            vec![self.clone(), other.clone()],
            Box::new(move |grad, parents| {
                let (a, b) = (&parents[0], &parents[1]);
                if a.requires_grad() {
                    let mut ga = vec![0.0f32; ba * m * k];
                    mm_nt_accumulate(grad, &b.data(), &mut ga, ba * m, n, k);
                    a.accumulate_grad(&ga);
                }
                if b.requires_grad() {
                    let mut gb = vec![0.0f32; k * n];
                    mm_tn_accumulate(&a.data(), grad, &mut gb, k, ba * m, n);
                    b.accumulate_grad(&gb);
                }
            }),
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mm_2d_known() {
        let a = Tensor::from_vec(vec![1.0, 2.0, 3.0, 4.0], [2, 2]);
        let b = Tensor::from_vec(vec![5.0, 6.0, 7.0, 8.0], [2, 2]);
        // [[1,2],[3,4]] @ [[5,6],[7,8]] = [[19,22],[43,50]]
        assert_eq!(a.matmul(&b).to_vec(), vec![19.0, 22.0, 43.0, 50.0]);
    }

    #[test]
    fn mm_rectangular() {
        let a = Tensor::from_vec((1..=6).map(|x| x as f32).collect(), [2, 3]);
        let b = Tensor::from_vec((1..=12).map(|x| x as f32).collect(), [3, 4]);
        let c = a.matmul(&b);
        assert_eq!(c.dims(), &[2, 4]);
        assert_eq!(c.at(&[0, 0]), 1.0 * 1.0 + 2.0 * 5.0 + 3.0 * 9.0);
        assert_eq!(c.at(&[1, 3]), 4.0 * 4.0 + 5.0 * 8.0 + 6.0 * 12.0);
    }

    #[test]
    fn mm_identity() {
        let a = Tensor::from_vec(vec![1.0, 2.0, 3.0, 4.0], [2, 2]);
        let i = Tensor::from_vec(vec![1.0, 0.0, 0.0, 1.0], [2, 2]);
        assert_eq!(a.matmul(&i).to_vec(), a.to_vec());
        assert_eq!(i.matmul(&a).to_vec(), a.to_vec());
    }

    #[test]
    fn mm_grad() {
        // L = sum(A @ B): gA = rowsum over B's columns, gB likewise.
        let a = Tensor::param(vec![1.0, 2.0, 3.0, 4.0], [2, 2]);
        let b = Tensor::param(vec![5.0, 6.0, 7.0, 8.0], [2, 2]);
        a.matmul(&b).sum().backward();
        // gA = 1s @ Bᵀ = [[11, 15], [11, 15]]
        assert_eq!(a.grad().unwrap(), vec![11.0, 15.0, 11.0, 15.0]);
        // gB = Aᵀ @ 1s = [[4, 4], [6, 6]]
        assert_eq!(b.grad().unwrap(), vec![4.0, 4.0, 6.0, 6.0]);
    }

    #[test]
    fn batched_matches_per_batch() {
        let a = Tensor::from_vec((0..12).map(|x| x as f32).collect(), [2, 2, 3]);
        let b = Tensor::from_vec((0..18).map(|x| x as f32 * 0.5).collect(), [2, 3, 3]);
        let c = a.matmul(&b);
        assert_eq!(c.dims(), &[2, 2, 3]);
        // Check batch 1 manually against 2-D matmul.
        let a1 = Tensor::from_vec(a.to_vec()[6..12].to_vec(), [2, 3]);
        let b1 = Tensor::from_vec(b.to_vec()[9..18].to_vec(), [3, 3]);
        let c1 = a1.matmul(&b1);
        assert_eq!(&c.to_vec()[6..12], c1.to_vec().as_slice());
    }

    #[test]
    fn batched_grad_flows() {
        let a = Tensor::param(vec![1.0; 12], [2, 2, 3]);
        let b = Tensor::param(vec![1.0; 18], [2, 3, 3]);
        a.matmul(&b).sum().backward();
        assert_eq!(a.grad().unwrap(), vec![3.0; 12]);
        assert_eq!(b.grad().unwrap(), vec![2.0; 18]);
    }

    #[test]
    fn mm_3d_2d_like_linear() {
        let x = Tensor::from_vec((0..12).map(|v| v as f32).collect(), [2, 2, 3]);
        let w = Tensor::from_vec(vec![1.0; 12], [3, 4]);
        let y = x.matmul(&w);
        assert_eq!(y.dims(), &[2, 2, 4]);
        // Every output = sum of the 3 inputs in that row.
        assert_eq!(y.at(&[0, 0, 0]), 0.0 + 1.0 + 2.0);
        assert_eq!(y.at(&[1, 1, 3]), 9.0 + 10.0 + 11.0);
    }

    #[test]
    fn mm_3d_2d_grad() {
        let x = Tensor::param(vec![1.0; 6], [1, 2, 3]);
        let w = Tensor::param(vec![2.0; 6], [3, 2]);
        x.matmul(&w).sum().backward();
        assert_eq!(x.grad().unwrap(), vec![4.0; 6]);
        assert_eq!(w.grad().unwrap(), vec![2.0; 6]);
    }

    #[test]
    #[should_panic(expected = "inner dims differ")]
    fn mm_dim_mismatch_panics() {
        let a = Tensor::zeros([2, 3]);
        let b = Tensor::zeros([4, 2]);
        let _ = a.matmul(&b);
    }

    #[test]
    fn kernel_tn_nt_consistency() {
        // (AᵀB)ᵀ == Bᵀ A — check kernels against each other.
        let a: Vec<f32> = (0..6).map(|x| x as f32 + 1.0).collect(); // [3,2] as k=3,m=2
        let b: Vec<f32> = (0..9).map(|x| x as f32 * 0.5).collect(); // [3,3]
        let mut tn = vec![0.0; 2 * 3];
        mm_tn_accumulate(&a, &b, &mut tn, 2, 3, 3);
        // Build Aᵀ explicitly and use plain mm.
        let mut at = vec![0.0; 6];
        for k in 0..3 {
            for m in 0..2 {
                at[m * 3 + k] = a[k * 2 + m];
            }
        }
        let mut plain = vec![0.0; 6];
        mm_accumulate(&at, &b, &mut plain, 2, 3, 3);
        assert_eq!(tn, plain);
    }
}
