//! Matrix multiplication: 2-D, batched 3-D, and the `[..., K] @ [K, N]`
//! contraction used by linear layers.
//!
//! The three accumulate kernels (`NN`, `TN`, `NT`) are the hottest code in
//! the workspace — nearly all teacher/student training wall-clock is
//! attention and linear-layer GEMMs routed through here. They are:
//!
//! - **explicit-width microkernels**: in SIMD mode (the default) the NN
//!   loop runs 4-row × 16-column [`F32x8`] register tiles of fused
//!   multiply-adds and the NT loop runs the pinned 8-lane
//!   [`simd::dot_lanes`] reduction; with `TIMEKD_SIMD=off` the original
//!   4-wide scalar kernels run unchanged. The two modes are two
//!   separately-pinned reduction orders (see [`crate::simd`]); the mode is
//!   resolved once per dispatch, **before** any worker fan-out;
//! - **packed**: the TN variant transposes its `[K, M]` operand once per
//!   call so the hot loop streams contiguous rows, turning TN into the NN
//!   kernel. NT needs no packing — its `[N, K]` operand is already
//!   contiguous along the contraction axis;
//! - **parallel and bitwise deterministic**: work is partitioned into
//!   disjoint output-row blocks (batched matmul: batch chunks) via
//!   [`crate::parallel`]; every row is computed by exactly one task
//!   running the same serial code as the `TIMEKD_THREADS=1` path, so
//!   parallel results are bitwise identical to serial ones. Sizes below
//!   [`PARALLEL_MULS_CUTOFF`] never touch the pool, and
//!   [`min_rows_per_block`] keeps parallel blocks coarse enough to
//!   amortise dispatch.
//!
//! Naming contract with `timekd-check`: functions ending in `_block` are
//! per-block worker loops — no locks, no allocation, no I/O inside them
//! (enforced by the `no-*-in-worker` lint rules).

use crate::parallel;
use crate::shape::Shape;
use crate::simd::{self, F32x8};
use crate::tensor::Tensor;

/// Minimum multiply count (`m * k * n`) before a kernel call fans out to
/// the worker pool; below this, pool dispatch overhead would exceed the
/// kernel time, so tiny (test-scale) matrices always run serial.
const PARALLEL_MULS_CUTOFF: usize = 64 * 64 * 64;

/// Minimum output rows per parallel block, so the split never gets finer
/// than the register-blocked inner loops can amortise.
const MIN_ROWS_PER_BLOCK: usize = 4;

/// True when a `[m, k] x [k, n]` product is worth pool dispatch.
#[inline]
fn worth_parallel(m: usize, k: usize, n: usize) -> bool {
    m.saturating_mul(k).saturating_mul(n) >= PARALLEL_MULS_CUTOFF
}

/// Work-aware minimum rows per parallel block.
///
/// The flat [`MIN_ROWS_PER_BLOCK`] floor let wide-but-short shapes split
/// into blocks whose pool-dispatch overhead rivalled their kernel time:
/// the v4 baseline's `mm_rect_512x64x256` row measured parallel *slower*
/// than serial (18.8 vs 23.6 GFLOP/s in `BENCH_1786107316.json`). The
/// floor now scales so every block carries at least
/// [`PARALLEL_MULS_CUTOFF`] multiplies — the same "worth dispatching at
/// all" threshold — before the pool may split finer. Partition granularity
/// never affects results: every row block runs the same serial code at any
/// split, so this is purely a scheduling heuristic.
#[inline]
fn min_rows_per_block(k: usize, n: usize) -> usize {
    MIN_ROWS_PER_BLOCK.max(PARALLEL_MULS_CUTOFF.div_ceil(k.saturating_mul(n).max(1)))
}

/// NN worker loop: `out_block[i - i0, n] += a[i, k] * b[k, n]` for rows
/// `i0..i1`. `a` and `b` are the full operands; `out_block` is the
/// caller's exclusive row block. `simd` selects between the two pinned
/// reduction orders; it is resolved by the dispatcher before fan-out so
/// every block of one call runs the same mode.
pub(crate) fn mm_row_block(
    a: &[f32],
    b: &[f32],
    out_block: &mut [f32],
    i0: usize,
    i1: usize,
    k: usize,
    n: usize,
    simd: bool,
) {
    if simd {
        mm_row_simd_block(a, b, out_block, i0, i1, k, n);
    } else {
        mm_row_scalar_block(a, b, out_block, i0, i1, k, n);
    }
}

/// Scalar NN worker loop (`TIMEKD_SIMD=off`): the pre-SIMD kernel,
/// unchanged, preserving its original pinned reduction order exactly.
///
/// Four `k`-steps are fused per pass so each streamed element of `out`
/// receives four multiply-adds per load/store, with a single-step tail
/// for `k % 4` remainders.
pub(crate) fn mm_row_scalar_block(
    a: &[f32],
    b: &[f32],
    out_block: &mut [f32],
    i0: usize,
    i1: usize,
    k: usize,
    n: usize,
) {
    for i in i0..i1 {
        let a_row = &a[i * k..(i + 1) * k];
        let out_row = &mut out_block[(i - i0) * n..(i - i0 + 1) * n];
        let mut kk = 0;
        while kk + 4 <= k {
            let (a0, a1, a2, a3) = (a_row[kk], a_row[kk + 1], a_row[kk + 2], a_row[kk + 3]);
            let b0 = &b[kk * n..(kk + 1) * n];
            let b1 = &b[(kk + 1) * n..(kk + 2) * n];
            let b2 = &b[(kk + 2) * n..(kk + 3) * n];
            let b3 = &b[(kk + 3) * n..(kk + 4) * n];
            for (o, (((&b0j, &b1j), &b2j), &b3j)) in
                out_row.iter_mut().zip(b0.iter().zip(b1).zip(b2).zip(b3))
            {
                *o += a0 * b0j + a1 * b1j + a2 * b2j + a3 * b3j;
            }
            kk += 4;
        }
        while kk < k {
            let a0 = a_row[kk];
            let b0 = &b[kk * n..(kk + 1) * n];
            for (o, &b0j) in out_row.iter_mut().zip(b0) {
                *o += a0 * b0j;
            }
            kk += 1;
        }
    }
}

/// SIMD NN worker loop (the default mode): 4-row × 16-column [`F32x8`]
/// register tiles of fused multiply-adds, with 8-wide and scalar column
/// tails and a single-row loop for `rows % 4` remainders.
///
/// Every output element accumulates exactly one ascending-`k` fmadd chain
/// (`acc = fmadd(a[i,kk], b[kk,j], acc)`) no matter which tile path
/// computes it — register tiling reorders the *schedule*, never a chain —
/// so the SIMD-mode pinned order for NN is simply "one fused round per
/// `k`-step, ascending", identical at any thread count and tile boundary.
pub(crate) fn mm_row_simd_block(
    a: &[f32],
    b: &[f32],
    out_block: &mut [f32],
    i0: usize,
    i1: usize,
    k: usize,
    n: usize,
) {
    const L: usize = F32x8::LANES;
    let mut i = i0;
    while i + 4 <= i1 {
        let a0 = &a[i * k..(i + 1) * k];
        let a1 = &a[(i + 1) * k..(i + 2) * k];
        let a2 = &a[(i + 2) * k..(i + 3) * k];
        let a3 = &a[(i + 3) * k..(i + 4) * k];
        let r0 = (i - i0) * n;
        let (r1, r2, r3) = (r0 + n, r0 + 2 * n, r0 + 3 * n);
        let mut j = 0;
        while j + 2 * L <= n {
            let mut c00 = F32x8::load(&out_block[r0 + j..]);
            let mut c01 = F32x8::load(&out_block[r0 + j + L..]);
            let mut c10 = F32x8::load(&out_block[r1 + j..]);
            let mut c11 = F32x8::load(&out_block[r1 + j + L..]);
            let mut c20 = F32x8::load(&out_block[r2 + j..]);
            let mut c21 = F32x8::load(&out_block[r2 + j + L..]);
            let mut c30 = F32x8::load(&out_block[r3 + j..]);
            let mut c31 = F32x8::load(&out_block[r3 + j + L..]);
            for kk in 0..k {
                let brow = &b[kk * n + j..];
                let b0 = F32x8::load(brow);
                let b1 = F32x8::load(&brow[L..]);
                let s0 = F32x8::splat(a0[kk]);
                c00 = s0.fma(b0, c00);
                c01 = s0.fma(b1, c01);
                let s1 = F32x8::splat(a1[kk]);
                c10 = s1.fma(b0, c10);
                c11 = s1.fma(b1, c11);
                let s2 = F32x8::splat(a2[kk]);
                c20 = s2.fma(b0, c20);
                c21 = s2.fma(b1, c21);
                let s3 = F32x8::splat(a3[kk]);
                c30 = s3.fma(b0, c30);
                c31 = s3.fma(b1, c31);
            }
            c00.store(&mut out_block[r0 + j..]);
            c01.store(&mut out_block[r0 + j + L..]);
            c10.store(&mut out_block[r1 + j..]);
            c11.store(&mut out_block[r1 + j + L..]);
            c20.store(&mut out_block[r2 + j..]);
            c21.store(&mut out_block[r2 + j + L..]);
            c30.store(&mut out_block[r3 + j..]);
            c31.store(&mut out_block[r3 + j + L..]);
            j += 2 * L;
        }
        while j + L <= n {
            let mut c0 = F32x8::load(&out_block[r0 + j..]);
            let mut c1 = F32x8::load(&out_block[r1 + j..]);
            let mut c2 = F32x8::load(&out_block[r2 + j..]);
            let mut c3 = F32x8::load(&out_block[r3 + j..]);
            for kk in 0..k {
                let bv = F32x8::load(&b[kk * n + j..]);
                c0 = F32x8::splat(a0[kk]).fma(bv, c0);
                c1 = F32x8::splat(a1[kk]).fma(bv, c1);
                c2 = F32x8::splat(a2[kk]).fma(bv, c2);
                c3 = F32x8::splat(a3[kk]).fma(bv, c3);
            }
            c0.store(&mut out_block[r0 + j..]);
            c1.store(&mut out_block[r1 + j..]);
            c2.store(&mut out_block[r2 + j..]);
            c3.store(&mut out_block[r3 + j..]);
            j += L;
        }
        while j < n {
            let (mut t0, mut t1, mut t2, mut t3) = (
                out_block[r0 + j],
                out_block[r1 + j],
                out_block[r2 + j],
                out_block[r3 + j],
            );
            for kk in 0..k {
                let bv = b[kk * n + j];
                t0 = simd::fmadd(a0[kk], bv, t0);
                t1 = simd::fmadd(a1[kk], bv, t1);
                t2 = simd::fmadd(a2[kk], bv, t2);
                t3 = simd::fmadd(a3[kk], bv, t3);
            }
            out_block[r0 + j] = t0;
            out_block[r1 + j] = t1;
            out_block[r2 + j] = t2;
            out_block[r3 + j] = t3;
            j += 1;
        }
        i += 4;
    }
    while i < i1 {
        let a_row = &a[i * k..(i + 1) * k];
        let r0 = (i - i0) * n;
        let mut j = 0;
        while j + 2 * L <= n {
            let mut c0 = F32x8::load(&out_block[r0 + j..]);
            let mut c1 = F32x8::load(&out_block[r0 + j + L..]);
            for kk in 0..k {
                let brow = &b[kk * n + j..];
                let s = F32x8::splat(a_row[kk]);
                c0 = s.fma(F32x8::load(brow), c0);
                c1 = s.fma(F32x8::load(&brow[L..]), c1);
            }
            c0.store(&mut out_block[r0 + j..]);
            c1.store(&mut out_block[r0 + j + L..]);
            j += 2 * L;
        }
        while j + L <= n {
            let mut c0 = F32x8::load(&out_block[r0 + j..]);
            for kk in 0..k {
                c0 = F32x8::splat(a_row[kk]).fma(F32x8::load(&b[kk * n + j..]), c0);
            }
            c0.store(&mut out_block[r0 + j..]);
            j += L;
        }
        while j < n {
            let mut t = out_block[r0 + j];
            for kk in 0..k {
                t = simd::fmadd(a_row[kk], b[kk * n + j], t);
            }
            out_block[r0 + j] = t;
            j += 1;
        }
        i += 1;
    }
}

/// NT worker loop: `out_block[i - i0, j] += dot(a[i, :], b[j, :])` for
/// rows `i0..i1`, contracting over the shared last axis of length `k`.
/// `simd` selects the pinned reduction order, resolved before fan-out.
pub(crate) fn mm_nt_row_block(
    a: &[f32],
    b: &[f32],
    out_block: &mut [f32],
    i0: usize,
    i1: usize,
    k: usize,
    n: usize,
    simd: bool,
) {
    if simd {
        mm_nt_row_simd_block(a, b, out_block, i0, i1, k, n);
    } else {
        mm_nt_row_scalar_block(a, b, out_block, i0, i1, k, n);
    }
}

/// SIMD NT worker loop: each output element is one [`simd::dot_lanes`]
/// call — lane `i % 8` blocking, fma chains, fixed combine tree, ascending
/// tail — so the reduction order is pinned per element and independent of
/// the row split.
pub(crate) fn mm_nt_row_simd_block(
    a: &[f32],
    b: &[f32],
    out_block: &mut [f32],
    i0: usize,
    i1: usize,
    k: usize,
    n: usize,
) {
    for i in i0..i1 {
        let a_row = &a[i * k..(i + 1) * k];
        let out_row = &mut out_block[(i - i0) * n..(i - i0 + 1) * n];
        for (j, o) in out_row.iter_mut().enumerate() {
            *o += simd::dot_lanes(a_row, &b[j * k..(j + 1) * k]);
        }
    }
}

/// Scalar NT worker loop (`TIMEKD_SIMD=off`): the pre-SIMD kernel,
/// unchanged. Four independent accumulators per dot product; their
/// combination order `(s0 + s1) + (s2 + s3)` is fixed, so results never
/// depend on the thread split.
pub(crate) fn mm_nt_row_scalar_block(
    a: &[f32],
    b: &[f32],
    out_block: &mut [f32],
    i0: usize,
    i1: usize,
    k: usize,
    n: usize,
) {
    for i in i0..i1 {
        let a_row = &a[i * k..(i + 1) * k];
        let out_row = &mut out_block[(i - i0) * n..(i - i0 + 1) * n];
        for (j, o) in out_row.iter_mut().enumerate() {
            let b_row = &b[j * k..(j + 1) * k];
            let (mut s0, mut s1, mut s2, mut s3) = (0.0f32, 0.0f32, 0.0f32, 0.0f32);
            for (ca, cb) in a_row.chunks_exact(4).zip(b_row.chunks_exact(4)) {
                s0 += ca[0] * cb[0];
                s1 += ca[1] * cb[1];
                s2 += ca[2] * cb[2];
                s3 += ca[3] * cb[3];
            }
            let mut sum = (s0 + s1) + (s2 + s3);
            let tail = k - k % 4;
            for (&x, &y) in a_row[tail..].iter().zip(&b_row[tail..]) {
                sum += x * y;
            }
            *o += sum;
        }
    }
}

/// Cache-blocked transpose of a `[rows, cols]` row-major buffer into a
/// fresh `[cols, rows]` buffer. Used to pack the TN operand once per call
/// so the hot loop can run the (contiguous-streaming) NN kernel.
fn pack_transpose(src: &[f32], rows: usize, cols: usize) -> Vec<f32> {
    let mut dst = vec![0.0f32; src.len()];
    pack_transpose_into(src, &mut dst, rows, cols);
    dst
}

/// Cache-blocked transpose into a caller-provided `[cols, rows]` buffer —
/// the allocation-free form used by plan executors, with the exact tiling
/// of [`pack_transpose`] so packed layouts are byte-identical.
pub(crate) fn pack_transpose_into(src: &[f32], dst: &mut [f32], rows: usize, cols: usize) {
    debug_assert_eq!(src.len(), rows * cols);
    debug_assert_eq!(dst.len(), rows * cols);
    const TB: usize = 32;
    let mut r0 = 0;
    while r0 < rows {
        let r1 = (r0 + TB).min(rows);
        let mut c0 = 0;
        while c0 < cols {
            let c1 = (c0 + TB).min(cols);
            for r in r0..r1 {
                for c in c0..c1 {
                    dst[c * rows + r] = src[r * cols + c];
                }
            }
            c0 = c1;
        }
        r0 = r1;
    }
}

/// `out[m, n] += a[m, k] * b[k, n]` over dense row-major buffers.
///
/// Partitioned across the worker pool by disjoint output-row blocks; each
/// row is computed by [`mm_row_block`] regardless of the split, so the
/// result is bitwise identical to the serial (`TIMEKD_THREADS=1`) path.
pub(crate) fn mm_accumulate(a: &[f32], b: &[f32], out: &mut [f32], m: usize, k: usize, n: usize) {
    debug_assert_eq!(a.len(), m * k);
    debug_assert_eq!(b.len(), k * n);
    debug_assert_eq!(out.len(), m * n);
    let simd = simd::simd_enabled();
    if !worth_parallel(m, k, n) {
        timekd_obs::POOL_SERIAL_FALLBACK.add(1);
        mm_row_block(a, b, out, 0, m, k, n, simd);
        return;
    }
    parallel::par_row_blocks(out, m, n, min_rows_per_block(k, n), |i0, i1, block| {
        mm_row_block(a, b, block, i0, i1, k, n, simd);
    });
}

/// `out[m, n] += a[k, m]ᵀ * b[k, n]` (contract over the first axis of both).
///
/// Packs `a` as `[m, k]` once, then runs the row-blocked NN kernel — the
/// packed layout streams contiguously where the unpacked loop strided by
/// `m` on every step.
pub(crate) fn mm_tn_accumulate(
    a: &[f32],
    b: &[f32],
    out: &mut [f32],
    m: usize,
    k: usize,
    n: usize,
) {
    debug_assert_eq!(a.len(), k * m);
    debug_assert_eq!(b.len(), k * n);
    debug_assert_eq!(out.len(), m * n);
    let at = pack_transpose(a, k, m);
    let simd = simd::simd_enabled();
    if !worth_parallel(m, k, n) {
        timekd_obs::POOL_SERIAL_FALLBACK.add(1);
        mm_row_block(&at, b, out, 0, m, k, n, simd);
        return;
    }
    parallel::par_row_blocks(out, m, n, min_rows_per_block(k, n), |i0, i1, block| {
        mm_row_block(&at, b, block, i0, i1, k, n, simd);
    });
}

/// `out[m, n] += a[m, k] * b[n, k]ᵀ` (contract over the last axis of both).
///
/// No packing: both operands are already contiguous along the contraction
/// axis, so each output element is a straight dot product of two rows.
pub(crate) fn mm_nt_accumulate(
    a: &[f32],
    b: &[f32],
    out: &mut [f32],
    m: usize,
    k: usize,
    n: usize,
) {
    debug_assert_eq!(a.len(), m * k);
    debug_assert_eq!(b.len(), n * k);
    debug_assert_eq!(out.len(), m * n);
    let simd = simd::simd_enabled();
    if !worth_parallel(m, k, n) {
        timekd_obs::POOL_SERIAL_FALLBACK.add(1);
        mm_nt_row_block(a, b, out, 0, m, k, n, simd);
        return;
    }
    parallel::par_row_blocks(out, m, n, min_rows_per_block(k, n), |i0, i1, block| {
        mm_nt_row_block(a, b, block, i0, i1, k, n, simd);
    });
}

/// Runs `body(t, chunk_t)` over the `batch` disjoint chunks of `out`,
/// parallelising over the batch axis when there are at least as many
/// batches as threads (each per-batch kernel then runs serially inside
/// its task); otherwise the batch loop stays serial and the per-batch
/// kernels parallelise internally over rows. Both schedules are bitwise
/// identical because every output row is computed by the same serial
/// worker loop either way.
fn for_each_batch(
    out: &mut [f32],
    chunk_len: usize,
    batch: usize,
    body: impl Fn(usize, &mut [f32]) + Sync,
) {
    if batch >= parallel::effective_threads() {
        parallel::par_chunks(out, chunk_len, batch, body);
    } else {
        for (t, chunk) in out.chunks_mut(chunk_len).enumerate() {
            body(t, chunk);
        }
    }
}

impl Tensor {
    /// Matrix product.
    ///
    /// Supported shapes:
    /// - `[M, K] @ [K, N] -> [M, N]`
    /// - `[B, M, K] @ [B, K, N] -> [B, M, N]` (batched)
    /// - `[B, M, K] @ [K, N] -> [B, M, N]` (shared right operand, e.g. a
    ///   linear layer applied per batch)
    pub fn matmul(&self, other: &Tensor) -> Tensor {
        let (ar, br) = (self.shape().rank(), other.shape().rank());
        match (ar, br) {
            (2, 2) => self.matmul_2d(other),
            (3, 3) => self.matmul_batched(other),
            (3, 2) => self.matmul_3d_2d(other),
            _ => panic!(
                "matmul: unsupported ranks {} x {} (shapes {} and {})",
                ar,
                br,
                self.shape(),
                other.shape()
            ),
        }
    }

    fn matmul_2d(&self, other: &Tensor) -> Tensor {
        let (m, k) = (self.dims()[0], self.dims()[1]);
        let (k2, n) = (other.dims()[0], other.dims()[1]);
        assert_eq!(
            k,
            k2,
            "matmul: inner dims differ: {} vs {}",
            self.shape(),
            other.shape()
        );
        let mut out = vec![0.0f32; m * n];
        mm_accumulate(&self.data(), &other.data(), &mut out, m, k, n);
        Tensor::from_op(
            "matmul_2d",
            out,
            Shape::new([m, n]),
            vec![self.clone(), other.clone()],
            Box::new(move |grad, parents| {
                let (a, b) = (&parents[0], &parents[1]);
                if a.requires_grad() {
                    // gA = gC @ Bᵀ
                    let mut ga = vec![0.0f32; m * k];
                    mm_nt_accumulate(grad, &b.data(), &mut ga, m, n, k);
                    a.accumulate_grad(&ga);
                }
                if b.requires_grad() {
                    // gB = Aᵀ @ gC
                    let mut gb = vec![0.0f32; k * n];
                    mm_tn_accumulate(&a.data(), grad, &mut gb, k, m, n);
                    b.accumulate_grad(&gb);
                }
            }),
        )
    }

    fn matmul_batched(&self, other: &Tensor) -> Tensor {
        let (ba, m, k) = (self.dims()[0], self.dims()[1], self.dims()[2]);
        let (bb, k2, n) = (other.dims()[0], other.dims()[1], other.dims()[2]);
        assert_eq!(ba, bb, "batched matmul: batch dims differ");
        assert_eq!(k, k2, "batched matmul: inner dims differ");
        let mut out = vec![0.0f32; ba * m * n];
        {
            let a_ref = self.data();
            let b_ref = other.data();
            let (a, b): (&[f32], &[f32]) = (&a_ref, &b_ref);
            for_each_batch(&mut out, m * n, ba, |t, chunk| {
                mm_accumulate(
                    &a[t * m * k..(t + 1) * m * k],
                    &b[t * k * n..(t + 1) * k * n],
                    chunk,
                    m,
                    k,
                    n,
                );
            });
        }
        Tensor::from_op(
            "matmul_batched",
            out,
            Shape::new([ba, m, n]),
            vec![self.clone(), other.clone()],
            Box::new(move |grad, parents| {
                let (a, b) = (&parents[0], &parents[1]);
                if a.requires_grad() {
                    let b_ref = b.data();
                    let b_data: &[f32] = &b_ref;
                    let mut ga = vec![0.0f32; ba * m * k];
                    for_each_batch(&mut ga, m * k, ba, |t, chunk| {
                        mm_nt_accumulate(
                            &grad[t * m * n..(t + 1) * m * n],
                            &b_data[t * k * n..(t + 1) * k * n],
                            chunk,
                            m,
                            n,
                            k,
                        );
                    });
                    drop(b_ref);
                    a.accumulate_grad(&ga);
                }
                if b.requires_grad() {
                    let a_ref = a.data();
                    let a_data: &[f32] = &a_ref;
                    let mut gb = vec![0.0f32; ba * k * n];
                    for_each_batch(&mut gb, k * n, ba, |t, chunk| {
                        mm_tn_accumulate(
                            &a_data[t * m * k..(t + 1) * m * k],
                            &grad[t * m * n..(t + 1) * m * n],
                            chunk,
                            k,
                            m,
                            n,
                        );
                    });
                    drop(a_ref);
                    b.accumulate_grad(&gb);
                }
            }),
        )
    }

    fn matmul_3d_2d(&self, other: &Tensor) -> Tensor {
        let (ba, m, k) = (self.dims()[0], self.dims()[1], self.dims()[2]);
        let (k2, n) = (other.dims()[0], other.dims()[1]);
        assert_eq!(k, k2, "matmul 3dx2d: inner dims differ");
        // Treat as a single [B*M, K] @ [K, N].
        let mut out = vec![0.0f32; ba * m * n];
        mm_accumulate(&self.data(), &other.data(), &mut out, ba * m, k, n);
        Tensor::from_op(
            "matmul_3d_2d",
            out,
            Shape::new([ba, m, n]),
            vec![self.clone(), other.clone()],
            Box::new(move |grad, parents| {
                let (a, b) = (&parents[0], &parents[1]);
                if a.requires_grad() {
                    let mut ga = vec![0.0f32; ba * m * k];
                    mm_nt_accumulate(grad, &b.data(), &mut ga, ba * m, n, k);
                    a.accumulate_grad(&ga);
                }
                if b.requires_grad() {
                    let mut gb = vec![0.0f32; k * n];
                    mm_tn_accumulate(&a.data(), grad, &mut gb, k, ba * m, n);
                    b.accumulate_grad(&gb);
                }
            }),
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mm_2d_known() {
        let a = Tensor::from_vec(vec![1.0, 2.0, 3.0, 4.0], [2, 2]);
        let b = Tensor::from_vec(vec![5.0, 6.0, 7.0, 8.0], [2, 2]);
        // [[1,2],[3,4]] @ [[5,6],[7,8]] = [[19,22],[43,50]]
        assert_eq!(a.matmul(&b).to_vec(), vec![19.0, 22.0, 43.0, 50.0]);
    }

    #[test]
    fn mm_rectangular() {
        let a = Tensor::from_vec((1..=6).map(|x| x as f32).collect(), [2, 3]);
        let b = Tensor::from_vec((1..=12).map(|x| x as f32).collect(), [3, 4]);
        let c = a.matmul(&b);
        assert_eq!(c.dims(), &[2, 4]);
        assert_eq!(c.at(&[0, 0]), 1.0 * 1.0 + 2.0 * 5.0 + 3.0 * 9.0);
        assert_eq!(c.at(&[1, 3]), 4.0 * 4.0 + 5.0 * 8.0 + 6.0 * 12.0);
    }

    #[test]
    fn mm_identity() {
        let a = Tensor::from_vec(vec![1.0, 2.0, 3.0, 4.0], [2, 2]);
        let i = Tensor::from_vec(vec![1.0, 0.0, 0.0, 1.0], [2, 2]);
        assert_eq!(a.matmul(&i).to_vec(), a.to_vec());
        assert_eq!(i.matmul(&a).to_vec(), a.to_vec());
    }

    #[test]
    fn mm_grad() {
        // L = sum(A @ B): gA = rowsum over B's columns, gB likewise.
        let a = Tensor::param(vec![1.0, 2.0, 3.0, 4.0], [2, 2]);
        let b = Tensor::param(vec![5.0, 6.0, 7.0, 8.0], [2, 2]);
        a.matmul(&b).sum().backward();
        // gA = 1s @ Bᵀ = [[11, 15], [11, 15]]
        assert_eq!(a.grad().unwrap(), vec![11.0, 15.0, 11.0, 15.0]);
        // gB = Aᵀ @ 1s = [[4, 4], [6, 6]]
        assert_eq!(b.grad().unwrap(), vec![4.0, 4.0, 6.0, 6.0]);
    }

    #[test]
    fn batched_matches_per_batch() {
        let a = Tensor::from_vec((0..12).map(|x| x as f32).collect(), [2, 2, 3]);
        let b = Tensor::from_vec((0..18).map(|x| x as f32 * 0.5).collect(), [2, 3, 3]);
        let c = a.matmul(&b);
        assert_eq!(c.dims(), &[2, 2, 3]);
        // Check batch 1 manually against 2-D matmul.
        let a1 = Tensor::from_vec(a.to_vec()[6..12].to_vec(), [2, 3]);
        let b1 = Tensor::from_vec(b.to_vec()[9..18].to_vec(), [3, 3]);
        let c1 = a1.matmul(&b1);
        assert_eq!(&c.to_vec()[6..12], c1.to_vec().as_slice());
    }

    #[test]
    fn batched_grad_flows() {
        let a = Tensor::param(vec![1.0; 12], [2, 2, 3]);
        let b = Tensor::param(vec![1.0; 18], [2, 3, 3]);
        a.matmul(&b).sum().backward();
        assert_eq!(a.grad().unwrap(), vec![3.0; 12]);
        assert_eq!(b.grad().unwrap(), vec![2.0; 18]);
    }

    #[test]
    fn mm_3d_2d_like_linear() {
        let x = Tensor::from_vec((0..12).map(|v| v as f32).collect(), [2, 2, 3]);
        let w = Tensor::from_vec(vec![1.0; 12], [3, 4]);
        let y = x.matmul(&w);
        assert_eq!(y.dims(), &[2, 2, 4]);
        // Every output = sum of the 3 inputs in that row.
        assert_eq!(y.at(&[0, 0, 0]), 0.0 + 1.0 + 2.0);
        assert_eq!(y.at(&[1, 1, 3]), 9.0 + 10.0 + 11.0);
    }

    #[test]
    fn mm_3d_2d_grad() {
        let x = Tensor::param(vec![1.0; 6], [1, 2, 3]);
        let w = Tensor::param(vec![2.0; 6], [3, 2]);
        x.matmul(&w).sum().backward();
        assert_eq!(x.grad().unwrap(), vec![4.0; 6]);
        assert_eq!(w.grad().unwrap(), vec![2.0; 6]);
    }

    #[test]
    #[should_panic(expected = "inner dims differ")]
    fn mm_dim_mismatch_panics() {
        let a = Tensor::zeros([2, 3]);
        let b = Tensor::zeros([4, 2]);
        let _ = a.matmul(&b);
    }

    #[test]
    fn kernel_tn_nt_consistency() {
        // (AᵀB)ᵀ == Bᵀ A — check kernels against each other.
        let a: Vec<f32> = (0..6).map(|x| x as f32 + 1.0).collect(); // [3,2] as k=3,m=2
        let b: Vec<f32> = (0..9).map(|x| x as f32 * 0.5).collect(); // [3,3]
        let mut tn = vec![0.0; 2 * 3];
        mm_tn_accumulate(&a, &b, &mut tn, 2, 3, 3);
        // Build Aᵀ explicitly and use plain mm.
        let mut at = vec![0.0; 6];
        for k in 0..3 {
            for m in 0..2 {
                at[m * 3 + k] = a[k * 2 + m];
            }
        }
        let mut plain = vec![0.0; 6];
        mm_accumulate(&at, &b, &mut plain, 2, 3, 3);
        assert_eq!(tn, plain);
    }

    #[test]
    fn pack_transpose_roundtrip() {
        // Rectangular transpose, including a shape larger than one 32-wide
        // transpose tile in each direction.
        let (rows, cols) = (37, 41);
        let src: Vec<f32> = (0..rows * cols).map(|v| v as f32).collect();
        let dst = pack_transpose(&src, rows, cols);
        for r in 0..rows {
            for c in 0..cols {
                assert_eq!(dst[c * rows + r], src[r * cols + c]);
            }
        }
        let back = pack_transpose(&dst, cols, rows);
        assert_eq!(back, src);
    }

    #[test]
    fn blocked_kernels_match_naive_reference() {
        // The register-blocked loops must agree with a plain triple loop on
        // exactly-representable inputs (integer-valued f32s), where every
        // summation order yields the same exact result.
        let (m, k, n) = (5, 7, 6);
        let a: Vec<f32> = (0..m * k).map(|v| (v % 11) as f32 - 5.0).collect();
        let b: Vec<f32> = (0..k * n).map(|v| (v % 7) as f32 - 3.0).collect();
        let mut naive = vec![0.0f32; m * n];
        for i in 0..m {
            for j in 0..n {
                for kk in 0..k {
                    naive[i * n + j] += a[i * k + kk] * b[kk * n + j];
                }
            }
        }
        let mut blocked = vec![0.0f32; m * n];
        mm_accumulate(&a, &b, &mut blocked, m, k, n);
        assert_eq!(blocked, naive);

        // NT against the same reference with B laid out as [n, k].
        let mut bt = vec![0.0f32; k * n];
        for kk in 0..k {
            for j in 0..n {
                bt[j * k + kk] = b[kk * n + j];
            }
        }
        let mut nt = vec![0.0f32; m * n];
        mm_nt_accumulate(&a, &bt, &mut nt, m, k, n);
        assert_eq!(nt, naive);
    }
}
