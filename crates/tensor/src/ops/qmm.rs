//! Int8 quantized matmul: the reduced-precision student inference path.
//!
//! Quantization scheme (symmetric, zero-point free):
//!
//! - **Weights** are quantized once at executor bind time with a
//!   *per-output-column* absmax scale: `scale_j = absmax_j / 127`,
//!   `q[j, kk] = round(w[kk, j] / scale_j)` clamped to `[-127, 127]`. The
//!   quantized matrix is stored transposed (`[N, K]`) so the kernel's dot
//!   products stream both operands contiguously. An all-zero column gets
//!   `scale_j = 0` and all-zero codes, dequantizing exactly to zero.
//! - **Activations** are quantized dynamically per row with the same
//!   absmax rule (`scale_i = absmax_i / 127`) into caller-preallocated
//!   scratch — the planned executor never allocates per run.
//! - **Accumulation** is `i32`: products of `i8` codes are exact and
//!   integer addition is associative, so the quantized kernel is bitwise
//!   deterministic under *any* loop order or thread split for free.
//! - **Dequantization** happens at the activation boundary:
//!   `out[i, j] = acc_ij · scale_x_i · scale_w_j`, two f32 rounds per
//!   output element.
//!
//! Worst-case round-trip error per weight is `scale_j / 2` (half a code
//! step); the end-to-end effect on student forecasts is gated by the
//! quantized-vs-f32 MSE-delta check in `timekd-bench`.
//!
//! Naming contract with `timekd-check`: functions ending in `_block` are
//! per-block worker loops — no locks, no allocation, no I/O inside them.

/// An `[K, N]` f32 weight matrix quantized to int8 with per-column absmax
/// scales, stored transposed as `[N, K]` for contiguous kernel dots.
#[derive(Clone, Debug)]
pub struct QuantizedMatrix {
    /// Quantized codes, `[N, K]` layout (row `j` holds output column `j`).
    data: Vec<i8>,
    /// Per-output-column dequantization scales (`absmax_j / 127`).
    scales: Vec<f32>,
    /// Contraction length.
    k: usize,
    /// Output columns.
    n: usize,
}

impl QuantizedMatrix {
    /// Quantizes a row-major `[k, n]` weight matrix.
    pub fn quantize(w: &[f32], k: usize, n: usize) -> QuantizedMatrix {
        assert_eq!(w.len(), k * n, "quantize: weight buffer is not [k, n]");
        let mut data = vec![0i8; k * n];
        let mut scales = vec![0.0f32; n];
        for j in 0..n {
            let mut absmax = 0.0f32;
            for kk in 0..k {
                absmax = absmax.max(w[kk * n + j].abs());
            }
            if absmax == 0.0 {
                continue; // scale stays 0.0, codes stay 0: exact zeros.
            }
            let inv = 127.0 / absmax;
            scales[j] = absmax / 127.0;
            for kk in 0..k {
                let q = (w[kk * n + j] * inv).round().clamp(-127.0, 127.0);
                data[j * k + kk] = q as i8;
            }
        }
        QuantizedMatrix { data, scales, k, n }
    }

    /// Contraction length `K`.
    pub fn k(&self) -> usize {
        self.k
    }

    /// Output column count `N`.
    pub fn n(&self) -> usize {
        self.n
    }

    /// Storage footprint in bytes (codes + scales).
    pub fn bytes(&self) -> usize {
        self.data.len() + self.scales.len() * std::mem::size_of::<f32>()
    }

    /// Quantized codes in `[N, K]` layout.
    pub fn codes(&self) -> &[i8] {
        &self.data
    }

    /// Per-output-column dequantization scales.
    pub fn scales(&self) -> &[f32] {
        &self.scales
    }

    /// Reconstructs the row-major `[k, n]` f32 matrix (test/debug aid);
    /// every element is within `scales[j] / 2` of the original.
    pub fn dequantize(&self) -> Vec<f32> {
        let mut out = vec![0.0f32; self.k * self.n];
        for j in 0..self.n {
            for kk in 0..self.k {
                out[kk * self.n + j] = self.data[j * self.k + kk] as f32 * self.scales[j];
            }
        }
        out
    }
}

/// Quantizes `m` activation rows of length `k` into caller scratch:
/// `xq[i, :]` gets the int8 codes of row `i`, `xs[i]` its dequant scale
/// (`absmax_i / 127`; 0 for an all-zero row, with all-zero codes).
pub(crate) fn quantize_rows_block(x: &[f32], xq: &mut [i8], xs: &mut [f32], m: usize, k: usize) {
    for i in 0..m {
        let row = &x[i * k..(i + 1) * k];
        let q_row = &mut xq[i * k..(i + 1) * k];
        let mut absmax = 0.0f32;
        for &v in row.iter() {
            absmax = absmax.max(v.abs());
        }
        if absmax == 0.0 {
            xs[i] = 0.0;
            for q in q_row.iter_mut() {
                *q = 0;
            }
            continue;
        }
        let inv = 127.0 / absmax;
        xs[i] = absmax / 127.0;
        for (q, &v) in q_row.iter_mut().zip(row) {
            *q = (v * inv).round().clamp(-127.0, 127.0) as i8;
        }
    }
}

/// Quantized NN worker loop: `out[i, j] = (Σ_kk xq[i, kk] · wq[j, kk]) ·
/// xs[i] · ws[j]` for rows `i0..i1`, with exact i32 accumulation (the
/// integer sum is associative, so any blocking yields identical bits).
#[allow(clippy::too_many_arguments)]
pub(crate) fn qmm_row_block(
    xq: &[i8],
    xs: &[f32],
    wq: &[i8],
    ws: &[f32],
    out_block: &mut [f32],
    i0: usize,
    i1: usize,
    k: usize,
    n: usize,
) {
    for i in i0..i1 {
        let x_row = &xq[i * k..(i + 1) * k];
        let sx = xs[i];
        let out_row = &mut out_block[(i - i0) * n..(i - i0 + 1) * n];
        for (j, o) in out_row.iter_mut().enumerate() {
            let w_row = &wq[j * k..(j + 1) * k];
            let mut acc = 0i32;
            for (&xv, &wv) in x_row.iter().zip(w_row) {
                acc += xv as i32 * wv as i32;
            }
            *o = acc as f32 * sx * ws[j];
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trip_error_bounded_by_half_step() {
        let (k, n) = (13, 7);
        let w: Vec<f32> = (0..k * n)
            .map(|i| (i as f32 * 0.73).sin() * (1.0 + (i % 5) as f32))
            .collect();
        let q = QuantizedMatrix::quantize(&w, k, n);
        let back = q.dequantize();
        for j in 0..n {
            let half_step = q.scales()[j] * 0.5 + 1e-9;
            for kk in 0..k {
                let err = (back[kk * n + j] - w[kk * n + j]).abs();
                assert!(
                    err <= half_step,
                    "col {j} row {kk}: err {err} > {half_step}"
                );
            }
        }
    }

    #[test]
    fn zero_column_is_exact() {
        let (k, n) = (5, 3);
        let mut w = vec![0.0f32; k * n];
        for kk in 0..k {
            w[kk * n] = 1.0 + kk as f32; // only column 0 is nonzero
        }
        let q = QuantizedMatrix::quantize(&w, k, n);
        assert_eq!(q.scales()[1], 0.0);
        assert_eq!(q.scales()[2], 0.0);
        let back = q.dequantize();
        for kk in 0..k {
            assert_eq!(back[kk * n + 1], 0.0);
            assert_eq!(back[kk * n + 2], 0.0);
        }
    }

    #[test]
    fn qmm_matches_dequantized_f32_matmul_exactly() {
        // With both operands quantized, qmm must equal the f32 matmul of
        // the *dequantized* operands up to the two dequant rounds — on
        // small integer accumulators the float product of scales is exact
        // enough to compare bitwise against the explicit formula.
        let (m, k, n) = (4, 9, 6);
        let x: Vec<f32> = (0..m * k)
            .map(|i| ((i * 7 % 23) as f32 - 11.0) * 0.3)
            .collect();
        let w: Vec<f32> = (0..k * n)
            .map(|i| ((i * 5 % 17) as f32 - 8.0) * 0.21)
            .collect();
        let qw = QuantizedMatrix::quantize(&w, k, n);
        let mut xq = vec![0i8; m * k];
        let mut xs = vec![0.0f32; m];
        quantize_rows_block(&x, &mut xq, &mut xs, m, k);
        let mut out = vec![0.0f32; m * n];
        qmm_row_block(&xq, &xs, qw.codes(), qw.scales(), &mut out, 0, m, k, n);
        for i in 0..m {
            for j in 0..n {
                let mut acc = 0i32;
                for kk in 0..k {
                    acc += xq[i * k + kk] as i32 * qw.codes()[j * k + kk] as i32;
                }
                let want = acc as f32 * xs[i] * qw.scales()[j];
                assert_eq!(out[i * n + j].to_bits(), want.to_bits());
            }
        }
    }

    #[test]
    fn quantized_product_approximates_f32_product() {
        let (m, k, n) = (3, 32, 5);
        let x: Vec<f32> = (0..m * k).map(|i| (i as f32 * 0.37).sin()).collect();
        let w: Vec<f32> = (0..k * n).map(|i| (i as f32 * 0.11).cos()).collect();
        let qw = QuantizedMatrix::quantize(&w, k, n);
        let mut xq = vec![0i8; m * k];
        let mut xs = vec![0.0f32; m];
        quantize_rows_block(&x, &mut xq, &mut xs, m, k);
        let mut got = vec![0.0f32; m * n];
        qmm_row_block(&xq, &xs, qw.codes(), qw.scales(), &mut got, 0, m, k, n);
        for i in 0..m {
            for j in 0..n {
                let mut want = 0.0f32;
                for kk in 0..k {
                    want += x[i * k + kk] * w[kk * n + j];
                }
                let err = (got[i * n + j] - want).abs();
                // ~1% relative of the row/col magnitudes for k=32.
                assert!(
                    err < 0.05,
                    "({i},{j}): {got:?} vs {want} (err {err})",
                    got = got[i * n + j]
                );
            }
        }
    }
}
