//! Reductions: full and per-axis sums and means.

use crate::shape::Shape;
use crate::tensor::Tensor;

impl Tensor {
    /// Sum of all elements, as a scalar tensor.
    pub fn sum(&self) -> Tensor {
        let total: f32 = self.data().iter().sum();
        Tensor::from_op(
            "sum",
            vec![total],
            Shape::scalar(),
            vec![self.clone()],
            Box::new(|grad, parents| {
                let x = &parents[0];
                if x.requires_grad() {
                    x.accumulate_grad(&vec![grad[0]; x.num_elements()]);
                }
            }),
        )
    }

    /// Mean of all elements, as a scalar tensor.
    pub fn mean(&self) -> Tensor {
        let n = self.num_elements();
        assert!(n > 0, "mean of empty tensor");
        self.sum().mul_scalar(1.0 / n as f32)
    }

    /// Sums along `axis`. With `keepdim` the axis is retained with size 1
    /// (useful for broadcasting the result back).
    pub fn sum_axis(&self, axis: usize, keepdim: bool) -> Tensor {
        let rank = self.shape().rank();
        assert!(
            axis < rank,
            "sum_axis: axis {axis} out of range for {}",
            self.shape()
        );
        let dims = self.dims().to_vec();
        let outer: usize = dims[..axis].iter().product();
        let mid = dims[axis];
        let inner: usize = dims[axis + 1..].iter().product();
        let data = self.data();
        let mut out = vec![0.0f32; outer * inner];
        for o in 0..outer {
            for m in 0..mid {
                let base = (o * mid + m) * inner;
                let out_base = o * inner;
                for i in 0..inner {
                    out[out_base + i] += data[base + i];
                }
            }
        }
        drop(data);
        let mut out_dims = dims.clone();
        if keepdim {
            out_dims[axis] = 1;
        } else {
            out_dims.remove(axis);
        }
        Tensor::from_op(
            "sum_axis",
            out,
            Shape::new(out_dims),
            vec![self.clone()],
            Box::new(move |grad, parents| {
                let x = &parents[0];
                if !x.requires_grad() {
                    return;
                }
                let mut gx = vec![0.0f32; x.num_elements()];
                for o in 0..outer {
                    for m in 0..mid {
                        let base = (o * mid + m) * inner;
                        let g_base = o * inner;
                        for i in 0..inner {
                            gx[base + i] += grad[g_base + i];
                        }
                    }
                }
                x.accumulate_grad(&gx);
            }),
        )
    }

    /// Means along `axis`.
    pub fn mean_axis(&self, axis: usize, keepdim: bool) -> Tensor {
        let count = self.dims()[axis];
        assert!(count > 0, "mean_axis over empty axis");
        self.sum_axis(axis, keepdim).mul_scalar(1.0 / count as f32)
    }

    /// Population variance along `axis` (the normalisation used by layer
    /// norm).
    pub fn var_axis(&self, axis: usize, keepdim: bool) -> Tensor {
        let mu = self.mean_axis(axis, true);
        let centered = self.sub(&mu);

        centered.square().mean_axis(axis, keepdim)
    }

    /// Maximum over all elements (no gradient; used for diagnostics and
    /// numerically stable kernels).
    pub fn max_value(&self) -> f32 {
        self.data()
            .iter()
            .copied()
            .fold(f32::NEG_INFINITY, f32::max)
    }

    /// Minimum over all elements (no gradient).
    pub fn min_value(&self) -> f32 {
        self.data().iter().copied().fold(f32::INFINITY, f32::min)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sum_and_mean() {
        let t = Tensor::from_vec(vec![1.0, 2.0, 3.0, 4.0], [2, 2]);
        assert_eq!(t.sum().item(), 10.0);
        assert_eq!(t.mean().item(), 2.5);
    }

    #[test]
    fn sum_backward_is_ones() {
        let p = Tensor::param(vec![5.0; 4], [2, 2]);
        p.sum().backward();
        assert_eq!(p.grad().unwrap(), vec![1.0; 4]);
    }

    #[test]
    fn mean_backward_scaled() {
        let p = Tensor::param(vec![5.0; 4], [4]);
        p.mean().backward();
        assert_eq!(p.grad().unwrap(), vec![0.25; 4]);
    }

    #[test]
    fn sum_axis0() {
        let t = Tensor::from_vec(vec![1.0, 2.0, 3.0, 4.0, 5.0, 6.0], [2, 3]);
        let s = t.sum_axis(0, false);
        assert_eq!(s.dims(), &[3]);
        assert_eq!(s.to_vec(), vec![5.0, 7.0, 9.0]);
    }

    #[test]
    fn sum_axis1_keepdim() {
        let t = Tensor::from_vec(vec![1.0, 2.0, 3.0, 4.0, 5.0, 6.0], [2, 3]);
        let s = t.sum_axis(1, true);
        assert_eq!(s.dims(), &[2, 1]);
        assert_eq!(s.to_vec(), vec![6.0, 15.0]);
    }

    #[test]
    fn sum_middle_axis() {
        let t = Tensor::from_vec((0..24).map(|x| x as f32).collect(), [2, 3, 4]);
        let s = t.sum_axis(1, false);
        assert_eq!(s.dims(), &[2, 4]);
        // out[0,0] = t[0,0,0]+t[0,1,0]+t[0,2,0] = 0+4+8
        assert_eq!(s.at(&[0, 0]), 12.0);
        assert_eq!(s.at(&[1, 3]), 15.0 + 19.0 + 23.0);
    }

    #[test]
    fn sum_axis_backward() {
        let p = Tensor::param(vec![1.0; 6], [2, 3]);
        p.sum_axis(1, false).sum().backward();
        assert_eq!(p.grad().unwrap(), vec![1.0; 6]);
    }

    #[test]
    fn mean_axis_values() {
        let t = Tensor::from_vec(vec![2.0, 4.0, 6.0, 8.0], [2, 2]);
        assert_eq!(t.mean_axis(1, false).to_vec(), vec![3.0, 7.0]);
    }

    #[test]
    fn var_axis_values() {
        let t = Tensor::from_vec(vec![1.0, 3.0, 2.0, 2.0], [2, 2]);
        let v = t.var_axis(1, false).to_vec();
        assert!((v[0] - 1.0).abs() < 1e-6);
        assert!((v[1] - 0.0).abs() < 1e-6);
    }

    #[test]
    fn var_axis_grad_flows() {
        let p = Tensor::param(vec![1.0, 3.0], [1, 2]);
        p.var_axis(1, false).sum().backward();
        let g = p.grad().unwrap();
        // d var/dx_i = 2 (x_i - mu) / n = [-1, 1]
        assert!((g[0] + 1.0).abs() < 1e-5);
        assert!((g[1] - 1.0).abs() < 1e-5);
    }

    #[test]
    fn min_max_values() {
        let t = Tensor::from_vec(vec![-5.0, 3.0, 0.0], [3]);
        assert_eq!(t.max_value(), 3.0);
        assert_eq!(t.min_value(), -5.0);
    }
}
