//! Shape manipulation: reshape, permute/transpose, slice, concat, gather.

use crate::shape::Shape;
use crate::tensor::Tensor;

impl Tensor {
    /// Reinterprets the data with a new shape of equal element count.
    pub fn reshape(&self, shape: impl Into<Shape>) -> Tensor {
        let shape = shape.into();
        assert_eq!(
            shape.num_elements(),
            self.num_elements(),
            "reshape {} -> {shape} changes element count",
            self.shape()
        );
        Tensor::from_op(
            "reshape",
            self.to_vec(),
            shape,
            vec![self.clone()],
            Box::new(|grad, parents| {
                let x = &parents[0];
                if x.requires_grad() {
                    x.accumulate_grad(grad);
                }
            }),
        )
    }

    /// Reorders axes by `perm` (a permutation of `0..rank`).
    pub fn permute(&self, perm: &[usize]) -> Tensor {
        let rank = self.shape().rank();
        assert_eq!(perm.len(), rank, "permute: wrong permutation length");
        let mut seen = vec![false; rank];
        for &p in perm {
            assert!(
                p < rank && !seen[p],
                "permute: invalid permutation {perm:?}"
            );
            seen[p] = true;
        }
        let src_dims = self.dims().to_vec();
        let out_dims: Vec<usize> = perm.iter().map(|&p| src_dims[p]).collect();
        let out_shape = Shape::new(out_dims.clone());
        let src_strides = Shape::new(src_dims.clone()).strides();
        let n = self.num_elements();
        let data = self.data();
        let mut out = vec![0.0f32; n];
        // Walk the output in row-major order; map each output index to the
        // source offset via permuted strides.
        let mut idx = vec![0usize; rank];
        let perm_strides: Vec<usize> = perm.iter().map(|&p| src_strides[p]).collect();
        let mut src_off = 0usize;
        for o in out.iter_mut() {
            *o = data[src_off];
            let mut ax = rank;
            loop {
                if ax == 0 {
                    break;
                }
                ax -= 1;
                idx[ax] += 1;
                src_off += perm_strides[ax];
                if idx[ax] < out_dims[ax] {
                    break;
                }
                src_off -= perm_strides[ax] * out_dims[ax];
                idx[ax] = 0;
            }
        }
        drop(data);
        // Backward: permute the gradient with the inverse permutation.
        let mut inv = vec![0usize; rank];
        for (i, &p) in perm.iter().enumerate() {
            inv[p] = i;
        }
        let out_shape_bw = out_shape.clone();
        Tensor::from_op(
            "permute",
            out,
            out_shape,
            vec![self.clone()],
            Box::new(move |grad, parents| {
                let x = &parents[0];
                if !x.requires_grad() {
                    return;
                }
                let g = Tensor::from_vec(grad.to_vec(), out_shape_bw.clone());
                let gx = g.permute(&inv);
                x.accumulate_grad(&gx.data());
            }),
        )
    }

    /// Swaps the last two axes (rank ≥ 2).
    pub fn transpose_last(&self) -> Tensor {
        let rank = self.shape().rank();
        assert!(rank >= 2, "transpose_last needs rank >= 2");
        let mut perm: Vec<usize> = (0..rank).collect();
        perm.swap(rank - 1, rank - 2);
        self.permute(&perm)
    }

    /// Contiguous slice `start..start+len` along `axis`.
    pub fn slice(&self, axis: usize, start: usize, len: usize) -> Tensor {
        let rank = self.shape().rank();
        assert!(axis < rank, "slice: axis out of range");
        let dims = self.dims().to_vec();
        assert!(
            start + len <= dims[axis],
            "slice: {start}+{len} exceeds axis size {}",
            dims[axis]
        );
        let outer: usize = dims[..axis].iter().product();
        let mid = dims[axis];
        let inner: usize = dims[axis + 1..].iter().product();
        let data = self.data();
        let mut out = Vec::with_capacity(outer * len * inner);
        for o in 0..outer {
            let base = (o * mid + start) * inner;
            out.extend_from_slice(&data[base..base + len * inner]);
        }
        drop(data);
        let mut out_dims = dims.clone();
        out_dims[axis] = len;
        Tensor::from_op(
            "slice",
            out,
            Shape::new(out_dims),
            vec![self.clone()],
            Box::new(move |grad, parents| {
                let x = &parents[0];
                if !x.requires_grad() {
                    return;
                }
                let mut gx = vec![0.0f32; x.num_elements()];
                for o in 0..outer {
                    let dst = (o * mid + start) * inner;
                    let src = o * len * inner;
                    gx[dst..dst + len * inner].copy_from_slice(&grad[src..src + len * inner]);
                }
                x.accumulate_grad(&gx);
            }),
        )
    }

    /// Concatenates tensors along `axis`. All other axes must match.
    pub fn concat(tensors: &[Tensor], axis: usize) -> Tensor {
        assert!(!tensors.is_empty(), "concat of zero tensors");
        let rank = tensors[0].shape().rank();
        assert!(axis < rank, "concat: axis out of range");
        let base_dims = tensors[0].dims().to_vec();
        let mut axis_sizes = Vec::with_capacity(tensors.len());
        for t in tensors {
            assert_eq!(t.shape().rank(), rank, "concat: rank mismatch");
            for (i, (&a, &b)) in t.dims().iter().zip(&base_dims).enumerate() {
                assert!(
                    i == axis || a == b,
                    "concat: shapes differ off-axis: {} vs {}",
                    t.shape(),
                    tensors[0].shape()
                );
            }
            axis_sizes.push(t.dims()[axis]);
        }
        let total_axis: usize = axis_sizes.iter().sum();
        let outer: usize = base_dims[..axis].iter().product();
        let inner: usize = base_dims[axis + 1..].iter().product();
        let mut out_dims = base_dims.clone();
        out_dims[axis] = total_axis;
        let mut out = Vec::with_capacity(outer * total_axis * inner);
        for o in 0..outer {
            for (t, &sz) in tensors.iter().zip(&axis_sizes) {
                let data = t.data();
                let base = o * sz * inner;
                out.extend_from_slice(&data[base..base + sz * inner]);
            }
        }
        let sizes_bw = axis_sizes.clone();
        Tensor::from_op(
            "concat",
            out,
            Shape::new(out_dims),
            tensors.to_vec(),
            Box::new(move |grad, parents| {
                let mut grads: Vec<Vec<f32>> = parents
                    .iter()
                    .map(|p| vec![0.0f32; p.num_elements()])
                    .collect();
                let mut pos = 0usize;
                for o in 0..outer {
                    for (pi, &sz) in sizes_bw.iter().enumerate() {
                        let chunk = sz * inner;
                        let dst = o * chunk;
                        grads[pi][dst..dst + chunk].copy_from_slice(&grad[pos..pos + chunk]);
                        pos += chunk;
                    }
                }
                for (p, g) in parents.iter().zip(&grads) {
                    if p.requires_grad() {
                        p.accumulate_grad(g);
                    }
                }
            }),
        )
    }

    /// Selects rows of a rank-2 tensor: `self[V, D]` gathered by `indices`
    /// gives `[S, D]` — the embedding lookup.
    pub fn index_select_rows(&self, indices: &[usize]) -> Tensor {
        assert_eq!(self.shape().rank(), 2, "index_select_rows needs rank 2");
        let (v, d) = (self.dims()[0], self.dims()[1]);
        for &i in indices {
            assert!(i < v, "index {i} out of range for {} rows", v);
        }
        let data = self.data();
        let mut out = Vec::with_capacity(indices.len() * d);
        for &i in indices {
            out.extend_from_slice(&data[i * d..(i + 1) * d]);
        }
        drop(data);
        let idx = indices.to_vec();
        Tensor::from_op(
            "index_select_rows",
            out,
            Shape::new([indices.len(), d]),
            vec![self.clone()],
            Box::new(move |grad, parents| {
                let w = &parents[0];
                if !w.requires_grad() {
                    return;
                }
                let mut gw = vec![0.0f32; w.num_elements()];
                for (s, &i) in idx.iter().enumerate() {
                    for j in 0..d {
                        gw[i * d + j] += grad[s * d + j];
                    }
                }
                w.accumulate_grad(&gw);
            }),
        )
    }

    /// Gathers one element per row along the last axis: for `self` viewed as
    /// `[R, C]`, returns `[R]` with `out[r] = self[r, indices[r]]` — used by
    /// cross-entropy.
    pub fn gather_last(&self, indices: &[usize]) -> Tensor {
        let rank = self.shape().rank();
        assert!(rank >= 1);
        let c = self.dims()[rank - 1];
        let r = self.num_elements() / c;
        assert_eq!(indices.len(), r, "gather_last: need one index per row");
        let data = self.data();
        let mut out = Vec::with_capacity(r);
        for (row, &i) in indices.iter().enumerate() {
            assert!(i < c, "gather_last: index {i} out of range {c}");
            out.push(data[row * c + i]);
        }
        drop(data);
        let idx = indices.to_vec();
        Tensor::from_op(
            "gather_last",
            out,
            Shape::new([r]),
            vec![self.clone()],
            Box::new(move |grad, parents| {
                let x = &parents[0];
                if !x.requires_grad() {
                    return;
                }
                let mut gx = vec![0.0f32; x.num_elements()];
                for (row, &i) in idx.iter().enumerate() {
                    gx[row * c + i] += grad[row];
                }
                x.accumulate_grad(&gx);
            }),
        )
    }

    /// Materialises a broadcast of this tensor to `target`.
    pub fn broadcast_to(&self, target: impl Into<Shape>) -> Tensor {
        let target = target.into();
        assert!(
            self.shape().broadcasts_to(&target),
            "{} does not broadcast to {target}",
            self.shape()
        );
        // add with zeros of the target shape routes gradients correctly.
        self.add(&Tensor::zeros(target))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn reshape_round_trip() {
        let t = Tensor::from_vec((0..6).map(|x| x as f32).collect(), [2, 3]);
        let r = t.reshape([3, 2]);
        assert_eq!(r.dims(), &[3, 2]);
        assert_eq!(r.to_vec(), t.to_vec());
    }

    #[test]
    fn reshape_backward_identity() {
        let p = Tensor::param(vec![1.0; 6], [2, 3]);
        p.reshape([6]).sum().backward();
        assert_eq!(p.grad().unwrap(), vec![1.0; 6]);
    }

    #[test]
    fn permute_2d_transpose() {
        let t = Tensor::from_vec(vec![1.0, 2.0, 3.0, 4.0, 5.0, 6.0], [2, 3]);
        let tt = t.permute(&[1, 0]);
        assert_eq!(tt.dims(), &[3, 2]);
        assert_eq!(tt.to_vec(), vec![1.0, 4.0, 2.0, 5.0, 3.0, 6.0]);
    }

    #[test]
    fn permute_3d() {
        let t = Tensor::from_vec((0..24).map(|x| x as f32).collect(), [2, 3, 4]);
        let p = t.permute(&[2, 0, 1]);
        assert_eq!(p.dims(), &[4, 2, 3]);
        assert_eq!(p.at(&[1, 0, 2]), t.at(&[0, 2, 1]));
        assert_eq!(p.at(&[3, 1, 0]), t.at(&[1, 0, 3]));
    }

    #[test]
    fn permute_backward_inverse() {
        let p = Tensor::param((0..6).map(|x| x as f32).collect(), [2, 3]);
        // weight the output so gradient is distinguishable
        let w = Tensor::from_vec((0..6).map(|x| x as f32).collect(), [3, 2]);
        p.permute(&[1, 0]).mul(&w).sum().backward();
        // grad of p[i][j] = w[j][i]
        let g = p.grad().unwrap();
        for i in 0..2 {
            for j in 0..3 {
                assert_eq!(g[i * 3 + j], w.at(&[j, i]));
            }
        }
    }

    #[test]
    fn transpose_last_involution() {
        let t = Tensor::from_vec((0..24).map(|x| x as f32).collect(), [2, 3, 4]);
        let round = t.transpose_last().transpose_last();
        assert_eq!(round.to_vec(), t.to_vec());
    }

    #[test]
    fn slice_middle() {
        let t = Tensor::from_vec((0..24).map(|x| x as f32).collect(), [2, 3, 4]);
        let s = t.slice(1, 1, 2);
        assert_eq!(s.dims(), &[2, 2, 4]);
        assert_eq!(s.at(&[0, 0, 0]), t.at(&[0, 1, 0]));
        assert_eq!(s.at(&[1, 1, 3]), t.at(&[1, 2, 3]));
    }

    #[test]
    fn slice_backward_scatters() {
        let p = Tensor::param((0..6).map(|x| x as f32).collect(), [2, 3]);
        p.slice(1, 1, 1).sum().backward();
        assert_eq!(p.grad().unwrap(), vec![0.0, 1.0, 0.0, 0.0, 1.0, 0.0]);
    }

    #[test]
    fn concat_axis0_and_1() {
        let a = Tensor::from_vec(vec![1.0, 2.0], [1, 2]);
        let b = Tensor::from_vec(vec![3.0, 4.0], [1, 2]);
        assert_eq!(
            Tensor::concat(&[a.clone(), b.clone()], 0).to_vec(),
            vec![1.0, 2.0, 3.0, 4.0]
        );
        assert_eq!(
            Tensor::concat(&[a, b], 1).to_vec(),
            vec![1.0, 2.0, 3.0, 4.0]
        );
    }

    #[test]
    fn concat_slice_inverse() {
        let a = Tensor::from_vec((0..8).map(|x| x as f32).collect(), [2, 4]);
        let left = a.slice(1, 0, 2);
        let right = a.slice(1, 2, 2);
        let back = Tensor::concat(&[left, right], 1);
        assert_eq!(back.to_vec(), a.to_vec());
    }

    #[test]
    fn concat_backward_splits() {
        let a = Tensor::param(vec![1.0; 2], [1, 2]);
        let b = Tensor::param(vec![1.0; 2], [1, 2]);
        let w = Tensor::from_vec(vec![1.0, 2.0, 3.0, 4.0], [1, 4]);
        Tensor::concat(&[a.clone(), b.clone()], 1)
            .mul(&w)
            .sum()
            .backward();
        assert_eq!(a.grad().unwrap(), vec![1.0, 2.0]);
        assert_eq!(b.grad().unwrap(), vec![3.0, 4.0]);
    }

    #[test]
    fn index_select_rows_gathers() {
        let w = Tensor::from_vec((0..6).map(|x| x as f32).collect(), [3, 2]);
        let e = w.index_select_rows(&[2, 0, 2]);
        assert_eq!(e.dims(), &[3, 2]);
        assert_eq!(e.to_vec(), vec![4.0, 5.0, 0.0, 1.0, 4.0, 5.0]);
    }

    #[test]
    fn index_select_rows_grad_accumulates_dupes() {
        let w = Tensor::param(vec![0.0; 6], [3, 2]);
        w.index_select_rows(&[2, 0, 2]).sum().backward();
        assert_eq!(w.grad().unwrap(), vec![1.0, 1.0, 0.0, 0.0, 2.0, 2.0]);
    }

    #[test]
    fn gather_last_and_grad() {
        let x = Tensor::param(vec![1.0, 2.0, 3.0, 4.0, 5.0, 6.0], [2, 3]);
        let g = x.gather_last(&[2, 0]);
        assert_eq!(g.to_vec(), vec![3.0, 4.0]);
        g.sum().backward();
        assert_eq!(x.grad().unwrap(), vec![0.0, 0.0, 1.0, 1.0, 0.0, 0.0]);
    }

    #[test]
    fn broadcast_to_materialises() {
        let t = Tensor::from_vec(vec![1.0, 2.0], [1, 2]);
        let b = t.broadcast_to([3, 2]);
        assert_eq!(b.to_vec(), vec![1.0, 2.0, 1.0, 2.0, 1.0, 2.0]);
    }
}
