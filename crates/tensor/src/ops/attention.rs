//! Fused scaled-dot-product attention: `softmax(QK^T/√dh + mask) V` as a
//! single graph node with a hand-derived analytic backward.
//!
//! The composed formulation (matmul → scale → add → softmax → matmul →
//! merge) materializes the `[H, T_q, T_k]` probability tensor twice (once
//! as op output, once as the softmax backward's saved copy) and records
//! ~10 graph nodes per attention call. The fused op keeps only two
//! per-row softmax statistics — the running max `m` and the normalizer
//! `l`, `[T_q, H]` floats each — and recomputes probabilities pointwise in
//! the backward pass, so graph memory per call drops from
//! `O(H·T_q·T_k)` to `O(T_q·(H + T_k + D))`.
//!
//! Two nodes are emitted per call:
//!
//! - `fused_attention`: the head-merged context `[T_q, H·dh]` (the
//!   `merge_heads` permute + reshape are folded into the output layout),
//!   with gradient parents `[Q, K, V]`;
//! - `fused_attention_map`: the head-averaged attention map `[T_q, T_k]`,
//!   with gradient parents `[Q, K]` — differentiable because correlation
//!   distillation (paper Eq. 24) trains *through* the student's map.
//!
//! The two backward closures are fully independent: the softmax Jacobian
//! is linear in the upstream probability gradient, so each closure derives
//! its own `dP`, row statistic `D_i = Σ_j dP_ij P_ij`, and
//! `dS_ij = P_ij (dP_ij − D_i)`, and the engine's `accumulate_grad` sums
//! the two contributions on `Q` and `K` in (deterministic) topological
//! order.
//!
//! ## Parallelism and determinism
//!
//! Work is partitioned into disjoint output blocks via [`crate::parallel`]
//! under the same contract as the matmul kernels: every output element is
//! written by exactly one task running the same serial code as the
//! `TIMEKD_THREADS=1` path, so results are bitwise identical under any
//! thread count. Each task packs the head panels it reads into `[dh,
//! T_k]` scratch so the hot loops are contiguous length-`T_k` `axpy`/dot
//! sweeps (vectorizable), instead of `T_k` short length-`dh` dots. The
//! forward partitions over query-row ranges only (the head loop stays
//! inside each task because the averaged map row accumulates across
//! heads). The backward runs two passes with `parallel_for`'s completion
//! barrier between them: pass A over (head, query-row-range) tasks
//! recomputes `P` from the saved statistics (same packed accumulation
//! order as the forward, so bit-identical scores), computes `dQ`, and
//! stores `P` and `dS` into transient scratch — freed when the closure
//! returns, never retained across forward/backward like the composed
//! chain's saved softmax output; pass B over (head, key-row-range) tasks
//! is then pure accumulation of `dK`/`dV`, with a fixed-order query loop
//! inside and every output element an independent sum, so the key split
//! cannot change results.
//!
//! The length-`T_k` dot/axpy sweeps run in one of two pinned reduction
//! orders selected by `TIMEKD_SIMD` (see [`crate::simd`]): the 8-lane
//! fused-multiply-add blocking of [`simd::dot_lanes`]/[`simd::axpy_lanes`]
//! by default, or the original 4-wide [`dot4`]/[`axpy`] kernels when off.
//! The mode is resolved once per dispatch, before fan-out, so every task
//! of a call reduces identically and thread-count invariance holds in
//! both modes.
//!
//! Naming contract with `timekd-check`: functions ending in `_block` are
//! per-block worker loops — no locks, no allocation, no I/O inside them.
//! Per-task scratch is preallocated by the dispatching code and carved
//! into disjoint slices, like the output buffers.

use std::rc::Rc;

use crate::parallel;
use crate::shape::Shape;
use crate::simd;
use crate::tensor::Tensor;

/// Minimum score-count (`H · T_q · T_k · dh`) before a fused attention
/// call fans out to the worker pool; mirrors the matmul cutoff so tiny
/// (test-scale) calls never pay pool dispatch.
const PARALLEL_ATTN_CUTOFF: usize = 64 * 64 * 64;

/// True when a `[H, T_q, dh] x [H, T_k, dh]` attention is worth pool
/// dispatch.
#[inline]
fn worth_parallel(heads: usize, tq: usize, tk: usize, dh: usize) -> bool {
    heads
        .saturating_mul(tq)
        .saturating_mul(tk)
        .saturating_mul(dh)
        >= PARALLEL_ATTN_CUTOFF
}

/// Fixed-order dot product: four independent lane accumulators combined
/// as `(s0 + s1) + (s2 + s3)` plus a serial tail, exactly like the NT
/// matmul kernel. Used for the length-`T_k` reductions (context rows,
/// `dQ` rows, the `D` statistic); the combine order is fixed, so results
/// do not depend on which thread runs the task.
#[inline]
fn dot4(a: &[f32], b: &[f32]) -> f32 {
    let (mut s0, mut s1, mut s2, mut s3) = (0.0f32, 0.0f32, 0.0f32, 0.0f32);
    for (ca, cb) in a.chunks_exact(4).zip(b.chunks_exact(4)) {
        s0 += ca[0] * cb[0];
        s1 += ca[1] * cb[1];
        s2 += ca[2] * cb[2];
        s3 += ca[3] * cb[3];
    }
    let mut sum = (s0 + s1) + (s2 + s3);
    let tail = a.len() - a.len() % 4;
    for (&x, &y) in a[tail..].iter().zip(&b[tail..]) {
        sum += x * y;
    }
    sum
}

/// Contiguous accumulate `dst[j] += a · x[j]`: the vector-friendly inner
/// step of every packed-panel loop. Plain indexed form so the compiler
/// can unroll and vectorize; summation stays element-independent, so
/// results do not depend on how rows are partitioned across tasks.
#[inline]
fn axpy(dst: &mut [f32], a: f32, x: &[f32]) {
    for (o, &xx) in dst.iter_mut().zip(x) {
        *o += a * xx;
    }
}

/// Mode-pinned dot product: [`simd::dot_lanes`] (8-lane fma blocking) in
/// SIMD mode, [`dot4`] under `TIMEKD_SIMD=off`. The `simd` flag is
/// resolved by the dispatcher before any fan-out, so every task of one
/// attention call reduces in the same pinned order.
#[inline(always)]
fn dot_pinned(a: &[f32], b: &[f32], simd: bool) -> f32 {
    if simd {
        simd::dot_lanes(a, b)
    } else {
        dot4(a, b)
    }
}

/// Mode-pinned axpy: one fused multiply-add per element in SIMD mode
/// ([`simd::axpy_lanes`]), separate multiply and add under
/// `TIMEKD_SIMD=off` ([`axpy`]). Element-independent either way; the two
/// roundings are each internally deterministic.
#[inline(always)]
fn axpy_pinned(dst: &mut [f32], a: f32, x: &[f32], simd: bool) {
    if simd {
        simd::axpy_lanes(dst, a, x);
    } else {
        axpy(dst, a, x);
    }
}

/// Copies an `[rows, dh]` head panel into `[dh, rows]` layout so inner
/// loops traverse keys contiguously (one `axpy`/`dot4` of length `rows`
/// per feature instead of `rows` short length-`dh` dots).
fn pack_transpose(src: &[f32], dst: &mut [f32], rows: usize, dh: usize) {
    for (j, row) in src.chunks_exact(dh).enumerate() {
        for (d, &x) in row.iter().enumerate() {
            dst[d * rows + j] = x;
        }
    }
}

/// Per-row softmax statistics saved by the forward pass and shared (via
/// `Rc`) by both backward closures: `m[i·H + h]` is the row max of the
/// scaled masked scores, `l[i·H + h]` the sum of `exp(s − m)` over keys.
struct SoftmaxStats {
    m: Vec<f32>,
    l: Vec<f32>,
}

/// Runs `task(0..total)` on the pool when the shape is `worth` it, else as
/// a plain serial loop (so sub-cutoff calls never touch the pool even
/// when multiple tasks exist). Either way every task runs exactly once.
fn run_tasks(total: usize, worth: bool, task: impl Fn(usize) + Sync) {
    if worth {
        parallel::parallel_for(total, task);
    } else {
        // Below-cutoff calls are a serial fallback too: count them so the
        // pool counters reflect every dispatch decision, even on hosts
        // where nothing ever crosses the parallel threshold.
        timekd_obs::POOL_SERIAL_FALLBACK.add(1);
        for t in 0..total {
            task(t);
        }
    }
}

/// Row-range count for partitioning `rows` across the pool; 1 when the
/// call is below the parallel cutoff. `per_head` tasks multiply with the
/// head count, so each head needs only `threads / heads` ranges.
fn plan_blocks(rows: usize, heads_outside: usize, worth: bool) -> usize {
    if !worth {
        return 1;
    }
    let threads = parallel::effective_threads();
    threads.div_ceil(heads_outside.max(1)).clamp(1, rows.max(1))
}

/// Serial forward worker: computes output rows `i0..i1` across all heads.
///
/// The head loop is outermost so each head's `K`/`V` panels are packed
/// once (into `kt`/`vt`, `[dh, T_k]` layout) and reused by every row in
/// the block; the score, softmax and context loops then run contiguously
/// over keys. For each (head, row): scaled masked scores into `scores`
/// scratch, a max-shifted softmax (statistics recorded into
/// `m_block`/`l_block`), the head's slice of the merged context row, and
/// the row's share of the head-averaged map. One task owns a row
/// entirely and heads are visited in ascending order, so the map's
/// cross-head accumulation order is fixed.
#[allow(clippy::too_many_arguments)]
pub(crate) fn attn_fwd_row_block(
    q: &[f32],
    k: &[f32],
    v: &[f32],
    mask: Option<&[f32]>,
    out_block: &mut [f32],
    map_block: &mut [f32],
    m_block: &mut [f32],
    l_block: &mut [f32],
    kt: &mut [f32],
    vt: &mut [f32],
    scores: &mut [f32],
    i0: usize,
    i1: usize,
    heads: usize,
    tq: usize,
    tk: usize,
    dh: usize,
    scale: f32,
    simd: bool,
) {
    let d = heads * dh;
    let inv_heads = 1.0 / heads as f32;
    for h in 0..heads {
        pack_transpose(&k[h * tk * dh..(h + 1) * tk * dh], kt, tk, dh);
        pack_transpose(&v[h * tk * dh..(h + 1) * tk * dh], vt, tk, dh);
        for i in i0..i1 {
            let r = i - i0;
            let q_row = &q[(h * tq + i) * dh..(h * tq + i + 1) * dh];
            match mask {
                Some(mk) => scores.copy_from_slice(&mk[i * tk..(i + 1) * tk]),
                None => scores.fill(0.0),
            }
            for (kcol, &qd) in kt.chunks_exact(tk).zip(q_row) {
                axpy_pinned(scores, scale * qd, kcol, simd);
            }
            let mut mx = f32::NEG_INFINITY;
            for &s in scores.iter() {
                if s > mx {
                    mx = s;
                }
            }
            let mut denom = 0.0f32;
            for slot in scores.iter_mut() {
                let e = (*slot - mx).exp();
                *slot = e;
                denom += e;
            }
            m_block[r * heads + h] = mx;
            l_block[r * heads + h] = denom;
            let inv = 1.0 / denom;
            axpy_pinned(
                &mut map_block[r * tk..(r + 1) * tk],
                inv * inv_heads,
                scores,
                simd,
            );
            let out_head = &mut out_block[r * d + h * dh..r * d + (h + 1) * dh];
            for (o, vcol) in out_head.iter_mut().zip(vt.chunks_exact(tk)) {
                *o = inv * dot_pinned(scores, vcol, simd);
            }
        }
    }
}

/// Serial backward worker, pass A: `dQ` rows `i0..i1` of head `h`.
///
/// `g_out` is the upstream gradient on the merged `[T_q, H·dh]` output
/// when `Some`, in which case `dP_ij = g_out[i, h·dh..] · V[h, j, :]`;
/// otherwise `g_map` drives the map path with `dP_ij = g_map[i, j] / H`.
/// The head's `K` (and, on the output path, `V`) panel is packed once
/// into `kt`/`vt` so every inner loop runs contiguously over keys.
/// Probabilities are recomputed from the saved statistics with the same
/// packed-score accumulation as the forward, then stored into `p_block`,
/// and the scaled score gradients `dS_ij = P_ij (dP_ij − D_i) · scale`
/// into `ds_block`, so pass B is pure accumulation.
#[allow(clippy::too_many_arguments)]
pub(crate) fn attn_bwd_dq_block(
    q: &[f32],
    k: &[f32],
    v: &[f32],
    mask: Option<&[f32]>,
    g_out: Option<&[f32]>,
    g_map: Option<&[f32]>,
    stats_m: &[f32],
    stats_l: &[f32],
    dq_block: &mut [f32],
    p_block: &mut [f32],
    ds_block: &mut [f32],
    kt: &mut [f32],
    vt: &mut [f32],
    h: usize,
    i0: usize,
    i1: usize,
    heads: usize,
    tq: usize,
    tk: usize,
    dh: usize,
    scale: f32,
    simd: bool,
) {
    let d = heads * dh;
    let inv_heads = 1.0 / heads as f32;
    pack_transpose(&k[h * tk * dh..(h + 1) * tk * dh], kt, tk, dh);
    if g_out.is_some() {
        pack_transpose(&v[h * tk * dh..(h + 1) * tk * dh], vt, tk, dh);
    }
    for i in i0..i1 {
        let r = i - i0;
        let q_row = &q[(h * tq + i) * dh..(h * tq + i + 1) * dh];
        let inv = 1.0 / stats_l[i * heads + h];
        let mx = stats_m[i * heads + h];
        let p_row = &mut p_block[r * tk..(r + 1) * tk];
        let ds_row = &mut ds_block[r * tk..(r + 1) * tk];
        // Scores rebuilt with the forward's exact packed accumulation
        // order, then normalized against the saved statistics.
        match mask {
            Some(mk) => p_row.copy_from_slice(&mk[i * tk..(i + 1) * tk]),
            None => p_row.fill(0.0),
        }
        for (kcol, &qd) in kt.chunks_exact(tk).zip(q_row) {
            axpy_pinned(p_row, scale * qd, kcol, simd);
        }
        for p in p_row.iter_mut() {
            *p = (*p - mx).exp() * inv;
        }
        // dP into the dS slots (converted in place after D is known).
        match (g_out, g_map) {
            (Some(g), _) => {
                let g_head = &g[i * d + h * dh..i * d + (h + 1) * dh];
                ds_row.fill(0.0);
                for (vcol, &gd) in vt.chunks_exact(tk).zip(g_head) {
                    axpy_pinned(ds_row, gd, vcol, simd);
                }
            }
            (None, Some(g)) => {
                for (dp, &gm) in ds_row.iter_mut().zip(&g[i * tk..(i + 1) * tk]) {
                    *dp = gm * inv_heads;
                }
            }
            (None, None) => ds_row.fill(0.0),
        }
        let dsum = dot_pinned(p_row, ds_row, simd);
        for (ds, &p) in ds_row.iter_mut().zip(p_row.iter()) {
            *ds = p * (*ds - dsum) * scale;
        }
        let dq_row = &mut dq_block[r * dh..(r + 1) * dh];
        for (o, kcol) in dq_row.iter_mut().zip(kt.chunks_exact(tk)) {
            *o += dot_pinned(ds_row, kcol, simd);
        }
    }
}

/// Serial backward worker, pass B: `dK` (and, on the output path, `dV`)
/// rows `j0..j1` of head `h`, reading the `P`/`dS` buffers pass A filled.
/// Accumulates into `[dh, rows]` panels (`dkt`/`dvt`) so the inner loops
/// are contiguous `axpy`s over keys, then unpacks into the `[rows, dh]`
/// gradient layout. The query loop is outermost and runs in fixed
/// `0..tq` order, and each `dK[h, j, d]` element is an independent sum
/// over queries, so results do not depend on the key split. `dS` already
/// carries the `scale` factor, so `dK_j = Σ_i dS_ij Q_i` and
/// `dV_j = Σ_i P_ij g_i` are plain accumulations.
#[allow(clippy::too_many_arguments)]
pub(crate) fn attn_bwd_dkv_block(
    q: &[f32],
    g_out: Option<&[f32]>,
    p_buf: &[f32],
    ds_buf: &[f32],
    dk_block: &mut [f32],
    dv_block: &mut [f32],
    dkt: &mut [f32],
    dvt: &mut [f32],
    h: usize,
    j0: usize,
    j1: usize,
    heads: usize,
    tq: usize,
    tk: usize,
    dh: usize,
    simd: bool,
) {
    let d = heads * dh;
    let rows = j1 - j0;
    let dkt = &mut dkt[..dh * rows];
    let dvt = &mut dvt[..if g_out.is_some() { dh * rows } else { 0 }];
    dkt.fill(0.0);
    dvt.fill(0.0);
    for i in 0..tq {
        let q_row = &q[(h * tq + i) * dh..(h * tq + i + 1) * dh];
        let base = (h * tq + i) * tk;
        let ds_row = &ds_buf[base + j0..base + j1];
        for (kcol, &qd) in dkt.chunks_exact_mut(rows).zip(q_row) {
            axpy_pinned(kcol, qd, ds_row, simd);
        }
        if let Some(g) = g_out {
            let g_head = &g[i * d + h * dh..i * d + (h + 1) * dh];
            let p_row = &p_buf[base + j0..base + j1];
            for (vcol, &gd) in dvt.chunks_exact_mut(rows).zip(g_head) {
                axpy_pinned(vcol, gd, p_row, simd);
            }
        }
    }
    for (jb, dk_row) in dk_block.chunks_exact_mut(dh).enumerate() {
        for (o, kcol) in dk_row.iter_mut().zip(dkt.chunks_exact(rows)) {
            *o += kcol[jb];
        }
    }
    if g_out.is_some() {
        for (jb, dv_row) in dv_block.chunks_exact_mut(dh).enumerate() {
            for (o, vcol) in dv_row.iter_mut().zip(dvt.chunks_exact(rows)) {
                *o += vcol[jb];
            }
        }
    }
}

/// Dispatches the forward: query rows are split into disjoint ranges and
/// each task computes its rows across all heads, writing exclusive slices
/// of the output, map and statistics buffers plus its own preallocated
/// score scratch.
#[allow(clippy::too_many_arguments)]
fn fused_attention_forward(
    q: &[f32],
    k: &[f32],
    v: &[f32],
    mask: Option<&[f32]>,
    out: &mut [f32],
    map: &mut [f32],
    stats: &mut SoftmaxStats,
    heads: usize,
    tq: usize,
    tk: usize,
    dh: usize,
    scale: f32,
) {
    let worth = worth_parallel(heads, tq, tk, dh);
    let simd = simd::simd_enabled();
    let ranges = parallel::block_ranges(tq, plan_blocks(tq, 1, worth));
    let d = heads * dh;
    // Per task: packed K and V panels ([dh, T_k] each) plus a score row.
    let per_task = 2 * tk * dh + tk;
    let mut scratch = vec![0.0f32; ranges.len() * per_task];
    let out_base = out.as_mut_ptr() as usize;
    let map_base = map.as_mut_ptr() as usize;
    let m_base = stats.m.as_mut_ptr() as usize;
    let l_base = stats.l.as_mut_ptr() as usize;
    let scratch_base = scratch.as_mut_ptr() as usize;
    run_tasks(ranges.len(), worth, |t| {
        let (i0, i1) = ranges[t];
        let rows = i1 - i0;
        // SAFETY: row ranges are disjoint, so each task receives exclusive
        // sub-slices of out/map/m/l; the scratch slice is task `t`'s own
        // segment. All base pointers outlive the call because both
        // `parallel_for` and the serial loop complete before returning.
        let (out_block, map_block, m_block, l_block, scr) = unsafe {
            (
                std::slice::from_raw_parts_mut((out_base as *mut f32).add(i0 * d), rows * d),
                std::slice::from_raw_parts_mut((map_base as *mut f32).add(i0 * tk), rows * tk),
                std::slice::from_raw_parts_mut((m_base as *mut f32).add(i0 * heads), rows * heads),
                std::slice::from_raw_parts_mut((l_base as *mut f32).add(i0 * heads), rows * heads),
                std::slice::from_raw_parts_mut(
                    (scratch_base as *mut f32).add(t * per_task),
                    per_task,
                ),
            )
        };
        let (kt, rest) = scr.split_at_mut(tk * dh);
        let (vt, scores) = rest.split_at_mut(tk * dh);
        attn_fwd_row_block(
            q, k, v, mask, out_block, map_block, m_block, l_block, kt, vt, scores, i0, i1, heads,
            tq, tk, dh, scale, simd,
        );
    });
}

/// Dispatches the shared backward: pass A over (head, query-range) tasks
/// fills `dq` plus transient `P`/`dS` buffers; pass B over (head,
/// key-range) tasks is pure accumulation of `dk`/`dv` from those buffers.
/// `parallel_for` returning is the barrier between the passes, and the
/// buffers are freed when this function returns — they never outlive the
/// backward call. `g_out` drives the output path, `g_map` the map path
/// (exactly one is `Some`); on the map path `dv` is untouched and may be
/// empty.
#[allow(clippy::too_many_arguments)]
fn fused_attention_backward(
    q: &[f32],
    k: &[f32],
    v: &[f32],
    mask: Option<&[f32]>,
    g_out: Option<&[f32]>,
    g_map: Option<&[f32]>,
    stats: &SoftmaxStats,
    dq: &mut [f32],
    dk: &mut [f32],
    dv: &mut [f32],
    heads: usize,
    tq: usize,
    tk: usize,
    dh: usize,
    scale: f32,
) {
    let worth = worth_parallel(heads, tq, tk, dh);
    let simd = simd::simd_enabled();

    // Pass A: dQ plus the P/dS scratch, partitioned by (head,
    // query-row-range).
    let ranges_i = parallel::block_ranges(tq, plan_blocks(tq, heads, worth));
    let tasks_a = heads * ranges_i.len();
    let mut p_buf = vec![0.0f32; heads * tq * tk];
    let mut ds_buf = vec![0.0f32; heads * tq * tk];
    // Per task: packed K and V panels ([dh, T_k] each).
    let per_task_a = 2 * tk * dh;
    let mut scratch_a = vec![0.0f32; tasks_a * per_task_a];
    let dq_base = dq.as_mut_ptr() as usize;
    let p_base = p_buf.as_mut_ptr() as usize;
    let ds_base = ds_buf.as_mut_ptr() as usize;
    let scratch_a_base = scratch_a.as_mut_ptr() as usize;
    run_tasks(tasks_a, worth, |t| {
        let h = t / ranges_i.len();
        let (i0, i1) = ranges_i[t % ranges_i.len()];
        let rows = i1 - i0;
        // SAFETY: (head, row-range) pairs are disjoint, so each task gets
        // exclusive slices of dq ([H, T_q, dh] layout) and of the P/dS
        // buffers ([H, T_q, T_k] layout); the scratch segment is
        // task-private. Base pointers outlive the call (the dispatcher
        // blocks until all tasks finish).
        let (dq_block, p_block, ds_block, scr) = unsafe {
            (
                std::slice::from_raw_parts_mut(
                    (dq_base as *mut f32).add((h * tq + i0) * dh),
                    rows * dh,
                ),
                std::slice::from_raw_parts_mut(
                    (p_base as *mut f32).add((h * tq + i0) * tk),
                    rows * tk,
                ),
                std::slice::from_raw_parts_mut(
                    (ds_base as *mut f32).add((h * tq + i0) * tk),
                    rows * tk,
                ),
                std::slice::from_raw_parts_mut(
                    (scratch_a_base as *mut f32).add(t * per_task_a),
                    per_task_a,
                ),
            )
        };
        let (kt, vt) = scr.split_at_mut(tk * dh);
        attn_bwd_dq_block(
            q, k, v, mask, g_out, g_map, &stats.m, &stats.l, dq_block, p_block, ds_block, kt, vt,
            h, i0, i1, heads, tq, tk, dh, scale, simd,
        );
    });

    // Pass B: dK/dV, partitioned by (head, key-row-range); the P/dS
    // buffers are complete because run_tasks blocks until pass A finished,
    // and pass B only reads them.
    let ranges_j = parallel::block_ranges(tk, plan_blocks(tk, heads, worth));
    let tasks_b = heads * ranges_j.len();
    // Per task: [dh, rows] accumulation panels for dK and dV (rows ≤ T_k).
    let per_task_b = 2 * tk * dh;
    let mut scratch_b = vec![0.0f32; tasks_b * per_task_b];
    let dk_base = dk.as_mut_ptr() as usize;
    let dv_base = dv.as_mut_ptr() as usize;
    let scratch_b_base = scratch_b.as_mut_ptr() as usize;
    let p_ref: &[f32] = &p_buf;
    let ds_ref: &[f32] = &ds_buf;
    run_tasks(tasks_b, worth, |t| {
        let h = t / ranges_j.len();
        let (j0, j1) = ranges_j[t % ranges_j.len()];
        let rows = j1 - j0;
        let dv_rows = if g_out.is_some() { rows } else { 0 };
        // SAFETY: (head, key-range) pairs are disjoint slices of dk and dv
        // ([H, T_k, dh] layout); on the map path dv is an empty slice and
        // never written. The scratch segment is task-private. Base
        // pointers outlive the call.
        let (dk_block, dv_block, scr) = unsafe {
            (
                std::slice::from_raw_parts_mut(
                    (dk_base as *mut f32).add((h * tk + j0) * dh),
                    rows * dh,
                ),
                std::slice::from_raw_parts_mut(
                    (dv_base as *mut f32).add(if dv_rows == 0 { 0 } else { (h * tk + j0) * dh }),
                    dv_rows * dh,
                ),
                std::slice::from_raw_parts_mut(
                    (scratch_b_base as *mut f32).add(t * per_task_b),
                    per_task_b,
                ),
            )
        };
        let (dkt, dvt) = scr.split_at_mut(tk * dh);
        attn_bwd_dkv_block(
            q, g_out, p_ref, ds_ref, dk_block, dv_block, dkt, dvt, h, j0, j1, heads, tq, tk, dh,
            simd,
        );
    });
}

impl Tensor {
    /// Fused scaled-dot-product attention over per-head inputs.
    ///
    /// `q` is `[H, T_q, dh]`, `k` and `v` are `[H, T_k, dh]`, and `mask`
    /// (optional) is an additive `[T_q, T_k]` bias applied to the
    /// pre-softmax scores of every head. Returns the pair
    ///
    /// - merged context `[T_q, H·dh]` (rows are head-concatenated, i.e.
    ///   `merge_heads` is already applied), and
    /// - head-averaged attention map `[T_q, T_k]`, differentiable with
    ///   respect to `q` and `k`.
    ///
    /// The mask must not require gradients (attention masks are
    /// constants); both outputs are bitwise deterministic across
    /// `TIMEKD_THREADS` settings.
    pub fn fused_attention(
        q: &Tensor,
        k: &Tensor,
        v: &Tensor,
        mask: Option<&Tensor>,
    ) -> (Tensor, Tensor) {
        assert_eq!(
            q.shape().rank(),
            3,
            "fused_attention: q must be [H, T_q, dh], got {}",
            q.shape()
        );
        assert_eq!(
            k.shape().rank(),
            3,
            "fused_attention: k must be [H, T_k, dh], got {}",
            k.shape()
        );
        let (heads, tq, dh) = (q.dims()[0], q.dims()[1], q.dims()[2]);
        let tk = k.dims()[1];
        assert_eq!(
            k.dims(),
            &[heads, tk, dh],
            "fused_attention: q {} and k {} disagree on heads or head dim",
            q.shape(),
            k.shape()
        );
        assert_eq!(
            v.dims(),
            k.dims(),
            "fused_attention: k {} and v {} must have identical shapes",
            k.shape(),
            v.shape()
        );
        assert!(
            heads > 0 && tq > 0 && tk > 0 && dh > 0,
            "fused_attention: empty dimension in q {} / k {}",
            q.shape(),
            k.shape()
        );
        if let Some(m) = mask {
            assert_eq!(
                m.dims(),
                &[tq, tk],
                "fused_attention: mask {} does not match scores [{tq}, {tk}]",
                m.shape()
            );
            assert!(
                !m.requires_grad(),
                "fused_attention: the additive mask must not require gradients"
            );
        }
        let d = heads * dh;
        let scale = 1.0 / (dh as f32).sqrt();

        let mut out = vec![0.0f32; tq * d];
        let mut map = vec![0.0f32; tq * tk];
        let mut stats = SoftmaxStats {
            m: vec![0.0f32; tq * heads],
            l: vec![0.0f32; tq * heads],
        };
        let mask_data: Option<Rc<Vec<f32>>> = mask.map(|m| Rc::new(m.to_vec()));
        {
            let (q_ref, k_ref, v_ref) = (q.data(), k.data(), v.data());
            fused_attention_forward(
                &q_ref,
                &k_ref,
                &v_ref,
                mask_data.as_deref().map(Vec::as_slice),
                &mut out,
                &mut map,
                &mut stats,
                heads,
                tq,
                tk,
                dh,
                scale,
            );
        }
        let stats = Rc::new(stats);

        let out_t = Tensor::from_op(
            "fused_attention",
            out,
            Shape::new([tq, d]),
            vec![q.clone(), k.clone(), v.clone()],
            Box::new({
                let stats = Rc::clone(&stats);
                let mask_data = mask_data.clone();
                move |grad, parents| {
                    let (q, k, v) = (&parents[0], &parents[1], &parents[2]);
                    if !(q.requires_grad() || k.requires_grad() || v.requires_grad()) {
                        return;
                    }
                    let mut dq = vec![0.0f32; heads * tq * dh];
                    let mut dk = vec![0.0f32; heads * tk * dh];
                    let mut dv = vec![0.0f32; heads * tk * dh];
                    {
                        let (q_ref, k_ref, v_ref) = (q.data(), k.data(), v.data());
                        fused_attention_backward(
                            &q_ref,
                            &k_ref,
                            &v_ref,
                            mask_data.as_deref().map(Vec::as_slice),
                            Some(grad),
                            None,
                            &stats,
                            &mut dq,
                            &mut dk,
                            &mut dv,
                            heads,
                            tq,
                            tk,
                            dh,
                            scale,
                        );
                    }
                    if q.requires_grad() {
                        q.accumulate_grad(&dq);
                    }
                    if k.requires_grad() {
                        k.accumulate_grad(&dk);
                    }
                    if v.requires_grad() {
                        v.accumulate_grad(&dv);
                    }
                }
            }),
        );
        let map_t = Tensor::from_op(
            "fused_attention_map",
            map,
            Shape::new([tq, tk]),
            vec![q.clone(), k.clone()],
            Box::new({
                let stats = Rc::clone(&stats);
                let mask_data = mask_data.clone();
                // The map path never touches V: dP_ij = g_map[i, j] / H.
                move |grad, parents| {
                    let (q, k) = (&parents[0], &parents[1]);
                    if !(q.requires_grad() || k.requires_grad()) {
                        return;
                    }
                    let mut dq = vec![0.0f32; heads * tq * dh];
                    let mut dk = vec![0.0f32; heads * tk * dh];
                    let mut dv = Vec::new();
                    {
                        let (q_ref, k_ref) = (q.data(), k.data());
                        fused_attention_backward(
                            &q_ref,
                            &k_ref,
                            &[],
                            mask_data.as_deref().map(Vec::as_slice),
                            None,
                            Some(grad),
                            &stats,
                            &mut dq,
                            &mut dk,
                            &mut dv,
                            heads,
                            tq,
                            tk,
                            dh,
                            scale,
                        );
                    }
                    if q.requires_grad() {
                        q.accumulate_grad(&dq);
                    }
                    if k.requires_grad() {
                        k.accumulate_grad(&dk);
                    }
                }
            }),
        );
        (out_t, map_t)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::init::seeded_rng;
    use crate::tensor::no_grad;

    /// Composed reference built from the existing ops: softmax(QKᵀ·scale +
    /// mask)V with merge, plus the head-averaged map.
    fn composed(q: &Tensor, k: &Tensor, v: &Tensor, mask: Option<&Tensor>) -> (Tensor, Tensor) {
        let (heads, tq, dh) = (q.dims()[0], q.dims()[1], q.dims()[2]);
        let scale = 1.0 / (dh as f32).sqrt();
        let mut scores = q.matmul(&k.transpose_last()).mul_scalar(scale);
        if let Some(m) = mask {
            scores = scores.add(m);
        }
        let attn = scores.softmax_last();
        let ctx = attn.matmul(v);
        let merged = ctx.permute(&[1, 0, 2]).reshape([tq, heads * dh]);
        (merged, attn.mean_axis(0, false))
    }

    fn rand_qkv(
        heads: usize,
        tq: usize,
        tk: usize,
        dh: usize,
        seed: u64,
    ) -> (Tensor, Tensor, Tensor) {
        let mut rng = seeded_rng(seed);
        (
            Tensor::randn_param([heads, tq, dh], 0.7, &mut rng),
            Tensor::randn_param([heads, tk, dh], 0.7, &mut rng),
            Tensor::randn_param([heads, tk, dh], 0.7, &mut rng),
        )
    }

    fn assert_close(a: &[f32], b: &[f32], tol: f32, what: &str) {
        assert_eq!(a.len(), b.len(), "{what}: length");
        for (i, (x, y)) in a.iter().zip(b).enumerate() {
            assert!(
                (x - y).abs() <= tol,
                "{what}: index {i}: {x} vs {y} (tol {tol})"
            );
        }
    }

    #[test]
    fn forward_matches_composed_reference() {
        for &(heads, tq, tk, dh) in &[(1usize, 3usize, 3usize, 4usize), (2, 5, 7, 4), (4, 6, 2, 3)]
        {
            let (q, k, v) = rand_qkv(heads, tq, tk, dh, 7 + heads as u64);
            let (fo, fm) = no_grad(|| Tensor::fused_attention(&q, &k, &v, None));
            let (co, cm) = no_grad(|| composed(&q, &k, &v, None));
            assert_eq!(fo.dims(), &[tq, heads * dh]);
            assert_eq!(fm.dims(), &[tq, tk]);
            assert_close(&fo.to_vec(), &co.to_vec(), 1e-5, "output");
            assert_close(&fm.to_vec(), &cm.to_vec(), 1e-5, "map");
        }
    }

    #[test]
    fn forward_matches_composed_with_mask() {
        let (heads, tq, tk, dh) = (2, 4, 6, 4);
        let mut rng = seeded_rng(42);
        let (q, k, v) = rand_qkv(heads, tq, tk, dh, 9);
        let mask = Tensor::randn([tq, tk], 1.0, &mut rng);
        let (fo, fm) = no_grad(|| Tensor::fused_attention(&q, &k, &v, Some(&mask)));
        let (co, cm) = no_grad(|| composed(&q, &k, &v, Some(&mask)));
        assert_close(&fo.to_vec(), &co.to_vec(), 1e-5, "masked output");
        assert_close(&fm.to_vec(), &cm.to_vec(), 1e-5, "masked map");
    }

    #[test]
    fn map_rows_sum_to_one() {
        let (q, k, v) = rand_qkv(3, 5, 6, 4, 11);
        let (_, map) = no_grad(|| Tensor::fused_attention(&q, &k, &v, None));
        let m = map.to_vec();
        for i in 0..5 {
            let s: f32 = m[i * 6..(i + 1) * 6].iter().sum();
            assert!((s - 1.0).abs() < 1e-5, "row {i} sums to {s}");
        }
    }

    #[test]
    fn gradients_match_composed_reference() {
        // Same loss through both formulations; gradients on q, k, v must
        // agree within float tolerance (summation orders differ).
        let (heads, tq, tk, dh) = (2, 5, 7, 4);
        let mut rng = seeded_rng(13);
        let mask = Tensor::randn([tq, tk], 0.5, &mut rng);
        let loss_of = |fused: bool| {
            let (q, k, v) = rand_qkv(heads, tq, tk, dh, 21);
            let (out, map) = if fused {
                Tensor::fused_attention(&q, &k, &v, Some(&mask))
            } else {
                composed(&q, &k, &v, Some(&mask))
            };
            out.square().sum().add(&map.square().sum()).backward();
            (
                q.grad().expect("dq"),
                k.grad().expect("dk"),
                v.grad().expect("dv"),
            )
        };
        let (fq, fk, fv) = loss_of(true);
        let (cq, ck, cv) = loss_of(false);
        assert_close(&fq, &cq, 1e-4, "dq");
        assert_close(&fk, &ck, 1e-4, "dk");
        assert_close(&fv, &cv, 1e-4, "dv");
    }

    #[test]
    fn grad_check_dq_dk_dv_output_path() {
        let (q, k, v) = rand_qkv(2, 3, 4, 3, 31);
        for (name, p) in [("q", &q), ("k", &k), ("v", &v)] {
            crate::grad_check::assert_gradients_close(
                p,
                || {
                    let (out, _) = Tensor::fused_attention(&q, &k, &v, None);
                    out.square().mean()
                },
                2e-2,
            );
            let _ = name;
        }
    }

    #[test]
    fn grad_check_dq_dk_map_path() {
        // Loss purely on the attention map: the correlation-distillation
        // wiring. V gets no gradient at all on this path.
        let (q, k, v) = rand_qkv(2, 3, 4, 3, 37);
        for p in [&q, &k] {
            crate::grad_check::assert_gradients_close(
                p,
                || {
                    let (_, map) = Tensor::fused_attention(&q, &k, &v, None);
                    map.square().mean()
                },
                2e-2,
            );
        }
        let (_, map) = Tensor::fused_attention(&q, &k, &v, None);
        map.square().mean().backward();
        assert!(v.grad().is_none(), "map path must not reach v");
    }

    #[test]
    fn grad_check_with_mask() {
        let (q, k, v) = rand_qkv(2, 3, 3, 3, 41);
        // Causal-style mask with a finite off-diagonal bias so finite
        // differences stay well-conditioned.
        let mut m = vec![0.0f32; 9];
        for i in 0..3 {
            for j in (i + 1)..3 {
                m[i * 3 + j] = -2.0;
            }
        }
        let mask = Tensor::from_vec(m, [3, 3]);
        crate::grad_check::assert_gradients_close(
            &q,
            || {
                let (out, map) = Tensor::fused_attention(&q, &k, &v, Some(&mask));
                out.square().mean().add(&map.square().mean())
            },
            2e-2,
        );
    }

    #[test]
    fn untracked_under_no_grad() {
        let (q, k, v) = rand_qkv(2, 3, 4, 3, 43);
        let (out, map) = no_grad(|| Tensor::fused_attention(&q, &k, &v, None));
        assert!(!out.requires_grad() && out.is_leaf());
        assert!(!map.requires_grad() && map.is_leaf());
    }

    #[test]
    #[should_panic(expected = "mask must not require gradients")]
    fn grad_requiring_mask_panics() {
        let (q, k, v) = rand_qkv(1, 2, 2, 2, 47);
        let mut rng = seeded_rng(48);
        let mask = Tensor::randn_param([2, 2], 1.0, &mut rng);
        let _ = Tensor::fused_attention(&q, &k, &v, Some(&mask));
    }

    #[test]
    #[should_panic(expected = "must have identical shapes")]
    fn mismatched_kv_panics() {
        let (q, k, _) = rand_qkv(2, 3, 4, 3, 49);
        let mut rng = seeded_rng(50);
        let v = Tensor::randn([2, 5, 3], 1.0, &mut rng);
        let _ = Tensor::fused_attention(&q, &k, &v, None);
    }

    #[test]
    fn parallel_shape_matches_composed() {
        // Above the parallel cutoff so the pool path runs in CI; results
        // must still agree with the composed reference.
        let (heads, tq, tk, dh) = (4, 40, 40, 48);
        let (q, k, v) = rand_qkv(heads, tq, tk, dh, 53);
        assert!(worth_parallel(heads, tq, tk, dh));
        let (fo, fm) = no_grad(|| Tensor::fused_attention(&q, &k, &v, None));
        let (co, cm) = no_grad(|| composed(&q, &k, &v, None));
        assert_close(&fo.to_vec(), &co.to_vec(), 1e-4, "parallel output");
        assert_close(&fm.to_vec(), &cm.to_vec(), 1e-4, "parallel map");
    }
}
