//! Element-wise unary and binary operations with NumPy-style broadcasting.

use crate::ops::broadcast_offsets;
use crate::shape::Shape;
use crate::tensor::Tensor;

/// True if `src` broadcasts to `out` purely by repetition along *leading*
/// axes — i.e. `src`'s dims equal the trailing dims of `out` (after
/// stripping size-1 leading axes of `src`). In that case the source offset
/// for output index `i` is simply `i % src_len`, avoiding offset tables.
///
/// This covers the hottest broadcasts in the workspace: adding a `[T, T]`
/// attention mask to `[H, T, T]` scores and adding a `[D]` bias to
/// `[.., D]` activations.
fn is_trailing_broadcast(src: &Shape, out: &Shape) -> bool {
    let s = src.dims();
    let o = out.dims();
    // Strip leading 1s of src.
    let s = {
        let mut k = 0;
        while k < s.len() && s[k] == 1 {
            k += 1;
        }
        &s[k..]
    };
    s.len() <= o.len() && o[o.len() - s.len()..] == *s
}

impl Tensor {
    /// Generic broadcasting binary op.
    ///
    /// `f(a, b)` computes the forward value; `df(a, b, g)` returns the
    /// gradient contributions `(∂L/∂a, ∂L/∂b)` for one element given the
    /// upstream gradient `g`.
    fn binary_op(
        &self,
        op: &'static str,
        other: &Tensor,
        f: impl Fn(f32, f32) -> f32,
        df: impl Fn(f32, f32, f32) -> (f32, f32) + 'static,
    ) -> Tensor {
        let out_shape = self
            .shape()
            .broadcast_with(other.shape())
            .unwrap_or_else(|| {
                panic!(
                    "incompatible shapes for binary op: {} vs {}",
                    self.shape(),
                    other.shape()
                )
            });
        let n = out_shape.num_elements();
        let a_data = self.data();
        let b_data = other.data();
        let mut out = Vec::with_capacity(n);
        if *self.shape() == out_shape && *other.shape() == out_shape {
            for i in 0..n {
                out.push(f(a_data[i], b_data[i]));
            }
        } else if *self.shape() == out_shape && is_trailing_broadcast(other.shape(), &out_shape) {
            let bl = b_data.len();
            for i in 0..n {
                out.push(f(a_data[i], b_data[i % bl]));
            }
        } else if *other.shape() == out_shape && is_trailing_broadcast(self.shape(), &out_shape) {
            let al = a_data.len();
            for i in 0..n {
                out.push(f(a_data[i % al], b_data[i]));
            }
        } else {
            let a_off = broadcast_offsets(self.shape(), &out_shape);
            let b_off = broadcast_offsets(other.shape(), &out_shape);
            for i in 0..n {
                out.push(f(a_data[a_off[i]], b_data[b_off[i]]));
            }
        }
        drop(a_data);
        drop(b_data);
        let out_shape_bw = out_shape.clone();
        Tensor::from_op(
            op,
            out,
            out_shape,
            vec![self.clone(), other.clone()],
            Box::new(move |grad, parents| {
                let (a, b) = (&parents[0], &parents[1]);
                let a_data = a.data();
                let b_data = b.data();
                let same_a = *a.shape() == out_shape_bw;
                let same_b = *b.shape() == out_shape_bw;
                let mut ga = vec![0.0f32; a.num_elements()];
                let mut gb = vec![0.0f32; b.num_elements()];
                if same_a && same_b {
                    for i in 0..grad.len() {
                        let (da, db) = df(a_data[i], b_data[i], grad[i]);
                        ga[i] += da;
                        gb[i] += db;
                    }
                } else if same_a && is_trailing_broadcast(b.shape(), &out_shape_bw) {
                    let bl = b_data.len();
                    for i in 0..grad.len() {
                        let (da, db) = df(a_data[i], b_data[i % bl], grad[i]);
                        ga[i] += da;
                        gb[i % bl] += db;
                    }
                } else if same_b && is_trailing_broadcast(a.shape(), &out_shape_bw) {
                    let al = a_data.len();
                    for i in 0..grad.len() {
                        let (da, db) = df(a_data[i % al], b_data[i], grad[i]);
                        ga[i % al] += da;
                        gb[i] += db;
                    }
                } else {
                    let a_off = broadcast_offsets(a.shape(), &out_shape_bw);
                    let b_off = broadcast_offsets(b.shape(), &out_shape_bw);
                    for i in 0..grad.len() {
                        let (da, db) = df(a_data[a_off[i]], b_data[b_off[i]], grad[i]);
                        ga[a_off[i]] += da;
                        gb[b_off[i]] += db;
                    }
                }
                drop(a_data);
                drop(b_data);
                if a.requires_grad() {
                    a.accumulate_grad(&ga);
                }
                if b.requires_grad() {
                    b.accumulate_grad(&gb);
                }
            }),
        )
    }

    /// Generic unary op. `df(x, y, g)` receives the input, the output, and
    /// the upstream gradient.
    fn unary_op(
        &self,
        op: &'static str,
        f: impl Fn(f32) -> f32,
        df: impl Fn(f32, f32, f32) -> f32 + 'static,
    ) -> Tensor {
        let data = self.data();
        let out: Vec<f32> = data.iter().map(|&x| f(x)).collect();
        drop(data);
        let saved_out = out.clone();
        Tensor::from_op(
            op,
            out,
            self.shape().clone(),
            vec![self.clone()],
            Box::new(move |grad, parents| {
                let x = &parents[0];
                if !x.requires_grad() {
                    return;
                }
                let x_data = x.data();
                let gx: Vec<f32> = (0..grad.len())
                    .map(|i| df(x_data[i], saved_out[i], grad[i]))
                    .collect();
                drop(x_data);
                x.accumulate_grad(&gx);
            }),
        )
    }

    /// Element-wise addition with broadcasting.
    pub fn add(&self, other: &Tensor) -> Tensor {
        self.binary_op("add", other, |a, b| a + b, |_, _, g| (g, g))
    }

    /// Element-wise subtraction with broadcasting.
    pub fn sub(&self, other: &Tensor) -> Tensor {
        self.binary_op("sub", other, |a, b| a - b, |_, _, g| (g, -g))
    }

    /// Element-wise multiplication with broadcasting.
    pub fn mul(&self, other: &Tensor) -> Tensor {
        self.binary_op("mul", other, |a, b| a * b, |a, b, g| (g * b, g * a))
    }

    /// Element-wise division with broadcasting.
    pub fn div(&self, other: &Tensor) -> Tensor {
        self.binary_op(
            "div",
            other,
            |a, b| a / b,
            |a, b, g| (g / b, -g * a / (b * b)),
        )
    }

    /// Element-wise Smooth-L1 (Huber, δ=1) loss per Eq. (17) of the paper:
    /// `0.5 d²` when `|d| < 1`, `|d| − 0.5` otherwise, where `d = self −
    /// target`.
    pub fn smooth_l1(&self, target: &Tensor) -> Tensor {
        self.binary_op(
            "smooth_l1",
            target,
            |a, b| {
                let d = a - b;
                if d.abs() < 1.0 {
                    0.5 * d * d
                } else {
                    d.abs() - 0.5
                }
            },
            |a, b, g| {
                let d = (a - b).clamp(-1.0, 1.0);
                (g * d, -g * d)
            },
        )
    }

    /// Adds a scalar to every element.
    pub fn add_scalar(&self, c: f32) -> Tensor {
        self.unary_op("add_scalar", move |x| x + c, |_, _, g| g)
    }

    /// Multiplies every element by a scalar.
    pub fn mul_scalar(&self, c: f32) -> Tensor {
        self.unary_op("mul_scalar", move |x| x * c, move |_, _, g| g * c)
    }

    /// Element-wise negation.
    pub fn neg(&self) -> Tensor {
        self.mul_scalar(-1.0)
    }

    /// Element-wise exponential.
    pub fn exp(&self) -> Tensor {
        self.unary_op("exp", |x| x.exp(), |_, y, g| g * y)
    }

    /// Element-wise natural logarithm.
    pub fn ln(&self) -> Tensor {
        self.unary_op("ln", |x| x.ln(), |x, _, g| g / x)
    }

    /// Element-wise square root.
    pub fn sqrt(&self) -> Tensor {
        self.unary_op("sqrt", |x| x.sqrt(), |_, y, g| g * 0.5 / y)
    }

    /// Element-wise reciprocal square root `1/√(x)`.
    pub fn rsqrt(&self) -> Tensor {
        self.unary_op(
            "rsqrt",
            |x| 1.0 / x.sqrt(),
            |x, y, g| g * (-0.5) * y / x, // d/dx x^(-1/2) = -1/2 x^(-3/2)
        )
    }

    /// Element-wise square.
    pub fn square(&self) -> Tensor {
        self.unary_op("square", |x| x * x, |x, _, g| g * 2.0 * x)
    }

    /// Element-wise absolute value. The gradient at 0 is defined as 0.
    pub fn abs(&self) -> Tensor {
        self.unary_op(
            "abs",
            |x| x.abs(),
            |x, _, g| {
                if x > 0.0 {
                    g
                } else if x < 0.0 {
                    -g
                } else {
                    0.0
                }
            },
        )
    }

    /// Rectified linear unit `max(0, x)` as used by the paper's FFNs
    /// (Eq. 7).
    pub fn relu(&self) -> Tensor {
        self.unary_op(
            "relu",
            |x| x.max(0.0),
            |x, _, g| if x > 0.0 { g } else { 0.0 },
        )
    }

    /// Gaussian error linear unit (tanh approximation), used by the GPT
    /// backbone.
    pub fn gelu(&self) -> Tensor {
        const C: f32 = 0.797_884_6; // sqrt(2/π)
        self.unary_op(
            "gelu",
            |x| {
                let inner = C * (x + 0.044715 * x * x * x);
                0.5 * x * (1.0 + inner.tanh())
            },
            |x, _, g| {
                let x3 = 0.044715 * x * x * x;
                let inner = C * (x + x3);
                let t = inner.tanh();
                let sech2 = 1.0 - t * t;
                let d_inner = C * (1.0 + 3.0 * 0.044715 * x * x);
                g * (0.5 * (1.0 + t) + 0.5 * x * sech2 * d_inner)
            },
        )
    }

    /// Hyperbolic tangent.
    pub fn tanh(&self) -> Tensor {
        self.unary_op("tanh", |x| x.tanh(), |_, y, g| g * (1.0 - y * y))
    }

    /// Logistic sigmoid.
    pub fn sigmoid(&self) -> Tensor {
        self.unary_op(
            "sigmoid",
            |x| 1.0 / (1.0 + (-x).exp()),
            |_, y, g| g * y * (1.0 - y),
        )
    }

    /// Clamps values to `[lo, hi]`. Gradient is zero outside the range.
    pub fn clamp(&self, lo: f32, hi: f32) -> Tensor {
        assert!(lo <= hi, "clamp: lo > hi");
        self.unary_op(
            "clamp",
            move |x| x.clamp(lo, hi),
            move |x, _, g| if x >= lo && x <= hi { g } else { 0.0 },
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn assert_close(a: &[f32], b: &[f32], tol: f32) {
        assert_eq!(a.len(), b.len());
        for (x, y) in a.iter().zip(b) {
            assert!((x - y).abs() < tol, "{a:?} vs {b:?}");
        }
    }

    #[test]
    fn add_same_shape() {
        let a = Tensor::from_vec(vec![1.0, 2.0], [2]);
        let b = Tensor::from_vec(vec![10.0, 20.0], [2]);
        assert_eq!(a.add(&b).to_vec(), vec![11.0, 22.0]);
    }

    #[test]
    fn add_broadcast_row() {
        let a = Tensor::from_vec(vec![1.0, 2.0, 3.0, 4.0, 5.0, 6.0], [2, 3]);
        let b = Tensor::from_vec(vec![10.0, 20.0, 30.0], [3]);
        assert_eq!(a.add(&b).to_vec(), vec![11.0, 22.0, 33.0, 14.0, 25.0, 36.0]);
    }

    #[test]
    fn mul_backward() {
        let a = Tensor::param(vec![2.0, 3.0], [2]);
        let b = Tensor::param(vec![5.0, 7.0], [2]);
        a.mul(&b).sum().backward();
        assert_eq!(a.grad().unwrap(), vec![5.0, 7.0]);
        assert_eq!(b.grad().unwrap(), vec![2.0, 3.0]);
    }

    #[test]
    fn broadcast_backward_reduces() {
        // b has shape [3], broadcast over 2 rows: grad should sum rows.
        let a = Tensor::param(vec![1.0; 6], [2, 3]);
        let b = Tensor::param(vec![1.0, 2.0, 3.0], [3]);
        a.mul(&b).sum().backward();
        assert_eq!(b.grad().unwrap(), vec![2.0, 2.0, 2.0]);
        assert_eq!(a.grad().unwrap(), vec![1.0, 2.0, 3.0, 1.0, 2.0, 3.0]);
    }

    #[test]
    fn div_values_and_grad() {
        let a = Tensor::param(vec![6.0], [1]);
        let b = Tensor::param(vec![3.0], [1]);
        let y = a.div(&b);
        assert_eq!(y.to_vec(), vec![2.0]);
        y.sum().backward();
        assert_close(&a.grad().unwrap(), &[1.0 / 3.0], 1e-6);
        assert_close(&b.grad().unwrap(), &[-6.0 / 9.0], 1e-6);
    }

    #[test]
    fn smooth_l1_regions() {
        let a = Tensor::from_vec(vec![0.5, 3.0, -2.0, 0.0], [4]);
        let b = Tensor::zeros([4]);
        let l = a.smooth_l1(&b);
        assert_close(&l.to_vec(), &[0.125, 2.5, 1.5, 0.0], 1e-6);
    }

    #[test]
    fn smooth_l1_grad_clipped() {
        let a = Tensor::param(vec![0.5, 3.0, -2.0], [3]);
        let b = Tensor::zeros([3]);
        a.smooth_l1(&b).sum().backward();
        assert_close(&a.grad().unwrap(), &[0.5, 1.0, -1.0], 1e-6);
    }

    #[test]
    fn relu_forward_backward() {
        let a = Tensor::param(vec![-1.0, 0.0, 2.0], [3]);
        let y = a.relu();
        assert_eq!(y.to_vec(), vec![0.0, 0.0, 2.0]);
        y.sum().backward();
        assert_eq!(a.grad().unwrap(), vec![0.0, 0.0, 1.0]);
    }

    #[test]
    fn exp_ln_inverse() {
        let a = Tensor::from_vec(vec![0.5, 1.0, 2.0], [3]);
        let y = a.exp().ln();
        assert_close(&y.to_vec(), &a.to_vec(), 1e-5);
    }

    #[test]
    fn sigmoid_range() {
        let a = Tensor::from_vec(vec![-100.0, 0.0, 100.0], [3]);
        let y = a.sigmoid().to_vec();
        assert!(y[0] >= 0.0 && y[0] < 1e-6);
        assert!((y[1] - 0.5).abs() < 1e-6);
        assert!(y[2] > 1.0 - 1e-6 && y[2] <= 1.0);
    }

    #[test]
    fn gelu_known_values() {
        let a = Tensor::from_vec(vec![0.0, 1.0, -1.0], [3]);
        let y = a.gelu().to_vec();
        assert!((y[0] - 0.0).abs() < 1e-6);
        assert!((y[1] - 0.8412).abs() < 1e-3);
        assert!((y[2] + 0.1588).abs() < 1e-3);
    }

    #[test]
    fn clamp_grad_mask() {
        let a = Tensor::param(vec![-2.0, 0.5, 2.0], [3]);
        a.clamp(-1.0, 1.0).sum().backward();
        assert_eq!(a.grad().unwrap(), vec![0.0, 1.0, 0.0]);
    }

    #[test]
    #[should_panic(expected = "incompatible shapes")]
    fn incompatible_shapes_panic() {
        let a = Tensor::zeros([2, 3]);
        let b = Tensor::zeros([2, 4]);
        let _ = a.add(&b);
    }

    #[test]
    fn trailing_broadcast_fast_path_matches_general() {
        // [2,3,4] + [3,4] exercises the i % len fast path; compare against
        // an explicitly materialised broadcast.
        let a = Tensor::param((0..24).map(|x| x as f32).collect(), [2, 3, 4]);
        let b = Tensor::param((0..12).map(|x| x as f32 * 0.5).collect(), [3, 4]);
        let fast = a.mul(&b);
        let slow = a.mul(&b.broadcast_to([2, 3, 4]));
        assert_eq!(fast.to_vec(), slow.to_vec());
        fast.sum().backward();
        let gb_fast = b.grad().unwrap();
        a.zero_grad();
        b.zero_grad();
        slow.sum().backward();
        assert_eq!(gb_fast, b.grad().unwrap());
    }

    #[test]
    fn scalar_broadcast_both_ways() {
        let a = Tensor::from_vec(vec![1.0, 2.0], [2]);
        let s = Tensor::scalar(10.0);
        assert_eq!(a.add(&s).to_vec(), vec![11.0, 12.0]);
        assert_eq!(s.add(&a).to_vec(), vec![11.0, 12.0]);
    }
}
