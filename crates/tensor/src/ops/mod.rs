//! Differentiable tensor operations.
//!
//! Each op computes its forward value eagerly and, when any input requires
//! grad (and grad recording is enabled), registers a backward closure on the
//! output node. Broadcasting ops map every output element to a source
//! element per operand via precomputed offset tables, which the backward
//! pass reuses to scatter gradients.

pub(crate) mod attention;
pub(crate) mod elementwise;
pub(crate) mod matmul;
pub(crate) mod qmm;
pub(crate) mod reduce;
pub(crate) mod shape_ops;
pub(crate) mod softmax;

use crate::shape::Shape;

/// For each flat output index of `out`, the flat source index in a tensor of
/// shape `src` broadcast to `out`.
///
/// `src` must broadcast to `out`.
pub(crate) fn broadcast_offsets(src: &Shape, out: &Shape) -> Vec<usize> {
    debug_assert!(src.broadcasts_to(out), "{src} !-> {out}");
    let n = out.num_elements();
    let mut offsets = Vec::with_capacity(n);
    if src == out {
        offsets.extend(0..n);
        return offsets;
    }
    let out_dims = out.dims();
    let rank = out.rank();
    let pad = rank - src.rank();
    let src_strides = src.strides();
    // Effective stride of the src tensor along each out axis (0 where the
    // src axis is missing or has size 1).
    let mut eff = vec![0usize; rank];
    for (i, e) in eff.iter_mut().enumerate() {
        if i >= pad {
            let s = i - pad;
            if src.dim(s) != 1 {
                *e = src_strides[s];
            }
        }
    }
    let mut idx = vec![0usize; rank];
    let mut src_off = 0usize;
    for _ in 0..n {
        offsets.push(src_off);
        // Odometer increment.
        let mut ax = rank;
        loop {
            if ax == 0 {
                break;
            }
            ax -= 1;
            idx[ax] += 1;
            src_off += eff[ax];
            if idx[ax] < out_dims[ax] {
                break;
            }
            src_off -= eff[ax] * out_dims[ax];
            idx[ax] = 0;
        }
    }
    offsets
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn offsets_identity() {
        let s = Shape::new([2, 3]);
        assert_eq!(broadcast_offsets(&s, &s), (0..6).collect::<Vec<_>>());
    }

    #[test]
    fn offsets_row_broadcast() {
        // [1, 3] -> [2, 3]: both rows read the same source row.
        let src = Shape::new([1, 3]);
        let out = Shape::new([2, 3]);
        assert_eq!(broadcast_offsets(&src, &out), vec![0, 1, 2, 0, 1, 2]);
    }

    #[test]
    fn offsets_col_broadcast() {
        // [2, 1] -> [2, 3].
        let src = Shape::new([2, 1]);
        let out = Shape::new([2, 3]);
        assert_eq!(broadcast_offsets(&src, &out), vec![0, 0, 0, 1, 1, 1]);
    }

    #[test]
    fn offsets_rank_extension() {
        // [3] -> [2, 3].
        let src = Shape::new([3]);
        let out = Shape::new([2, 3]);
        assert_eq!(broadcast_offsets(&src, &out), vec![0, 1, 2, 0, 1, 2]);
    }

    #[test]
    fn offsets_scalar() {
        let src = Shape::scalar();
        let out = Shape::new([2, 2]);
        assert_eq!(broadcast_offsets(&src, &out), vec![0, 0, 0, 0]);
    }
}
