//! Numerically stable softmax and log-softmax along the last axis.

use crate::shape::Shape;
use crate::tensor::Tensor;

impl Tensor {
    /// Softmax over the last axis.
    ///
    /// Rows are shifted by their maximum before exponentiation, so rows
    /// containing large negative attention biases (e.g. the causal `-inf`
    /// approximation `-1e9`) stay finite.
    pub fn softmax_last(&self) -> Tensor {
        let rank = self.shape().rank();
        assert!(rank >= 1, "softmax on a scalar");
        let c = self.dims()[rank - 1];
        let rows = self.num_elements() / c;
        let data = self.data();
        let mut out = vec![0.0f32; data.len()];
        for r in 0..rows {
            let row = &data[r * c..(r + 1) * c];
            let m = row.iter().copied().fold(f32::NEG_INFINITY, f32::max);
            let mut denom = 0.0f32;
            for (o, &x) in out[r * c..(r + 1) * c].iter_mut().zip(row) {
                let e = (x - m).exp();
                *o = e;
                denom += e;
            }
            let inv = 1.0 / denom;
            for o in &mut out[r * c..(r + 1) * c] {
                *o *= inv;
            }
        }
        drop(data);
        let saved = out.clone();
        Tensor::from_op(
            "softmax_last",
            out,
            self.shape().clone(),
            vec![self.clone()],
            Box::new(move |grad, parents| {
                let x = &parents[0];
                if !x.requires_grad() {
                    return;
                }
                // dL/dx = y ⊙ (g − ⟨g, y⟩) per row.
                let mut gx = vec![0.0f32; grad.len()];
                for r in 0..rows {
                    let y = &saved[r * c..(r + 1) * c];
                    let g = &grad[r * c..(r + 1) * c];
                    let dot: f32 = y.iter().zip(g).map(|(a, b)| a * b).sum();
                    for ((o, &yi), &gi) in gx[r * c..(r + 1) * c].iter_mut().zip(y).zip(g) {
                        *o = yi * (gi - dot);
                    }
                }
                x.accumulate_grad(&gx);
            }),
        )
    }

    /// Log-softmax over the last axis (for cross-entropy).
    pub fn log_softmax_last(&self) -> Tensor {
        let rank = self.shape().rank();
        assert!(rank >= 1, "log_softmax on a scalar");
        let c = self.dims()[rank - 1];
        let rows = self.num_elements() / c;
        let data = self.data();
        let mut out = vec![0.0f32; data.len()];
        let mut probs = vec![0.0f32; data.len()];
        for r in 0..rows {
            let row = &data[r * c..(r + 1) * c];
            let m = row.iter().copied().fold(f32::NEG_INFINITY, f32::max);
            let mut denom = 0.0f32;
            for &x in row {
                denom += (x - m).exp();
            }
            let lse = m + denom.ln();
            for ((o, p), &x) in out[r * c..(r + 1) * c]
                .iter_mut()
                .zip(&mut probs[r * c..(r + 1) * c])
                .zip(row)
            {
                *o = x - lse;
                *p = (x - lse).exp();
            }
        }
        drop(data);
        Tensor::from_op(
            "log_softmax_last",
            out,
            self.shape().clone(),
            vec![self.clone()],
            Box::new(move |grad, parents| {
                let x = &parents[0];
                if !x.requires_grad() {
                    return;
                }
                // dL/dx = g − softmax(x) * Σg per row.
                let mut gx = vec![0.0f32; grad.len()];
                for r in 0..rows {
                    let g = &grad[r * c..(r + 1) * c];
                    let p = &probs[r * c..(r + 1) * c];
                    let gsum: f32 = g.iter().sum();
                    for ((o, &gi), &pi) in gx[r * c..(r + 1) * c].iter_mut().zip(g).zip(p) {
                        *o = gi - pi * gsum;
                    }
                }
                x.accumulate_grad(&gx);
            }),
        )
    }

    /// Mean negative log-likelihood of `targets` under `self` treated as
    /// logits of shape `[R, C]` (rows = positions, C = classes).
    pub fn cross_entropy(&self, targets: &[usize]) -> Tensor {
        let rank = self.shape().rank();
        let c = self.dims()[rank - 1];
        let rows = self.num_elements() / c;
        assert_eq!(targets.len(), rows, "cross_entropy: one target per row");
        let flat = self.reshape(Shape::new([rows, c]));
        flat.log_softmax_last().gather_last(targets).mean().neg()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn close(a: f32, b: f32) -> bool {
        (a - b).abs() < 1e-5
    }

    #[test]
    fn softmax_rows_sum_to_one() {
        let t = Tensor::from_vec(vec![1.0, 2.0, 3.0, -1.0, 0.0, 1.0], [2, 3]);
        let y = t.softmax_last();
        let v = y.to_vec();
        assert!(close(v[0] + v[1] + v[2], 1.0));
        assert!(close(v[3] + v[4] + v[5], 1.0));
        // Monotone in logits.
        assert!(v[0] < v[1] && v[1] < v[2]);
    }

    #[test]
    fn softmax_stable_with_large_negatives() {
        let t = Tensor::from_vec(vec![0.0, -1e9, -1e9], [1, 3]);
        let v = t.softmax_last().to_vec();
        assert!(close(v[0], 1.0));
        assert!(close(v[1], 0.0));
        assert!(v.iter().all(|x| x.is_finite()));
    }

    #[test]
    fn softmax_invariant_to_shift() {
        let a = Tensor::from_vec(vec![1.0, 2.0, 3.0], [1, 3]);
        let b = a.add_scalar(100.0);
        let va = a.softmax_last().to_vec();
        let vb = b.softmax_last().to_vec();
        for (x, y) in va.iter().zip(&vb) {
            assert!(close(*x, *y));
        }
    }

    #[test]
    fn softmax_grad_sums_to_zero() {
        // Softmax output is shift-invariant, so row gradients sum to 0.
        let p = Tensor::param(vec![0.3, -0.1, 0.7], [1, 3]);
        let w = Tensor::from_vec(vec![1.0, 0.0, 0.0], [1, 3]);
        p.softmax_last().mul(&w).sum().backward();
        let g = p.grad().unwrap();
        assert!(close(g.iter().sum::<f32>(), 0.0));
        assert!(g[0] > 0.0 && g[1] < 0.0 && g[2] < 0.0);
    }

    #[test]
    fn log_softmax_matches_ln_softmax() {
        let t = Tensor::from_vec(vec![0.5, -0.3, 2.0, 0.0], [2, 2]);
        let a = t.softmax_last().ln().to_vec();
        let b = t.log_softmax_last().to_vec();
        for (x, y) in a.iter().zip(&b) {
            assert!(close(*x, *y));
        }
    }

    #[test]
    fn cross_entropy_perfect_prediction_near_zero() {
        let logits = Tensor::from_vec(vec![100.0, 0.0, 0.0, 0.0, 100.0, 0.0], [2, 3]);
        let loss = logits.cross_entropy(&[0, 1]);
        assert!(loss.item() < 1e-4);
    }

    #[test]
    fn cross_entropy_uniform_is_ln_c() {
        let logits = Tensor::zeros([4, 5]);
        let loss = logits.cross_entropy(&[0, 1, 2, 3]);
        assert!(close(loss.item(), (5.0f32).ln()));
    }

    #[test]
    fn cross_entropy_grad_direction() {
        // Gradient should push the target logit up (negative grad).
        let p = Tensor::param(vec![0.0, 0.0, 0.0], [1, 3]);
        p.cross_entropy(&[1]).backward();
        let g = p.grad().unwrap();
        assert!(g[1] < 0.0);
        assert!(g[0] > 0.0 && g[2] > 0.0);
        assert!(close(g.iter().sum::<f32>(), 0.0));
    }

    #[test]
    fn softmax_3d_rows_independent() {
        let t = Tensor::from_vec((0..12).map(|x| x as f32 * 0.1).collect(), [2, 2, 3]);
        let y = t.softmax_last().to_vec();
        for r in 0..4 {
            let s: f32 = y[r * 3..(r + 1) * 3].iter().sum();
            assert!(close(s, 1.0));
        }
    }
}
