//! Backward compilation: reverse schedules, gradient liveness, and the
//! zero-allocation training executor.
//!
//! [`Plan::compile_training`] extends the forward lowering of
//! [`crate::plan`] with a statically derived *reverse schedule*: one
//! adjoint step per tracked forward op (emitted in the exact reverse
//! topological order the dynamic engine walks), followed by fused
//! optimizer-update steps. Gradient buffers are ordinary plan values
//! (sourced [`ValueSource::Grad`]) colored by the same
//! interference/first-fit machinery as forward activations, over a single
//! combined timeline `forward ++ backward ++ update`. Forward values read
//! by an adjoint kernel (saved activations) have their live intervals
//! pinned across the reversal point, so the allocator can never recycle
//! an activation slot before its last backward consumer.
//!
//! [`TrainExecutor`] replays the combined schedule from pre-sized buffers
//! with zero per-step heap allocation, using the *same serial row-block
//! kernels* as the dynamic engine so parameter updates are bitwise
//! identical to dynamic [`crate::Tensor`] training at any
//! `TIMEKD_THREADS`. Fused attention's two-pass backward recomputes the
//! softmax stats with the deterministic forward kernel instead of saving
//! them, which is bitwise-equal because the forward row pass is itself
//! deterministic.
//!
//! Adjoint accumulation order mirrors the dynamic engine exactly: every
//! backward step first materializes each operand's gradient contribution
//! in scratch (ascending element order), then applies the contributions
//! to the gradient buffers in the dynamic closure's `accumulate_grad`
//! order — the first write to a buffer is an [`GradMode::Init`] copy (the
//! dynamic `None` slot path), every later one an elementwise
//! [`GradMode::Accum`] add.

use std::collections::{HashMap, HashSet};

use crate::ops::attention::{attn_bwd_dkv_block, attn_bwd_dq_block, attn_fwd_row_block};
use crate::ops::matmul::{mm_nt_row_block, mm_row_block, pack_transpose_into};
use crate::plan::{
    assign_slots, eff_strides, lower_forward, BinKind, Loc, Plan, PlanError, PlanExecutor, PlanOp,
    PlanSlot, PlanSpec, PlanValue, Precision, ValueId, ValueSource, MAX_PLAN_RANK,
};
use crate::symbolic::SymbolicTensor;

/// How a backward step's write lands in a gradient buffer.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum GradMode {
    /// First write: the buffer is initialized by a copy (the dynamic
    /// `accumulate_grad` empty-slot path).
    Init,
    /// Later writes add element-wise (`+=`), in schedule order.
    Accum,
}

/// One step of the reverse schedule.
#[derive(Clone, Debug)]
pub struct BwdStep {
    /// Index of the forward step this adjoint reverses; `None` for the
    /// seed step that initializes the root gradient to 1.
    pub fwd_step: Option<usize>,
    /// Incoming (upstream) gradient value; `None` for the seed.
    pub grad_in: Option<ValueId>,
    /// Forward values the adjoint kernel reads (saved activations). These
    /// pin the forward intervals across the reversal point.
    pub reads: Vec<ValueId>,
    /// Gradient buffers written, in the dynamic engine's accumulation
    /// order (operand order of the forward op, gated on `requires_grad`).
    pub writes: Vec<(ValueId, GradMode)>,
}

/// One fused optimizer update: `param ← param - f(grad)` in place.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct UpdateStep {
    /// The parameter value updated in place.
    pub param: ValueId,
    /// The gradient buffer read.
    pub grad: ValueId,
}

/// The fused optimizer a training plan appends after the reverse
/// schedule.
#[derive(Clone, Copy, Debug, PartialEq)]
pub enum PlanOptimizer {
    /// Plain stochastic gradient descent: `p -= lr · g`.
    Sgd {
        /// Learning rate.
        lr: f32,
    },
    /// Decoupled-weight-decay Adam, bitwise-matching `timekd_nn::AdamW`.
    AdamW {
        /// Learning rate.
        lr: f32,
        /// First-moment decay.
        beta1: f32,
        /// Second-moment decay.
        beta2: f32,
        /// Numerical stabiliser.
        eps: f32,
        /// Decoupled weight decay.
        weight_decay: f32,
    },
}

/// What a training plan trains against and how.
#[derive(Clone, Debug)]
pub struct TrainSpec {
    /// Label of the constant leaf fed with the per-step target window
    /// (becomes the plan's [`ValueSource::Target`] value).
    pub target_label: String,
    /// Fused optimizer appended after the reverse schedule.
    pub optimizer: PlanOptimizer,
    /// Global gradient-norm clipping threshold applied between the
    /// reverse schedule and the optimizer sweep, bitwise-matching
    /// `timekd_nn::clip_grad_norm`.
    pub grad_clip: Option<f32>,
    /// Parameter labels in the dynamic clipping traversal order (the
    /// caller's `Module::params` order). Empty means plan update order.
    pub clip_param_order: Vec<String>,
    /// Symbolic node ids whose values must stay readable from the arena
    /// after a step (e.g. per-component loss scalars); each is pinned
    /// live through the end of the combined timeline.
    pub pinned: Vec<u64>,
}

impl TrainSpec {
    /// A spec with no clipping, default clip order, and no pinned values.
    pub fn new(target_label: impl Into<String>, optimizer: PlanOptimizer) -> TrainSpec {
        TrainSpec {
            target_label: target_label.into(),
            optimizer,
            grad_clip: None,
            clip_param_order: Vec::new(),
            pinned: Vec::new(),
        }
    }
}

/// Replicates `Tensor::backward`'s iterative topological sort over
/// gradient edges: enter skips nodes that don't require grad or were
/// visited, parents are pushed un-reversed, exits emit post-order.
fn sym_grad_topo(root: &SymbolicTensor) -> Vec<SymbolicTensor> {
    enum Walk {
        Enter(SymbolicTensor),
        Exit(SymbolicTensor),
    }
    let mut order = Vec::new();
    let mut visited: HashSet<u64> = HashSet::new();
    let mut stack = vec![Walk::Enter(root.clone())];
    while let Some(item) = stack.pop() {
        match item {
            Walk::Enter(t) => {
                if !t.requires_grad() || visited.contains(&t.id()) {
                    continue;
                }
                visited.insert(t.id());
                stack.push(Walk::Exit(t.clone()));
                for p in t.grad_parents() {
                    stack.push(Walk::Enter(p.clone()));
                }
            }
            Walk::Exit(t) => order.push(t),
        }
    }
    order
}

/// Returns (and on first use creates) the gradient value of `parent`.
fn grad_value(
    values: &mut Vec<PlanValue>,
    grad_of: &mut HashMap<ValueId, ValueId>,
    parent: ValueId,
    bwd_idx: usize,
) -> (ValueId, GradMode) {
    if let Some(&gid) = grad_of.get(&parent) {
        (gid, GradMode::Accum)
    } else {
        let gid = values.len();
        values.push(PlanValue {
            source: ValueSource::Grad(bwd_idx),
            dims: values[parent].dims.clone(),
            label: format!("∂{}", values[parent].label),
            sym_ids: Vec::new(),
            slot: None,
            requires_grad: false,
            frozen: false,
            adjoint_of: Some(parent),
        });
        grad_of.insert(parent, gid);
        (gid, GradMode::Init)
    }
}

impl Plan {
    /// Lowers the graph reachable from the scalar loss `root` into a full
    /// training plan: forward schedule, reverse schedule, and fused
    /// optimizer updates, all sharing one arena. The constant leaf named
    /// by `train.target_label` becomes the per-step target buffer.
    pub fn compile_training(
        root: &SymbolicTensor,
        spec: &PlanSpec,
        train: &TrainSpec,
    ) -> Result<Plan, PlanError> {
        let lowering = lower_forward(root, spec, Some(&train.target_label))?;
        let mut values = lowering.values;
        let steps = lowering.steps;
        let val_of = lowering.val_of;
        let root_val = lowering.root;
        let target_val = lowering.target.ok_or_else(|| {
            PlanError::new(format!(
                "training plan has no target leaf `{}`",
                train.target_label
            ))
        })?;
        if values[root_val].len() != 1 {
            return Err(PlanError::new(format!(
                "training root `{}` must be a scalar loss, got {:?}",
                values[root_val].label, values[root_val].dims
            )));
        }
        if !values[root_val].requires_grad {
            return Err(PlanError::new(
                "training root does not require grad; nothing to train",
            ));
        }

        // Reverse schedule. The seed step plays `accumulate_grad(&[1.0])`
        // on the root; then one adjoint step per tracked node, in the
        // exact reverse of the dynamic topological order.
        let order = sym_grad_topo(root);
        let mut grad_of: HashMap<ValueId, ValueId> = HashMap::new();
        let mut bwd_steps: Vec<BwdStep> = Vec::new();
        {
            let (gid, mode) = grad_value(&mut values, &mut grad_of, root_val, 0);
            bwd_steps.push(BwdStep {
                fwd_step: None,
                grad_in: None,
                reads: Vec::new(),
                writes: vec![(gid, mode)],
            });
        }
        for node in order.iter().rev() {
            if node.is_leaf() {
                // Leaves have no backward fn; their gradients are written
                // by their consumers' steps.
                continue;
            }
            let out_vid = *val_of.get(&node.id()).ok_or_else(|| {
                PlanError::new(format!("gradient node `{}` was not lowered", node.label()))
            })?;
            let grad_in = *grad_of.get(&out_vid).ok_or_else(|| {
                PlanError::new(format!(
                    "gradient of `{}` is never produced",
                    values[out_vid].label
                ))
            })?;
            let fwd_idx = match values[out_vid].source {
                ValueSource::Step(i) => i,
                _ => {
                    return Err(PlanError::new(format!(
                        "non-leaf `{}` has no forward step",
                        values[out_vid].label
                    )))
                }
            };
            let inputs = steps[fwd_idx].inputs.clone();
            // Saved activations each adjoint kernel reads, and which
            // operands receive gradient (in dynamic accumulation order).
            let (reads, sides): (Vec<ValueId>, &[usize]) = match &steps[fwd_idx].op {
                // Pure data movement of the upstream gradient: reads no
                // forward data at all (operand slots may already be dead).
                PlanOp::Add | PlanOp::Sub => (Vec::new(), &[0, 1]),
                // d/da and d/db both need operand data.
                PlanOp::Mul | PlanOp::Div | PlanOp::SmoothL1 => {
                    (vec![inputs[0], inputs[1]], &[0, 1])
                }
                PlanOp::AddScalar(_) | PlanOp::MulScalar(_) => (Vec::new(), &[0]),
                // d rsqrt reads both the input and its own output.
                PlanOp::Rsqrt => (vec![inputs[0], out_vid], &[0]),
                PlanOp::Square | PlanOp::Relu | PlanOp::Gelu => (vec![inputs[0]], &[0]),
                PlanOp::Sum | PlanOp::SumAxis { .. } | PlanOp::Reshape | PlanOp::Permute(_) => {
                    (Vec::new(), &[0])
                }
                PlanOp::Matmul2d => (vec![inputs[0], inputs[1]], &[0, 1]),
                PlanOp::FusedAttention { .. } => {
                    (vec![inputs[0], inputs[1], inputs[2]], &[0, 1, 2])
                }
                PlanOp::FusedAttentionMap { .. } => (vec![inputs[0], inputs[1]], &[0, 1]),
                PlanOp::ColMean | PlanOp::ColStd { .. } => {
                    return Err(PlanError::new(format!(
                        "op `{}` has no adjoint lowering",
                        steps[fwd_idx].sym_op
                    )))
                }
            };
            let bwd_idx = bwd_steps.len();
            let mut writes: Vec<(ValueId, GradMode)> = Vec::new();
            for &side in sides {
                let pvid = inputs[side];
                if values[pvid].requires_grad {
                    writes.push(grad_value(&mut values, &mut grad_of, pvid, bwd_idx));
                }
            }
            bwd_steps.push(BwdStep {
                fwd_step: Some(fwd_idx),
                grad_in: Some(grad_in),
                reads,
                writes,
            });
        }

        // Fused optimizer updates: one per trainable, non-frozen
        // parameter that received a gradient, in value order (= the
        // executor's parameter binding order).
        let mut update_steps: Vec<UpdateStep> = Vec::new();
        for (vid, v) in values.iter().enumerate() {
            if v.source == ValueSource::Param && v.requires_grad && !v.frozen {
                if let Some(&g) = grad_of.get(&vid) {
                    update_steps.push(UpdateStep {
                        param: vid,
                        grad: g,
                    });
                }
            }
        }

        // Pinned component values (loss-term scalars the caller reads
        // back after a step).
        let mut pinned: Vec<ValueId> = Vec::new();
        for &sid in &train.pinned {
            let vid = *val_of.get(&sid).ok_or_else(|| {
                PlanError::new(format!("pinned symbolic node {sid} was not lowered"))
            })?;
            pinned.push(vid);
        }

        // Gradient-clipping schedule: the gradients of the named
        // parameters, in the caller's dynamic traversal order (every
        // update-step gradient must be covered or clipping would diverge
        // from `clip_grad_norm` over the full parameter list).
        let mut clip_grads: Vec<ValueId> = Vec::new();
        if train.grad_clip.is_some() {
            if train.clip_param_order.is_empty() {
                clip_grads = update_steps.iter().map(|u| u.grad).collect();
            } else {
                for label in &train.clip_param_order {
                    let vid = values
                        .iter()
                        .position(|v| v.source == ValueSource::Param && v.label == *label)
                        .ok_or_else(|| {
                            PlanError::new(format!("clip order names unknown parameter `{label}`"))
                        })?;
                    if let Some(&g) = grad_of.get(&vid) {
                        clip_grads.push(g);
                    }
                }
            }
            for u in &update_steps {
                if !clip_grads.contains(&u.grad) {
                    return Err(PlanError::new(format!(
                        "clip order does not cover trained parameter `{}`",
                        values[u.param].label
                    )));
                }
            }
        }

        // The clip pass reads every clipped gradient after the full
        // reverse schedule (like the dynamic engine), so those gradients
        // must survive to the end of the timeline alongside explicit pins.
        let mut pin_live: Vec<ValueId> = pinned.clone();
        pin_live.extend(clip_grads.iter().copied());

        let (slots, arena_len) = assign_slots(
            &mut values,
            &steps,
            &bwd_steps,
            &update_steps,
            root_val,
            &pin_live,
        );
        Ok(Plan {
            spec: spec.clone(),
            values,
            steps,
            slots,
            arena_len,
            input: lowering.input,
            root: root_val,
            bwd_steps,
            update_steps,
            target: Some(target_val),
            optimizer: Some(train.optimizer),
            grad_clip: train.grad_clip,
            clip_grads,
            pinned,
            batch: 0,
            lane_stride: 0,
            reduce_steps: Vec::new(),
        })
    }
}

// ---------------------------------------------------------------------------
// Fault injection (training-plan variants of `Plan::inject_fault`)
// ---------------------------------------------------------------------------

fn grad_vid_of(plan: &Plan, parent: ValueId) -> Option<ValueId> {
    plan.values
        .iter()
        .position(|v| v.adjoint_of == Some(parent))
}

fn require_training(plan: &Plan, fault: &str) {
    assert!(
        !plan.bwd_steps.is_empty(),
        "{fault} applies only to training plans"
    );
}

/// Removes the sole gradient-write of one trainable parameter. Step
/// positions are untouched, so only adjoint completeness can notice.
pub(crate) fn inject_drop_adjoint(plan: &mut Plan) {
    require_training(plan, "DropAdjoint");
    for vid in 0..plan.values.len() {
        let v = &plan.values[vid];
        if v.source != ValueSource::Param || !v.requires_grad || v.frozen {
            continue;
        }
        let Some(gvid) = grad_vid_of(plan, vid) else {
            continue;
        };
        let events: usize = plan
            .bwd_steps
            .iter()
            .map(|s| s.writes.iter().filter(|&&(g, _)| g == gvid).count())
            .sum();
        if events != 1 {
            continue;
        }
        for step in &mut plan.bwd_steps {
            step.writes.retain(|&(g, _)| g != gvid);
        }
        return;
    }
    panic!("no trainable parameter with a single gradient write to drop");
}

/// Re-homes the latest-read saved activation into a fresh slot shared
/// with the root gradient (their combined-timeline intervals overlap by
/// construction), then repacks offsets exactly like the compiler would.
pub(crate) fn inject_clobber_saved_activation(plan: &mut Plan) {
    require_training(plan, "ClobberSavedActivation");
    let mut victim: Option<(usize, ValueId)> = None;
    for (j, bstep) in plan.bwd_steps.iter().enumerate() {
        for &r in &bstep.reads {
            if matches!(plan.values[r].source, ValueSource::Step(_)) && r != plan.root {
                victim = Some((j, r));
            }
        }
    }
    let (_, v) = victim.expect("no backward-read saved activation to clobber");
    let g = plan.bwd_steps[0].writes[0].0; // root gradient, live from the seed on
    let fresh = plan.slots.len();
    plan.values[v].slot = Some(fresh);
    plan.values[g].slot = Some(fresh);
    plan.slots.push(PlanSlot { offset: 0, size: 0 });
    // Repack every slot from the (corrupted) assignment, exactly like the
    // compiler: extent = max hosted size, arena = concatenation.
    for s in &mut plan.slots {
        s.size = 0;
    }
    for value in &plan.values {
        if let Some(s) = value.slot {
            plan.slots[s].size = plan.slots[s].size.max(value.len());
        }
    }
    let mut offset = 0usize;
    for s in &mut plan.slots {
        s.offset = offset;
        offset += s.size;
    }
    plan.arena_len = offset;
}

/// Swaps a gradient's writing backward step after a backward step that
/// reads it, breaking reverse-topological validity and nothing else
/// (the write/read multiset is unchanged).
pub(crate) fn inject_reorder_backward(plan: &mut Plan) {
    require_training(plan, "ReorderBackward");
    for i in 0..plan.bwd_steps.len() {
        for j in (i + 1)..plan.bwd_steps.len() {
            let reads_i_write = plan.bwd_steps[i]
                .writes
                .iter()
                .any(|&(g, _)| plan.bwd_steps[j].grad_in == Some(g));
            if reads_i_write {
                plan.bwd_steps.swap(i, j);
                return;
            }
        }
    }
    panic!("no writer/reader backward pair to reorder");
}

/// Freezes the last-updated parameter and strips its gradient writes and
/// update step. The plan stays self-consistent (every static pass is
/// clean), but it provably skips a parameter the dynamic engine trains —
/// only the plan-vs-dynamic diff can notice.
pub(crate) fn inject_update_frozen_param(plan: &mut Plan) {
    require_training(plan, "UpdateFrozenParam");
    let upd = plan
        .update_steps
        .pop()
        .expect("training plan has no update steps");
    plan.values[upd.param].frozen = true;
    for step in &mut plan.bwd_steps {
        step.writes.retain(|&(g, _)| g != upd.grad);
    }
}

// ---------------------------------------------------------------------------
// Training executor
// ---------------------------------------------------------------------------

/// One gradient-buffer write of a backward exec step.
#[derive(Clone, Copy, Debug)]
struct GradWrite {
    off: usize,
    len: usize,
    mode: GradMode,
    scratch_off: usize,
}

#[derive(Debug)]
enum BwdExecOp {
    /// Root gradient ← 1.
    Seed,
    Binary {
        kind: BinKind,
        dims: Vec<usize>,
        a_str: Vec<usize>,
        b_str: Vec<usize>,
        a_len: usize,
        b_len: usize,
    },
    /// `dx = g` (add-scalar, reshape).
    CopyGrad,
    /// `dx = g * c` (mul-scalar).
    ScaleGrad(f32),
    Rsqrt,
    Square,
    Relu,
    Gelu,
    /// `dx[i] = g[0]` (full-sum broadcast).
    SumFill,
    SumAxis {
        outer: usize,
        mid: usize,
        inner: usize,
    },
    Matmul {
        m: usize,
        k: usize,
        n: usize,
    },
    /// Strided gather realizing `grad.permute(inv)`.
    PermuteInv {
        strides: Vec<usize>,
        dims: Vec<usize>,
    },
    Attention {
        heads: usize,
        tq: usize,
        tk: usize,
        dh: usize,
        scale: f32,
    },
    /// Backward of the head-averaged attention map: the upstream gradient
    /// arrives on the `[T_q, T_k]` map (`g_map`), the context output was
    /// discarded (`g_out = None`), and `v` contributes nothing.
    AttentionMap {
        heads: usize,
        tq: usize,
        tk: usize,
        dh: usize,
        scale: f32,
    },
}

#[derive(Debug)]
struct BwdExec {
    op: BwdExecOp,
    g_off: usize,
    g_len: usize,
    srcs: [Loc; 3],
    writes: [Option<GradWrite>; 3],
}

#[derive(Debug)]
struct UpdExec {
    param_idx: usize,
    grad_off: usize,
    grad_len: usize,
    state_off: usize,
}

#[derive(Debug)]
enum OptExec {
    Sgd {
        lr: f32,
    },
    AdamW {
        lr: f32,
        beta1: f32,
        beta2: f32,
        eps: f32,
        weight_decay: f32,
        m: Vec<f32>,
        v: Vec<f32>,
        step_count: u64,
    },
}

#[inline]
fn resolve<'a>(
    loc: Loc,
    arena: &'a [f32],
    params: &'a [Vec<f32>],
    input: &'a [f32],
    target: &'a [f32],
    aux: &'a [Vec<f32>],
) -> &'a [f32] {
    match loc {
        Loc::Arena { off, len } => &arena[off..off + len],
        Loc::Param { idx } => &params[idx],
        Loc::Input => input,
        Loc::Target => target,
        Loc::Aux(k) => &aux[k],
    }
}

/// Replays a compiled training [`Plan`] — forward, reverse schedule, and
/// fused optimizer — with zero per-step heap allocation. Every buffer
/// (arena, parameter copies, adjoint scratch, attention backward scratch,
/// optimizer moments) is sized at construction; the step loops only index
/// into them and call the serial row-block kernels, so parameter updates
/// are bitwise identical to dynamic training at any `TIMEKD_THREADS`.
#[derive(Debug)]
pub struct TrainExecutor {
    pub(crate) fwd: PlanExecutor,
    bwd: Vec<BwdExec>,
    upd: Vec<UpdExec>,
    opt: OptExec,
    /// Gradient arena regions in the pinned clipping traversal order.
    clip: Vec<(usize, usize)>,
    /// Clipping threshold, when the plan compiled one in.
    clip_max: Option<f32>,
    /// Per-step adjoint scratch: each backward step's operand-gradient
    /// contributions, packed side by side.
    scratch: Vec<f32>,
    /// Transposed-A packing buffer for the matmul dB kernel.
    at_buf: Vec<f32>,
    // Fused-attention backward scratch (see `fused_attention_backward`).
    attn_p: Vec<f32>,
    attn_ds: Vec<f32>,
    attn_kt: Vec<f32>,
    attn_vt: Vec<f32>,
    attn_dkt: Vec<f32>,
    attn_dvt: Vec<f32>,
    attn_stats: Vec<f32>,
    attn_scores: Vec<f32>,
    attn_out_sink: Vec<f32>,
    attn_map_sink: Vec<f32>,
    /// All-zero `v` operand for map-only attention backward recomputes.
    attn_zero_v: Vec<f32>,
    input_len: usize,
    target_len: usize,
}

impl TrainExecutor {
    /// Builds a training executor for `plan`, resolving parameters
    /// through `param_source` exactly like [`PlanExecutor::new`]. Fails
    /// on forward-only plans and on structurally inconsistent schedules.
    pub fn new(
        plan: &Plan,
        param_source: impl FnMut(&str, &[usize]) -> Option<Vec<f32>>,
    ) -> Result<TrainExecutor, PlanError> {
        if !plan.is_training() {
            return Err(PlanError::new(
                "plan has no reverse schedule; use Plan::compile_training",
            ));
        }
        if plan.spec().precision == Precision::Int8 {
            return Err(PlanError::new(
                "int8 plans are inference-only: the backward pass reads f32 weights",
            ));
        }
        let optimizer = *plan
            .optimizer()
            .ok_or_else(|| PlanError::new("training plan has no optimizer"))?;
        let fwd = PlanExecutor::new(plan, param_source)?;

        // Parameter binding order mirrors `PlanExecutor::new`: values in
        // id order, params only.
        let mut param_pos: HashMap<ValueId, usize> = HashMap::new();
        for (vid, v) in plan.values().iter().enumerate() {
            if v.source == ValueSource::Param {
                let next = param_pos.len();
                param_pos.insert(vid, next);
            }
        }
        let loc = |vid: ValueId| -> Result<Loc, PlanError> {
            let value = &plan.values()[vid];
            match value.source {
                ValueSource::Input => Ok(Loc::Input),
                ValueSource::Target => Ok(Loc::Target),
                ValueSource::Aux(k) => Ok(Loc::Aux(k)),
                ValueSource::Param => Ok(Loc::Param {
                    idx: param_pos[&vid],
                }),
                ValueSource::Step(_) | ValueSource::Grad(_) => {
                    let slot = value.slot.ok_or_else(|| {
                        PlanError::new(format!("value `{}` has no slot", value.label))
                    })?;
                    Ok(Loc::Arena {
                        off: plan.slots()[slot].offset,
                        len: value.len(),
                    })
                }
            }
        };
        let arena_loc = |vid: ValueId| -> Result<(usize, usize), PlanError> {
            match loc(vid)? {
                Loc::Arena { off, len } => Ok((off, len)),
                _ => Err(PlanError::new(format!(
                    "gradient `{}` does not live in the arena",
                    plan.values()[vid].label
                ))),
            }
        };

        let mut bwd: Vec<BwdExec> = Vec::new();
        let mut scratch_len = 1usize;
        let mut at_len = 0usize;
        let (mut p_len, mut kt_len, mut stat_len) = (0usize, 0usize, 0usize);
        let (mut out_sink_len, mut map_sink_len, mut score_len) = (0usize, 0usize, 0usize);
        let mut zero_v_len = 0usize;
        for bstep in plan.bwd_steps() {
            let (g_off, g_len) = match bstep.grad_in {
                Some(g) => arena_loc(g)?,
                None => (0, 0),
            };
            let mut srcs = [Loc::Input; 3];
            let (op, side_layout): (BwdExecOp, Vec<(usize, usize)>) = match bstep.fwd_step {
                None => (BwdExecOp::Seed, vec![(0, 1)]),
                Some(fi) => {
                    let fstep = &plan.steps()[fi];
                    let in_len = |i: usize| -> usize { plan.values()[fstep.inputs[i]].len() };
                    let in_dims = |i: usize| -> &[usize] { &plan.values()[fstep.inputs[i]].dims };
                    let out_dims = &plan.values()[fstep.output].dims;
                    for (i, &vid) in fstep.inputs.iter().enumerate() {
                        srcs[i] = loc(vid)?;
                    }
                    match &fstep.op {
                        PlanOp::Add
                        | PlanOp::Sub
                        | PlanOp::Mul
                        | PlanOp::Div
                        | PlanOp::SmoothL1 => {
                            let kind = match fstep.op {
                                PlanOp::Add => BinKind::Add,
                                PlanOp::Sub => BinKind::Sub,
                                PlanOp::Mul => BinKind::Mul,
                                PlanOp::Div => BinKind::Div,
                                _ => BinKind::SmoothL1,
                            };
                            let (al, bl) = (in_len(0), in_len(1));
                            (
                                BwdExecOp::Binary {
                                    kind,
                                    dims: out_dims.clone(),
                                    a_str: eff_strides(in_dims(0), out_dims),
                                    b_str: eff_strides(in_dims(1), out_dims),
                                    a_len: al,
                                    b_len: bl,
                                },
                                vec![(0, al), (al, bl)],
                            )
                        }
                        PlanOp::AddScalar(_) | PlanOp::Reshape => {
                            (BwdExecOp::CopyGrad, vec![(0, in_len(0))])
                        }
                        PlanOp::MulScalar(c) => (BwdExecOp::ScaleGrad(*c), vec![(0, in_len(0))]),
                        PlanOp::Rsqrt => {
                            // Reads x and its own forward output y.
                            srcs[1] = loc(fstep.output)?;
                            (BwdExecOp::Rsqrt, vec![(0, in_len(0))])
                        }
                        PlanOp::Square => (BwdExecOp::Square, vec![(0, in_len(0))]),
                        PlanOp::Relu => (BwdExecOp::Relu, vec![(0, in_len(0))]),
                        PlanOp::Gelu => (BwdExecOp::Gelu, vec![(0, in_len(0))]),
                        PlanOp::Sum => (BwdExecOp::SumFill, vec![(0, in_len(0))]),
                        PlanOp::SumAxis { axis } => {
                            let dims = in_dims(0);
                            let outer: usize = dims[..*axis].iter().product();
                            let mid = dims[*axis];
                            let inner: usize = dims[*axis + 1..].iter().product();
                            (
                                BwdExecOp::SumAxis { outer, mid, inner },
                                vec![(0, in_len(0))],
                            )
                        }
                        PlanOp::Matmul2d => {
                            let (m, k) = (in_dims(0)[0], in_dims(0)[1]);
                            let n = in_dims(1)[1];
                            at_len = at_len.max(m * k);
                            (
                                BwdExecOp::Matmul { m, k, n },
                                vec![(0, m * k), (m * k, k * n)],
                            )
                        }
                        PlanOp::Permute(p) => {
                            // Realizes the dynamic `grad.permute(inv)`:
                            // walk the input shape row-major, gathering
                            // from the gradient with inverse-permuted
                            // strides.
                            let mut inv = vec![0usize; p.len()];
                            for (i, &ax) in p.iter().enumerate() {
                                inv[ax] = i;
                            }
                            let g_dims = out_dims;
                            let mut g_strides = vec![0usize; g_dims.len()];
                            let mut acc = 1usize;
                            for i in (0..g_dims.len()).rev() {
                                g_strides[i] = acc;
                                acc *= g_dims[i];
                            }
                            let strides: Vec<usize> = inv.iter().map(|&i| g_strides[i]).collect();
                            (
                                BwdExecOp::PermuteInv {
                                    strides,
                                    dims: in_dims(0).to_vec(),
                                },
                                vec![(0, in_len(0))],
                            )
                        }
                        PlanOp::FusedAttention { heads, tq, tk, dh } => {
                            let (hq, hk) = (heads * tq * dh, heads * tk * dh);
                            p_len = p_len.max(heads * tq * tk);
                            kt_len = kt_len.max(tk * dh);
                            stat_len = stat_len.max(tq * heads);
                            out_sink_len = out_sink_len.max(tq * heads * dh);
                            map_sink_len = map_sink_len.max(tq * tk);
                            score_len = score_len.max(*tk);
                            (
                                BwdExecOp::Attention {
                                    heads: *heads,
                                    tq: *tq,
                                    tk: *tk,
                                    dh: *dh,
                                    scale: 1.0 / (*dh as f32).sqrt(),
                                },
                                vec![(0, hq), (hq, hk), (hq + hk, hk)],
                            )
                        }
                        PlanOp::FusedAttentionMap { heads, tq, tk, dh } => {
                            let (hq, hk) = (heads * tq * dh, heads * tk * dh);
                            p_len = p_len.max(heads * tq * tk);
                            kt_len = kt_len.max(tk * dh);
                            stat_len = stat_len.max(tq * heads);
                            out_sink_len = out_sink_len.max(tq * heads * dh);
                            map_sink_len = map_sink_len.max(tq * tk);
                            score_len = score_len.max(*tk);
                            zero_v_len = zero_v_len.max(heads * tk * dh);
                            (
                                BwdExecOp::AttentionMap {
                                    heads: *heads,
                                    tq: *tq,
                                    tk: *tk,
                                    dh: *dh,
                                    scale: 1.0 / (*dh as f32).sqrt(),
                                },
                                vec![(0, hq), (hq, hk)],
                            )
                        }
                        PlanOp::ColMean | PlanOp::ColStd { .. } => {
                            return Err(PlanError::new(format!(
                                "op `{}` has no adjoint lowering",
                                fstep.sym_op
                            )))
                        }
                    }
                }
            };
            scratch_len = scratch_len.max(side_layout.last().map_or(0, |&(o, l)| o + l));
            // Map declared writes onto operand sides via their adjoint
            // owner; repeated operands fill the first free matching side.
            let mut writes: [Option<GradWrite>; 3] = [None, None, None];
            for &(gvid, mode) in &bstep.writes {
                let owner = plan.values()[gvid].adjoint_of.ok_or_else(|| {
                    PlanError::new(format!(
                        "backward write target `{}` is not an adjoint",
                        plan.values()[gvid].label
                    ))
                })?;
                let side = match bstep.fwd_step {
                    None => 0,
                    Some(fi) => {
                        let fstep = &plan.steps()[fi];
                        fstep
                            .inputs
                            .iter()
                            .enumerate()
                            .position(|(i, &op_vid)| op_vid == owner && writes[i].is_none())
                            .ok_or_else(|| {
                                PlanError::new(format!(
                                    "backward write `{}` matches no operand",
                                    plan.values()[gvid].label
                                ))
                            })?
                    }
                };
                let (off, len) = arena_loc(gvid)?;
                let (scratch_off, side_len) = side_layout[side];
                if len != side_len {
                    return Err(PlanError::new(format!(
                        "backward write `{}` length mismatch",
                        plan.values()[gvid].label
                    )));
                }
                writes[side] = Some(GradWrite {
                    off,
                    len,
                    mode,
                    scratch_off,
                });
            }
            bwd.push(BwdExec {
                op,
                g_off,
                g_len,
                srcs,
                writes,
            });
        }

        let mut upd: Vec<UpdExec> = Vec::new();
        let mut state_total = 0usize;
        for u in plan.update_steps() {
            let param_idx = *param_pos.get(&u.param).ok_or_else(|| {
                PlanError::new(format!(
                    "update target `{}` is not a parameter",
                    plan.values()[u.param].label
                ))
            })?;
            let (grad_off, grad_len) = arena_loc(u.grad)?;
            if grad_len != plan.values()[u.param].len() {
                return Err(PlanError::new(format!(
                    "update gradient for `{}` has the wrong length",
                    plan.values()[u.param].label
                )));
            }
            upd.push(UpdExec {
                param_idx,
                grad_off,
                grad_len,
                state_off: state_total,
            });
            state_total += grad_len;
        }
        let opt = match optimizer {
            PlanOptimizer::Sgd { lr } => OptExec::Sgd { lr },
            PlanOptimizer::AdamW {
                lr,
                beta1,
                beta2,
                eps,
                weight_decay,
            } => OptExec::AdamW {
                lr,
                beta1,
                beta2,
                eps,
                weight_decay,
                m: vec![0.0; state_total],
                v: vec![0.0; state_total],
                step_count: 0,
            },
        };

        // Clipping schedule: arena regions in the plan's pinned traversal
        // order.
        let mut clip: Vec<(usize, usize)> = Vec::with_capacity(plan.clip_grads().len());
        for &g in plan.clip_grads() {
            clip.push(arena_loc(g)?);
        }

        let input_len = plan.values()[plan.input()].len();
        let target_len = plan.target().map_or(0, |vid| plan.values()[vid].len());
        Ok(TrainExecutor {
            fwd,
            bwd,
            upd,
            opt,
            clip,
            clip_max: plan.grad_clip(),
            scratch: vec![0.0; scratch_len],
            at_buf: vec![0.0; at_len],
            attn_p: vec![0.0; p_len],
            attn_ds: vec![0.0; p_len],
            attn_kt: vec![0.0; kt_len],
            attn_vt: vec![0.0; kt_len],
            attn_dkt: vec![0.0; kt_len],
            attn_dvt: vec![0.0; kt_len],
            attn_stats: vec![0.0; 2 * stat_len],
            attn_scores: vec![0.0; score_len],
            attn_out_sink: vec![0.0; out_sink_len],
            attn_map_sink: vec![0.0; map_sink_len],
            attn_zero_v: vec![0.0; zero_v_len],
            input_len,
            target_len,
        })
    }

    /// Expected input (lookback window) length.
    pub fn input_len(&self) -> usize {
        self.input_len
    }

    /// Expected target (horizon window) length.
    pub fn target_len(&self) -> usize {
        self.target_len
    }

    /// Number of bound parameters (plan value order).
    pub fn num_params(&self) -> usize {
        self.fwd.params.len()
    }

    /// Current data of parameter `idx` in binding order.
    pub fn param_data(&self, idx: usize) -> &[f32] {
        &self.fwd.params[idx]
    }

    /// Current step count of the fused optimizer (0 for SGD).
    pub fn step_count(&self) -> u64 {
        match &self.opt {
            OptExec::Sgd { .. } => 0,
            OptExec::AdamW { step_count, .. } => *step_count,
        }
    }

    /// Overrides the AdamW step counter — shared-counter semantics when
    /// the surrounding trainer also steps other parameter groups through
    /// the same dynamic optimizer. No-op for SGD.
    pub fn set_step_count(&mut self, n: u64) {
        if let OptExec::AdamW { step_count, .. } = &mut self.opt {
            *step_count = n;
        }
    }

    /// Overrides the fused optimizer's learning rate (lr schedules).
    pub fn set_lr(&mut self, lr: f32) {
        match &mut self.opt {
            OptExec::Sgd { lr: l } => *l = lr,
            OptExec::AdamW { lr: l, .. } => *l = lr,
        }
    }

    /// Stages the target window for subsequent replays.
    pub fn set_target(&mut self, target: &[f32]) {
        assert_eq!(
            target.len(),
            self.target_len,
            "train target length mismatch"
        );
        self.fwd.target.copy_from_slice(target);
    }

    /// Feeds auxiliary constant `k` for subsequent replays.
    pub fn set_aux(&mut self, k: usize, data: &[f32]) {
        self.fwd.set_aux(k, data);
    }

    /// Expected length of auxiliary feed slot `k`.
    pub fn aux_len(&self, k: usize) -> usize {
        self.fwd.aux_len(k)
    }

    /// Loss scalar left in the arena by the last forward pass.
    pub fn loss(&self) -> f32 {
        self.fwd.arena[self.fwd.root_off]
    }

    /// Reads `len` arena elements at `off` — for pinned component values
    /// whose ranges come from [`Plan::arena_range`].
    pub fn arena_value(&self, off: usize, len: usize) -> &[f32] {
        &self.fwd.arena[off..off + len]
    }

    /// Forward + reverse schedules only — no clipping, no optimizer. The
    /// per-lane replay of the batched executor.
    pub(crate) fn run_forward_backward(&mut self, input: &[f32]) {
        self.fwd.execute_plan_loop(input);
        self.backward_plan_loop(input);
    }

    /// The fused optimizer sweep alone.
    pub(crate) fn run_optimizer(&mut self) {
        self.optimizer_plan_loop();
    }

    /// The gradient-clipping pass alone (no-op unless compiled in).
    pub(crate) fn run_grad_clip(&mut self) {
        self.clip_plan_loop();
    }

    /// Runs one full training step — forward, reverse schedule, gradient
    /// clipping (when compiled in), fused optimizer — and returns the
    /// loss. Performs no heap allocation.
    pub fn run_train_step(&mut self, input: &[f32], target: &[f32]) -> f32 {
        assert_eq!(input.len(), self.input_len, "train input length mismatch");
        assert_eq!(
            target.len(),
            self.target_len,
            "train target length mismatch"
        );
        self.fwd.target.copy_from_slice(target);
        self.fwd.execute_plan_loop(input);
        self.backward_plan_loop(input);
        self.clip_plan_loop();
        self.optimizer_plan_loop();
        self.fwd.arena[self.fwd.root_off]
    }

    /// Applies global gradient-norm clipping over the compiled clip
    /// schedule, bitwise-matching `timekd_nn::clip_grad_norm`: one serial
    /// ascending sum of squares per region (the dynamic per-parameter
    /// `iter().sum()`), folded into the total in traversal order, then a
    /// uniform scale of every region.
    fn clip_plan_loop(&mut self) {
        let TrainExecutor {
            fwd,
            clip,
            clip_max,
            ..
        } = self;
        let Some(max_norm) = *clip_max else { return };
        let arena = &mut fwd.arena;
        let mut total = 0.0f32;
        for &(off, len) in clip.iter() {
            let mut region = 0.0f32;
            for &g in &arena[off..off + len] {
                region += g * g;
            }
            total += region;
        }
        let norm = total.sqrt();
        if norm > max_norm && norm > 0.0 {
            let scale = max_norm / norm;
            for &(off, len) in clip.iter() {
                for g in &mut arena[off..off + len] {
                    *g *= scale;
                }
            }
        }
    }

    /// Replays the reverse schedule. Compute phase: read the arena, write
    /// per-operand contributions into scratch (ascending element order,
    /// exactly like the dynamic closures). Apply phase: land each
    /// contribution on its gradient buffer in declared order.
    fn backward_plan_loop(&mut self, input: &[f32]) {
        let TrainExecutor {
            fwd,
            bwd,
            scratch,
            at_buf,
            attn_p,
            attn_ds,
            attn_kt,
            attn_vt,
            attn_dkt,
            attn_dvt,
            attn_stats,
            attn_scores,
            attn_out_sink,
            attn_map_sink,
            attn_zero_v,
            ..
        } = self;
        let params = &fwd.params;
        let target = &fwd.target;
        let aux = &fwd.aux;
        let simd = fwd.simd;
        let arena = &mut fwd.arena;
        for step in bwd.iter() {
            {
                let arena_r: &[f32] = arena;
                let g = &arena_r[step.g_off..step.g_off + step.g_len];
                let wa = step.writes[0].is_some();
                let wb = step.writes[1].is_some();
                match &step.op {
                    BwdExecOp::Seed => {
                        scratch[0] = 1.0;
                    }
                    BwdExecOp::Binary {
                        kind,
                        dims,
                        a_str,
                        b_str,
                        a_len,
                        b_len,
                    } => {
                        let (sa, rest) = scratch.split_at_mut(*a_len);
                        let sb = &mut rest[..*b_len];
                        if wa {
                            sa.fill(0.0);
                        }
                        if wb {
                            sb.fill(0.0);
                        }
                        let rank = dims.len();
                        let mut idx = [0usize; MAX_PLAN_RANK];
                        let (mut a_off, mut b_off) = (0usize, 0usize);
                        let values_read =
                            matches!(kind, BinKind::Mul | BinKind::Div | BinKind::SmoothL1);
                        let (a, b) = if values_read {
                            (
                                resolve(step.srcs[0], arena_r, params, input, target, aux),
                                resolve(step.srcs[1], arena_r, params, input, target, aux),
                            )
                        } else {
                            // Add/Sub never touch operand data (the
                            // operand slots may already be recycled).
                            (g, g)
                        };
                        for &gi in g {
                            let (da, db) = match kind {
                                BinKind::Add => (gi, gi),
                                BinKind::Sub => (gi, -gi),
                                BinKind::Mul => (gi * b[b_off], gi * a[a_off]),
                                BinKind::Div => {
                                    let bv = b[b_off];
                                    (gi / bv, -gi * a[a_off] / (bv * bv))
                                }
                                BinKind::SmoothL1 => {
                                    let d = (a[a_off] - b[b_off]).clamp(-1.0, 1.0);
                                    (gi * d, -gi * d)
                                }
                            };
                            if wa {
                                sa[a_off] += da;
                            }
                            if wb {
                                sb[b_off] += db;
                            }
                            let mut ax = rank;
                            loop {
                                if ax == 0 {
                                    break;
                                }
                                ax -= 1;
                                idx[ax] += 1;
                                a_off += a_str[ax];
                                b_off += b_str[ax];
                                if idx[ax] < dims[ax] {
                                    break;
                                }
                                a_off -= a_str[ax] * dims[ax];
                                b_off -= b_str[ax] * dims[ax];
                                idx[ax] = 0;
                            }
                        }
                    }
                    BwdExecOp::CopyGrad => {
                        scratch[..g.len()].copy_from_slice(g);
                    }
                    BwdExecOp::ScaleGrad(c) => {
                        for (s, &gi) in scratch.iter_mut().zip(g) {
                            *s = gi * c;
                        }
                    }
                    BwdExecOp::Rsqrt => {
                        let x = resolve(step.srcs[0], arena_r, params, input, target, aux);
                        let y = resolve(step.srcs[1], arena_r, params, input, target, aux);
                        for i in 0..g.len() {
                            scratch[i] = g[i] * (-0.5) * y[i] / x[i];
                        }
                    }
                    BwdExecOp::Square => {
                        let x = resolve(step.srcs[0], arena_r, params, input, target, aux);
                        for i in 0..g.len() {
                            scratch[i] = g[i] * 2.0 * x[i];
                        }
                    }
                    BwdExecOp::Relu => {
                        let x = resolve(step.srcs[0], arena_r, params, input, target, aux);
                        for i in 0..g.len() {
                            scratch[i] = if x[i] > 0.0 { g[i] } else { 0.0 };
                        }
                    }
                    BwdExecOp::Gelu => {
                        // Same constants as the dynamic kernel.
                        const C: f32 = 0.797_884_6; // sqrt(2/π)
                        let x = resolve(step.srcs[0], arena_r, params, input, target, aux);
                        for i in 0..g.len() {
                            let xi = x[i];
                            let x3 = 0.044715 * xi * xi * xi;
                            let inner = C * (xi + x3);
                            let t = inner.tanh();
                            let sech2 = 1.0 - t * t;
                            let d_inner = C * (1.0 + 3.0 * 0.044715 * xi * xi);
                            scratch[i] = g[i] * (0.5 * (1.0 + t) + 0.5 * xi * sech2 * d_inner);
                        }
                    }
                    BwdExecOp::SumFill => {
                        let n = step.writes[0].map_or(0, |w| w.len);
                        scratch[..n].fill(g[0]);
                    }
                    BwdExecOp::SumAxis { outer, mid, inner } => {
                        let n = outer * mid * inner;
                        scratch[..n].fill(0.0);
                        for o in 0..*outer {
                            for m in 0..*mid {
                                let base = (o * mid + m) * inner;
                                let g_base = o * inner;
                                for i in 0..*inner {
                                    scratch[base + i] += g[g_base + i];
                                }
                            }
                        }
                    }
                    BwdExecOp::Matmul { m, k, n } => {
                        let (sa, rest) = scratch.split_at_mut(m * k);
                        let sb = &mut rest[..k * n];
                        if wa {
                            // dA = g · Bᵀ, the dynamic `mm_nt_accumulate`
                            // serial path.
                            let b = resolve(step.srcs[1], arena_r, params, input, target, aux);
                            sa.fill(0.0);
                            mm_nt_row_block(g, b, sa, 0, *m, *n, *k, simd);
                        }
                        if wb {
                            // dB = Aᵀ · g via the same packed-transpose +
                            // row-block kernel as `mm_tn_accumulate`.
                            let a = resolve(step.srcs[0], arena_r, params, input, target, aux);
                            let at = &mut at_buf[..m * k];
                            pack_transpose_into(a, at, *m, *k);
                            sb.fill(0.0);
                            mm_row_block(at, g, sb, 0, *k, *m, *n, simd);
                        }
                    }
                    BwdExecOp::PermuteInv { strides, dims } => {
                        let rank = dims.len();
                        let mut idx = [0usize; MAX_PLAN_RANK];
                        let mut src_off = 0usize;
                        let total: usize = dims.iter().product();
                        for s in scratch[..total].iter_mut() {
                            *s = g[src_off];
                            let mut ax = rank;
                            loop {
                                if ax == 0 {
                                    break;
                                }
                                ax -= 1;
                                idx[ax] += 1;
                                src_off += strides[ax];
                                if idx[ax] < dims[ax] {
                                    break;
                                }
                                src_off -= strides[ax] * dims[ax];
                                idx[ax] = 0;
                            }
                        }
                    }
                    BwdExecOp::Attention {
                        heads,
                        tq,
                        tk,
                        dh,
                        scale,
                    } => {
                        let q = resolve(step.srcs[0], arena_r, params, input, target, aux);
                        let k = resolve(step.srcs[1], arena_r, params, input, target, aux);
                        let v = resolve(step.srcs[2], arena_r, params, input, target, aux);
                        let (hq, hk) = (heads * tq * dh, heads * tk * dh);
                        let (dq, rest) = scratch.split_at_mut(hq);
                        let (dk, rest2) = rest.split_at_mut(hk);
                        let dv = &mut rest2[..hk];
                        dq.fill(0.0);
                        dk.fill(0.0);
                        dv.fill(0.0);
                        // Recompute the softmax stats with the forward
                        // row kernel — deterministic, hence bitwise equal
                        // to the stats the dynamic engine saved.
                        let half = attn_stats.len() / 2;
                        let (m_sink, l_sink) = attn_stats.split_at_mut(half);
                        attn_map_sink[..tq * tk].fill(0.0);
                        attn_fwd_row_block(
                            q,
                            k,
                            v,
                            None,
                            &mut attn_out_sink[..tq * heads * dh],
                            &mut attn_map_sink[..tq * tk],
                            &mut m_sink[..tq * heads],
                            &mut l_sink[..tq * heads],
                            &mut attn_kt[..dh * tk],
                            &mut attn_vt[..dh * tk],
                            &mut attn_scores[..*tk],
                            0,
                            *tq,
                            *heads,
                            *tq,
                            *tk,
                            *dh,
                            *scale,
                            simd,
                        );
                        // Pass A: dQ plus the saved P/dS row maps, one
                        // full-range block per head (bitwise equal to any
                        // partition of the dynamic pool dispatch).
                        for h in 0..*heads {
                            attn_bwd_dq_block(
                                q,
                                k,
                                v,
                                None,
                                Some(g),
                                None,
                                &m_sink[..tq * heads],
                                &l_sink[..tq * heads],
                                &mut dq[h * tq * dh..(h + 1) * tq * dh],
                                &mut attn_p[h * tq * tk..(h + 1) * tq * tk],
                                &mut attn_ds[h * tq * tk..(h + 1) * tq * tk],
                                &mut attn_kt[..tk * dh],
                                &mut attn_vt[..tk * dh],
                                h,
                                0,
                                *tq,
                                *heads,
                                *tq,
                                *tk,
                                *dh,
                                *scale,
                                simd,
                            );
                        }
                        // Pass B: dK/dV from the saved row maps.
                        for h in 0..*heads {
                            attn_bwd_dkv_block(
                                q,
                                Some(g),
                                &attn_p[..heads * tq * tk],
                                &attn_ds[..heads * tq * tk],
                                &mut dk[h * tk * dh..(h + 1) * tk * dh],
                                &mut dv[h * tk * dh..(h + 1) * tk * dh],
                                &mut attn_dkt[..tk * dh],
                                &mut attn_dvt[..tk * dh],
                                h,
                                0,
                                *tk,
                                *heads,
                                *tq,
                                *tk,
                                *dh,
                                simd,
                            );
                        }
                    }
                    BwdExecOp::AttentionMap {
                        heads,
                        tq,
                        tk,
                        dh,
                        scale,
                    } => {
                        // The upstream gradient lands on the head-averaged
                        // map; the context output was discarded, so
                        // `g_out = None` and `v`/`dv` drop out — exactly
                        // the dynamic map-node closure.
                        let q = resolve(step.srcs[0], arena_r, params, input, target, aux);
                        let k = resolve(step.srcs[1], arena_r, params, input, target, aux);
                        let (hq, hk) = (heads * tq * dh, heads * tk * dh);
                        let (dq, rest) = scratch.split_at_mut(hq);
                        let dk = &mut rest[..hk];
                        dq.fill(0.0);
                        dk.fill(0.0);
                        // Recompute the softmax stats deterministically —
                        // the map kernel packs `v` unconditionally, so it
                        // gets the pre-zeroed sink the map never reads.
                        let half = attn_stats.len() / 2;
                        let (m_sink, l_sink) = attn_stats.split_at_mut(half);
                        attn_map_sink[..tq * tk].fill(0.0);
                        attn_fwd_row_block(
                            q,
                            k,
                            &attn_zero_v[..heads * tk * dh],
                            None,
                            &mut attn_out_sink[..tq * heads * dh],
                            &mut attn_map_sink[..tq * tk],
                            &mut m_sink[..tq * heads],
                            &mut l_sink[..tq * heads],
                            &mut attn_kt[..dh * tk],
                            &mut attn_vt[..dh * tk],
                            &mut attn_scores[..*tk],
                            0,
                            *tq,
                            *heads,
                            *tq,
                            *tk,
                            *dh,
                            *scale,
                            simd,
                        );
                        for h in 0..*heads {
                            attn_bwd_dq_block(
                                q,
                                k,
                                &[],
                                None,
                                None,
                                Some(g),
                                &m_sink[..tq * heads],
                                &l_sink[..tq * heads],
                                &mut dq[h * tq * dh..(h + 1) * tq * dh],
                                &mut attn_p[h * tq * tk..(h + 1) * tq * tk],
                                &mut attn_ds[h * tq * tk..(h + 1) * tq * tk],
                                &mut attn_kt[..tk * dh],
                                &mut attn_vt[..tk * dh],
                                h,
                                0,
                                *tq,
                                *heads,
                                *tq,
                                *tk,
                                *dh,
                                *scale,
                                simd,
                            );
                        }
                        for h in 0..*heads {
                            attn_bwd_dkv_block(
                                q,
                                None,
                                &attn_p[..heads * tq * tk],
                                &attn_ds[..heads * tq * tk],
                                &mut dk[h * tk * dh..(h + 1) * tk * dh],
                                &mut [],
                                &mut attn_dkt[..tk * dh],
                                &mut attn_dvt[..tk * dh],
                                h,
                                0,
                                *tk,
                                *heads,
                                *tq,
                                *tk,
                                *dh,
                                simd,
                            );
                        }
                    }
                }
            }
            // Apply phase: land contributions in declared (dynamic
            // accumulation) order.
            for w in step.writes.iter().flatten() {
                let src = &scratch[w.scratch_off..w.scratch_off + w.len];
                let dst = &mut arena[w.off..w.off + w.len];
                match w.mode {
                    GradMode::Init => dst.copy_from_slice(src),
                    GradMode::Accum => {
                        for (d, s) in dst.iter_mut().zip(src) {
                            *d += *s;
                        }
                    }
                }
            }
        }
    }

    /// Applies the fused optimizer updates in place, bitwise-matching the
    /// dynamic optimizers (`timekd_nn::AdamW` and plain SGD).
    fn optimizer_plan_loop(&mut self) {
        let TrainExecutor { fwd, upd, opt, .. } = self;
        let arena = &fwd.arena;
        let params = &mut fwd.params;
        match opt {
            OptExec::Sgd { lr } => {
                for u in upd.iter() {
                    let g = &arena[u.grad_off..u.grad_off + u.grad_len];
                    let p = &mut params[u.param_idx];
                    for (pi, &gi) in p.iter_mut().zip(g) {
                        *pi -= *lr * gi;
                    }
                }
            }
            OptExec::AdamW {
                lr,
                beta1,
                beta2,
                eps,
                weight_decay,
                m,
                v,
                step_count,
            } => {
                *step_count += 1;
                let t = *step_count as f32;
                let bias1 = 1.0 - beta1.powf(t);
                let bias2 = 1.0 - beta2.powf(t);
                for u in upd.iter() {
                    let grad = &arena[u.grad_off..u.grad_off + u.grad_len];
                    let p = &mut params[u.param_idx];
                    let ms = &mut m[u.state_off..u.state_off + u.grad_len];
                    let vs = &mut v[u.state_off..u.state_off + u.grad_len];
                    for i in 0..grad.len() {
                        let gi = grad[i];
                        ms[i] = *beta1 * ms[i] + (1.0 - *beta1) * gi;
                        vs[i] = *beta2 * vs[i] + (1.0 - *beta2) * gi * gi;
                        let m_hat = ms[i] / bias1;
                        let v_hat = vs[i] / bias2;
                        p[i] -= *lr * (m_hat / (v_hat.sqrt() + *eps) + *weight_decay * p[i]);
                    }
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::symbolic::{SymCtx, SymDim};
    use crate::{seeded_rng, Tensor};

    fn d(name: &str, size: usize) -> SymDim {
        SymDim::new(name, size)
    }

    fn spec() -> PlanSpec {
        PlanSpec {
            input_label: "x".to_string(),
            col_mean_leaves: Vec::new(),
            col_std_leaves: Vec::new(),
            aux_labels: Vec::new(),
            precision: Precision::F32,
        }
    }

    /// Symbolic mirror of the dynamic graph in the tests below:
    /// loss = mean(smooth_l1(relu(x·w + bias), y)).
    fn mlp_loss(ctx: &SymCtx) -> SymbolicTensor {
        let x = ctx.constant("x", vec![d("t", 4), d("in", 3)]);
        let y = ctx.constant("y", vec![d("t", 4), d("out", 2)]);
        let w = ctx.param("w", vec![d("in", 3), d("out", 2)]);
        let b = ctx.param("bias", vec![d("out", 2)]);
        let h = x.matmul(&w).unwrap().add(&b).unwrap().relu();
        h.smooth_l1(&y).unwrap().mean()
    }

    fn param_bank() -> (Vec<f32>, Vec<f32>) {
        let mut rng = seeded_rng(0x5EED);
        let w = Tensor::randn([3, 2], 1.0, &mut rng).to_vec();
        let b = Tensor::randn([2], 1.0, &mut rng).to_vec();
        (w, b)
    }

    fn dynamic_train(
        w0: &[f32],
        b0: &[f32],
        xs: &[Vec<f32>],
        ys: &[Vec<f32>],
        sgd_lr: Option<f32>,
    ) -> (Vec<f32>, Vec<f32>, f32) {
        let w = Tensor::param(w0.to_vec(), [3, 2]);
        let b = Tensor::param(b0.to_vec(), [2]);
        let mut opt = dyn_adamw();
        let mut last = 0.0;
        for (xv, yv) in xs.iter().zip(ys) {
            let x = Tensor::from_vec(xv.clone(), [4, 3]);
            let y = Tensor::from_vec(yv.clone(), [4, 2]);
            w.zero_grad();
            b.zero_grad();
            let h = x.matmul(&w).add(&b).relu();
            let loss = h.smooth_l1(&y).mean();
            last = loss.item();
            loss.backward();
            match sgd_lr {
                Some(lr) => {
                    for p in [&w, &b] {
                        if let Some(g) = p.grad() {
                            p.update_data(|data| {
                                for (pi, gi) in data.iter_mut().zip(&g) {
                                    *pi -= lr * gi;
                                }
                            });
                        }
                    }
                }
                None => opt.step(&[w.clone(), b.clone()]),
            }
        }
        (w.to_vec(), b.to_vec(), last)
    }

    /// Mirror of `timekd_nn::AdamW` (the nn crate is downstream of this
    /// one, so the dynamic reference is restated here verbatim).
    struct DynAdamW {
        lr: f32,
        step_count: u64,
        state: std::collections::HashMap<u64, (Vec<f32>, Vec<f32>)>,
    }

    fn dyn_adamw() -> DynAdamW {
        DynAdamW {
            lr: 0.05,
            step_count: 0,
            state: std::collections::HashMap::new(),
        }
    }

    impl DynAdamW {
        fn step(&mut self, params: &[Tensor]) {
            let (beta1, beta2, eps, weight_decay) = (0.9f32, 0.999f32, 1e-8f32, 0.01f32);
            self.step_count += 1;
            let t = self.step_count as f32;
            let bias1 = 1.0 - beta1.powf(t);
            let bias2 = 1.0 - beta2.powf(t);
            for p in params {
                let Some(grad) = p.grad() else { continue };
                let n = p.num_elements();
                let (m, v) = self
                    .state
                    .entry(p.id())
                    .or_insert_with(|| (vec![0.0; n], vec![0.0; n]));
                let lr = self.lr;
                p.update_data(|data| {
                    for i in 0..n {
                        let g = grad[i];
                        m[i] = beta1 * m[i] + (1.0 - beta1) * g;
                        v[i] = beta2 * v[i] + (1.0 - beta2) * g * g;
                        let m_hat = m[i] / bias1;
                        let v_hat = v[i] / bias2;
                        data[i] -= lr * (m_hat / (v_hat.sqrt() + eps) + weight_decay * data[i]);
                    }
                });
            }
        }
    }

    fn planned_train(
        optimizer: PlanOptimizer,
        w0: &[f32],
        b0: &[f32],
        xs: &[Vec<f32>],
        ys: &[Vec<f32>],
    ) -> (Vec<f32>, Vec<f32>, f32) {
        let ctx = SymCtx::new();
        let loss = mlp_loss(&ctx);
        let plan = Plan::compile_training(&loss, &spec(), &TrainSpec::new("y", optimizer))
            .expect("training plan compiles");
        let mut exec = TrainExecutor::new(&plan, |label, _| match label {
            "w" => Some(w0.to_vec()),
            "bias" => Some(b0.to_vec()),
            _ => None,
        })
        .expect("executor binds");
        let mut last = 0.0;
        for (xv, yv) in xs.iter().zip(ys) {
            last = exec.run_train_step(xv, yv);
        }
        // Binding order is plan value order; map back through labels.
        let labels: Vec<String> = plan
            .values()
            .iter()
            .filter(|v| v.source == ValueSource::Param)
            .map(|v| v.label.clone())
            .collect();
        let wi = labels.iter().position(|l| l == "w").unwrap();
        let bi = labels.iter().position(|l| l == "bias").unwrap();
        (
            exec.param_data(wi).to_vec(),
            exec.param_data(bi).to_vec(),
            last,
        )
    }

    fn windows(n: usize) -> (Vec<Vec<f32>>, Vec<Vec<f32>>) {
        let mut rng = seeded_rng(0xBEEF);
        let mut xs = Vec::new();
        let mut ys = Vec::new();
        for _ in 0..n {
            xs.push(Tensor::randn([12], 1.0, &mut rng).to_vec());
            ys.push(Tensor::randn([8], 1.0, &mut rng).to_vec());
        }
        (xs, ys)
    }

    #[test]
    fn planned_sgd_training_is_bitwise_dynamic() {
        let (w0, b0) = param_bank();
        let (xs, ys) = windows(5);
        let (dw, db, dloss) = dynamic_train(&w0, &b0, &xs, &ys, Some(0.1));
        let (pw, pb, ploss) = planned_train(PlanOptimizer::Sgd { lr: 0.1 }, &w0, &b0, &xs, &ys);
        assert_eq!(dw, pw, "weights diverge under SGD");
        assert_eq!(db, pb, "bias diverges under SGD");
        assert_eq!(dloss.to_bits(), ploss.to_bits(), "loss diverges");
    }

    #[test]
    fn planned_adamw_training_is_bitwise_dynamic() {
        let (w0, b0) = param_bank();
        let (xs, ys) = windows(7);
        let (dw, db, _) = dynamic_train(&w0, &b0, &xs, &ys, None);
        let (pw, pb, _) = planned_train(
            PlanOptimizer::AdamW {
                lr: 0.05,
                beta1: 0.9,
                beta2: 0.999,
                eps: 1e-8,
                weight_decay: 0.01,
            },
            &w0,
            &b0,
            &xs,
            &ys,
        );
        assert_eq!(dw, pw, "weights diverge under AdamW");
        assert_eq!(db, pb, "bias diverges under AdamW");
    }

    #[test]
    fn repeated_operand_accumulates_like_dynamic() {
        // loss = sum(smooth_l1(p·p + x, y)): both adjoint sides of `p·p`
        // land on the same buffer (Init then Accum), exactly like the
        // dynamic double `accumulate_grad`.
        let ctx = SymCtx::new();
        let x = ctx.constant("x", vec![d("n", 3)]);
        let y = ctx.constant("y", vec![d("n", 3)]);
        let p = ctx.param("p", vec![d("n", 3)]);
        let loss = p
            .mul(&p)
            .unwrap()
            .add(&x)
            .unwrap()
            .smooth_l1(&y)
            .unwrap()
            .sum();
        let plan = Plan::compile_training(
            &loss,
            &spec(),
            &TrainSpec::new("y", PlanOptimizer::Sgd { lr: 0.2 }),
        )
        .unwrap();
        let mut exec = TrainExecutor::new(&plan, |label, _| {
            (label == "p").then(|| vec![1.5, -2.0, 0.5])
        })
        .unwrap();
        let xv = [0.1f32, -0.2, 0.3];
        let yv = [0.25f32, 0.5, -0.5];
        let planned_loss = exec.run_train_step(&xv, &yv);

        let p = Tensor::param(vec![1.5, -2.0, 0.5], [3]);
        let x = Tensor::from_vec(xv.to_vec(), [3]);
        let y = Tensor::from_vec(yv.to_vec(), [3]);
        p.zero_grad();
        let loss = p.mul(&p).add(&x).smooth_l1(&y).sum();
        let dloss = loss.item();
        loss.backward();
        let g = p.grad().unwrap();
        p.update_data(|data| {
            for (pi, gi) in data.iter_mut().zip(&g) {
                *pi -= 0.2 * gi;
            }
        });
        assert_eq!(planned_loss.to_bits(), dloss.to_bits());
        assert_eq!(exec.param_data(0), &p.to_vec()[..]);
    }

    #[test]
    fn frozen_params_receive_no_updates() {
        let ctx = SymCtx::new();
        let x = ctx.constant("x", vec![d("t", 4), d("in", 3)]);
        let y = ctx.constant("y", vec![d("t", 4), d("out", 2)]);
        let w = ctx.frozen(|| ctx.param("w_frozen", vec![d("in", 3), d("out", 2)]));
        let b = ctx.param("bias", vec![d("out", 2)]);
        let loss = x
            .matmul(&w)
            .unwrap()
            .add(&b)
            .unwrap()
            .smooth_l1(&y)
            .unwrap()
            .mean();
        let plan = Plan::compile_training(
            &loss,
            &spec(),
            &TrainSpec::new("y", PlanOptimizer::Sgd { lr: 0.1 }),
        )
        .unwrap();
        // The frozen param still receives a gradient buffer (the dynamic
        // engine also accumulates into it) but no update step.
        assert_eq!(plan.update_steps().len(), 1);
        let target = plan.update_steps()[0].param;
        assert_eq!(plan.values()[target].label, "bias");

        let w0 = vec![0.3f32; 6];
        let mut exec = TrainExecutor::new(&plan, |label, _| match label {
            "w_frozen" => Some(w0.clone()),
            "bias" => Some(vec![0.1, -0.1]),
            _ => None,
        })
        .unwrap();
        let (xs, ys) = windows(3);
        for (xv, yv) in xs.iter().zip(&ys) {
            exec.run_train_step(xv, yv);
        }
        assert_eq!(exec.param_data(0), &w0[..], "frozen param moved");
        assert_ne!(exec.param_data(1), &[0.1, -0.1][..], "bias never moved");
    }

    #[test]
    fn forward_only_plans_reject_training_execution() {
        let ctx = SymCtx::new();
        let x = ctx.constant("x", vec![d("n", 4)]);
        let w = ctx.param("w", vec![d("n", 4)]);
        let out = x.mul(&w).unwrap();
        let plan = Plan::compile(&out, &spec()).unwrap();
        assert!(!plan.is_training());
        let err = TrainExecutor::new(&plan, |_, dims| Some(vec![1.0; dims.iter().product()]))
            .expect_err("forward-only plan must not bind a trainer");
        assert!(err.message.contains("reverse schedule"), "{}", err.message);
    }

    #[test]
    fn training_root_must_be_scalar() {
        let ctx = SymCtx::new();
        let x = ctx.constant("x", vec![d("n", 4)]);
        let y = ctx.constant("y", vec![d("n", 4)]);
        let w = ctx.param("w", vec![d("n", 4)]);
        let loss = x.mul(&w).unwrap().smooth_l1(&y).unwrap();
        let err = Plan::compile_training(
            &loss,
            &spec(),
            &TrainSpec::new("y", PlanOptimizer::Sgd { lr: 0.1 }),
        )
        .expect_err("vector loss must be rejected");
        assert!(err.message.contains("scalar loss"), "{}", err.message);
    }
}
