//! Binary (de)serialization of tensors.
//!
//! Format (little-endian): magic `TKT1`, rank `u32`, dims `u64` each, then
//! raw f32 data. Used by model checkpointing in `timekd-nn`.

use crate::bytes::{Bytes, BytesMut};
use crate::shape::Shape;
use crate::tensor::Tensor;

const MAGIC: &[u8; 4] = b"TKT1";

/// Errors that can occur while decoding a tensor blob.
#[derive(Debug, PartialEq, Eq)]
pub enum DecodeError {
    /// The magic prefix was wrong.
    BadMagic,
    /// The buffer ended before the declared payload.
    Truncated,
    /// A dimension did not fit in usize or the element count overflowed.
    BadShape,
}

impl std::fmt::Display for DecodeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            DecodeError::BadMagic => write!(f, "bad tensor magic"),
            DecodeError::Truncated => write!(f, "truncated tensor blob"),
            DecodeError::BadShape => write!(f, "invalid tensor shape"),
        }
    }
}

impl std::error::Error for DecodeError {}

/// Serialises a tensor (shape + data; graph and grad state are not saved).
pub fn encode_tensor(t: &Tensor) -> Bytes {
    let dims = t.dims();
    let data = t.data();
    let mut buf = BytesMut::with_capacity(4 + 4 + dims.len() * 8 + data.len() * 4);
    buf.put_slice(MAGIC);
    buf.put_u32_le(dims.len() as u32);
    for &d in dims {
        buf.put_u64_le(d as u64);
    }
    for &x in data.iter() {
        buf.put_f32_le(x);
    }
    buf.freeze()
}

/// Decodes one tensor from the front of `buf`, advancing it.
///
/// The result is a constant tensor; wrap with [`Tensor::param`]-style
/// reconstruction in the layer loaders if it should be trainable.
pub fn decode_tensor(buf: &mut Bytes) -> Result<Tensor, DecodeError> {
    if buf.remaining() < 8 {
        return Err(DecodeError::Truncated);
    }
    let mut magic = [0u8; 4];
    buf.copy_to_slice(&mut magic);
    if &magic != MAGIC {
        return Err(DecodeError::BadMagic);
    }
    let rank = buf.get_u32_le() as usize;
    if buf.remaining() < rank * 8 {
        return Err(DecodeError::Truncated);
    }
    let mut dims = Vec::with_capacity(rank);
    let mut elems: usize = 1;
    for _ in 0..rank {
        let d = buf.get_u64_le();
        let d = usize::try_from(d).map_err(|_| DecodeError::BadShape)?;
        elems = elems.checked_mul(d).ok_or(DecodeError::BadShape)?;
        dims.push(d);
    }
    if buf.remaining() < elems * 4 {
        return Err(DecodeError::Truncated);
    }
    let mut data = Vec::with_capacity(elems);
    for _ in 0..elems {
        data.push(buf.get_f32_le());
    }
    Ok(Tensor::from_vec(data, Shape::new(dims)))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trip() {
        let t = Tensor::from_vec(vec![1.5, -2.5, 3.25, 0.0], [2, 2]);
        let mut blob = encode_tensor(&t);
        let back = decode_tensor(&mut blob).unwrap();
        assert_eq!(back.dims(), t.dims());
        assert_eq!(back.to_vec(), t.to_vec());
        assert_eq!(blob.remaining(), 0);
    }

    #[test]
    fn round_trip_scalar() {
        let t = Tensor::scalar(7.0);
        let mut blob = encode_tensor(&t);
        let back = decode_tensor(&mut blob).unwrap();
        assert_eq!(back.dims(), &[] as &[usize]);
        assert_eq!(back.item(), 7.0);
    }

    #[test]
    fn multiple_tensors_stream() {
        let a = Tensor::from_vec(vec![1.0, 2.0], [2]);
        let b = Tensor::from_vec(vec![3.0], [1, 1]);
        let mut buf = BytesMut::new();
        buf.put_slice(&encode_tensor(&a));
        buf.put_slice(&encode_tensor(&b));
        let mut stream = buf.freeze();
        let a2 = decode_tensor(&mut stream).unwrap();
        let b2 = decode_tensor(&mut stream).unwrap();
        assert_eq!(a2.to_vec(), vec![1.0, 2.0]);
        assert_eq!(b2.to_vec(), vec![3.0]);
    }

    #[test]
    fn bad_magic_rejected() {
        let mut blob = Bytes::from_static(b"XXXX\x00\x00\x00\x00");
        assert_eq!(decode_tensor(&mut blob).unwrap_err(), DecodeError::BadMagic);
    }

    #[test]
    fn truncated_rejected() {
        let t = Tensor::from_vec(vec![1.0; 16], [4, 4]);
        let full = encode_tensor(&t);
        let mut cut = full.slice(0..full.len() - 5);
        assert_eq!(decode_tensor(&mut cut).unwrap_err(), DecodeError::Truncated);
    }

    #[test]
    fn preserves_special_values() {
        let t = Tensor::from_vec(vec![f32::MAX, f32::MIN_POSITIVE, -0.0], [3]);
        let mut blob = encode_tensor(&t);
        let back = decode_tensor(&mut blob).unwrap();
        let v = back.to_vec();
        assert_eq!(v[0], f32::MAX);
        assert_eq!(v[1], f32::MIN_POSITIVE);
        assert_eq!(v[2].to_bits(), (-0.0f32).to_bits());
    }
}
