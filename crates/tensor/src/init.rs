//! Random tensor initialisation with explicit, seedable RNGs.
//!
//! Every experiment in the workspace threads a seeded [`SeededRng`] through
//! its model constructors so that runs are reproducible bit-for-bit.

use crate::rng::SeededRng;
use crate::shape::Shape;
use crate::tensor::Tensor;

/// Creates a seeded RNG for deterministic experiments.
pub fn seeded_rng(seed: u64) -> SeededRng {
    SeededRng::seed_from_u64(seed)
}

/// Samples one standard normal value via Box–Muller.
///
/// The in-tree [`SeededRng`] is uniform-only, so we roll the two-line
/// transform.
pub fn sample_standard_normal(rng: &mut SeededRng) -> f32 {
    loop {
        let u1: f32 = rng.gen::<f32>();
        if u1 <= f32::MIN_POSITIVE {
            continue;
        }
        let u2: f32 = rng.gen::<f32>();
        let r = (-2.0 * u1.ln()).sqrt();
        return r * (2.0 * std::f32::consts::PI * u2).cos();
    }
}

impl Tensor {
    /// Constant tensor of i.i.d. `N(0, std²)` samples.
    pub fn randn(shape: impl Into<Shape>, std: f32, rng: &mut SeededRng) -> Tensor {
        let shape = shape.into();
        let n = shape.num_elements();
        let data = (0..n).map(|_| sample_standard_normal(rng) * std).collect();
        Tensor::from_vec(data, shape)
    }

    /// Constant tensor of i.i.d. `U(lo, hi)` samples.
    pub fn rand_uniform(shape: impl Into<Shape>, lo: f32, hi: f32, rng: &mut SeededRng) -> Tensor {
        let shape = shape.into();
        let n = shape.num_elements();
        let data = (0..n).map(|_| rng.gen_range(lo..hi)).collect();
        Tensor::from_vec(data, shape)
    }

    /// Trainable parameter with Xavier/Glorot-uniform init for a weight of
    /// shape `[fan_in, fan_out]` (rank-2) or any shape where the last two
    /// axes are the fans.
    pub fn xavier_uniform(shape: impl Into<Shape>, rng: &mut SeededRng) -> Tensor {
        let shape = shape.into();
        let rank = shape.rank();
        assert!(rank >= 2, "xavier init needs rank >= 2");
        let fan_in = shape.dim(rank - 2);
        let fan_out = shape.dim(rank - 1);
        let limit = (6.0 / (fan_in + fan_out) as f32).sqrt();
        let n = shape.num_elements();
        let data = (0..n).map(|_| rng.gen_range(-limit..limit)).collect();
        Tensor::param(data, shape)
    }

    /// Trainable parameter with Kaiming-normal init (for ReLU fan-in).
    pub fn kaiming_normal(shape: impl Into<Shape>, rng: &mut SeededRng) -> Tensor {
        let shape = shape.into();
        let rank = shape.rank();
        assert!(rank >= 2, "kaiming init needs rank >= 2");
        let fan_in = shape.dim(rank - 2);
        let std = (2.0 / fan_in as f32).sqrt();
        let n = shape.num_elements();
        let data = (0..n).map(|_| sample_standard_normal(rng) * std).collect();
        Tensor::param(data, shape)
    }

    /// Trainable zero-initialised parameter (bias vectors).
    pub fn zeros_param(shape: impl Into<Shape>) -> Tensor {
        let shape = shape.into();
        let n = shape.num_elements();
        Tensor::param(vec![0.0; n], shape)
    }

    /// Trainable one-initialised parameter (layer-norm gains).
    pub fn ones_param(shape: impl Into<Shape>) -> Tensor {
        let shape = shape.into();
        let n = shape.num_elements();
        Tensor::param(vec![1.0; n], shape)
    }

    /// Trainable parameter of i.i.d. `N(0, std²)` samples (embeddings).
    pub fn randn_param(shape: impl Into<Shape>, std: f32, rng: &mut SeededRng) -> Tensor {
        let shape = shape.into();
        let n = shape.num_elements();
        let data = (0..n).map(|_| sample_standard_normal(rng) * std).collect();
        Tensor::param(data, shape)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn seeded_rng_reproducible() {
        let mut a = seeded_rng(42);
        let mut b = seeded_rng(42);
        let ta = Tensor::randn([4, 4], 1.0, &mut a);
        let tb = Tensor::randn([4, 4], 1.0, &mut b);
        assert_eq!(ta.to_vec(), tb.to_vec());
    }

    #[test]
    fn different_seeds_differ() {
        let mut a = seeded_rng(1);
        let mut b = seeded_rng(2);
        let ta = Tensor::randn([8], 1.0, &mut a);
        let tb = Tensor::randn([8], 1.0, &mut b);
        assert_ne!(ta.to_vec(), tb.to_vec());
    }

    #[test]
    fn normal_moments_roughly_standard() {
        let mut rng = seeded_rng(7);
        let n = 20_000;
        let samples: Vec<f32> = (0..n).map(|_| sample_standard_normal(&mut rng)).collect();
        let mean = samples.iter().sum::<f32>() / n as f32;
        let var = samples.iter().map(|x| (x - mean) * (x - mean)).sum::<f32>() / n as f32;
        assert!(mean.abs() < 0.03, "mean {mean}");
        assert!((var - 1.0).abs() < 0.05, "var {var}");
    }

    #[test]
    fn uniform_in_range() {
        let mut rng = seeded_rng(3);
        let t = Tensor::rand_uniform([100], -0.5, 0.5, &mut rng);
        assert!(t.data().iter().all(|&x| (-0.5..0.5).contains(&x)));
    }

    #[test]
    fn xavier_limits() {
        let mut rng = seeded_rng(9);
        let t = Tensor::xavier_uniform([64, 64], &mut rng);
        let limit = (6.0 / 128.0f32).sqrt();
        assert!(t.requires_grad());
        assert!(t.data().iter().all(|&x| x.abs() <= limit));
    }

    #[test]
    fn kaiming_std_scale() {
        let mut rng = seeded_rng(11);
        let t = Tensor::kaiming_normal([512, 4], &mut rng);
        let expected_std = (2.0 / 512.0f32).sqrt();
        let v = t.to_vec();
        let var = v.iter().map(|x| x * x).sum::<f32>() / v.len() as f32;
        assert!((var.sqrt() - expected_std).abs() / expected_std < 0.2);
    }

    #[test]
    fn bias_and_gain_params() {
        let b = Tensor::zeros_param([4]);
        let g = Tensor::ones_param([4]);
        assert!(b.requires_grad() && g.requires_grad());
        assert_eq!(b.to_vec(), vec![0.0; 4]);
        assert_eq!(g.to_vec(), vec![1.0; 4]);
    }
}
