//! Numerical gradient checking.
//!
//! Used by the test suites of every crate in the workspace to validate the
//! analytic backward passes against central finite differences.

use crate::tensor::Tensor;

/// Result of a gradient check for one parameter.
#[derive(Debug, Clone)]
pub struct GradCheckReport {
    /// Largest absolute difference between analytic and numeric gradients.
    pub max_abs_err: f32,
    /// Largest relative difference (normalised by magnitude, floored at 1).
    pub max_rel_err: f32,
}

/// Compares the analytic gradient of `loss_fn` w.r.t. `param` against a
/// central finite-difference estimate.
///
/// `loss_fn` must be a pure function of the parameter values: it is invoked
/// `2 * param.num_elements() + 1` times. Keep parameters small in tests.
pub fn check_gradient(
    param: &Tensor,
    loss_fn: impl Fn() -> Tensor,
    epsilon: f32,
) -> GradCheckReport {
    assert!(param.requires_grad(), "grad check needs a trainable param");
    param.zero_grad();
    let loss = loss_fn();
    loss.backward();
    let analytic = param
        .grad()
        .expect("loss did not reach the parameter — no gradient recorded");
    param.zero_grad();

    let n = param.num_elements();
    let original = param.to_vec();
    let mut max_abs = 0.0f32;
    let mut max_rel = 0.0f32;
    for i in 0..n {
        let mut plus = original.clone();
        plus[i] += epsilon;
        param.copy_from_slice(&plus);
        let lp = crate::tensor::no_grad(&loss_fn).item();

        let mut minus = original.clone();
        minus[i] -= epsilon;
        param.copy_from_slice(&minus);
        let lm = crate::tensor::no_grad(&loss_fn).item();

        let numeric = (lp - lm) / (2.0 * epsilon);
        let abs = (analytic[i] - numeric).abs();
        let rel = abs / analytic[i].abs().max(numeric.abs()).max(1.0);
        max_abs = max_abs.max(abs);
        max_rel = max_rel.max(rel);
    }
    param.copy_from_slice(&original);
    GradCheckReport {
        max_abs_err: max_abs,
        max_rel_err: max_rel,
    }
}

/// Asserts the analytic gradient matches finite differences within `tol`.
pub fn assert_gradients_close(param: &Tensor, loss_fn: impl Fn() -> Tensor, tol: f32) {
    let report = check_gradient(param, loss_fn, 1e-2);
    assert!(
        report.max_rel_err < tol,
        "gradient check failed: max_rel_err={} max_abs_err={} (tol {tol})",
        report.max_rel_err,
        report.max_abs_err
    );
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::init::seeded_rng;

    #[test]
    fn grad_check_matmul_chain() {
        let mut rng = seeded_rng(1);
        let w = Tensor::xavier_uniform([3, 3], &mut rng);
        let x = Tensor::randn([2, 3], 1.0, &mut rng);
        assert_gradients_close(&w, || x.matmul(&w).square().mean(), 1e-2);
    }

    #[test]
    fn grad_check_softmax() {
        let mut rng = seeded_rng(2);
        let w = Tensor::randn_param([2, 4], 0.5, &mut rng);
        let target = Tensor::randn([2, 4], 1.0, &mut rng);
        assert_gradients_close(&w, || w.softmax_last().sub(&target).square().mean(), 1e-2);
    }

    #[test]
    fn grad_check_gelu() {
        let mut rng = seeded_rng(3);
        let w = Tensor::randn_param([6], 1.0, &mut rng);
        assert_gradients_close(&w, || w.gelu().sum(), 1e-2);
    }

    #[test]
    fn grad_check_composite_expression() {
        let mut rng = seeded_rng(4);
        let w = Tensor::randn_param([4], 0.5, &mut rng);
        // tanh(w)² + exp(w)/10 summed
        assert_gradients_close(
            &w,
            || w.tanh().square().add(&w.exp().mul_scalar(0.1)).sum(),
            1e-2,
        );
    }

    #[test]
    fn grad_check_smooth_l1() {
        let rng = seeded_rng(5);
        // Keep away from the |d| = 1 kink where finite differences disagree.
        let w = Tensor::param(vec![0.3, -0.4, 2.0, -3.0], [4]);
        let t = Tensor::zeros([4]);
        let _ = rng;
        assert_gradients_close(&w, || w.smooth_l1(&t).mean(), 1e-2);
    }

    #[test]
    fn grad_check_var_axis() {
        let mut rng = seeded_rng(6);
        let w = Tensor::randn_param([2, 5], 1.0, &mut rng);
        assert_gradients_close(&w, || w.var_axis(1, false).sum(), 1e-2);
    }

    #[test]
    fn restores_parameter_values() {
        let w = Tensor::param(vec![1.0, 2.0], [2]);
        let before = w.to_vec();
        let _ = check_gradient(&w, || w.square().sum(), 1e-3);
        assert_eq!(w.to_vec(), before);
    }
}
