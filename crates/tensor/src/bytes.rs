//! Minimal in-tree byte buffers for checkpoint (de)serialization.
//!
//! A drop-in subset of the `bytes` crate API used by the workspace:
//! [`BytesMut`] for building blobs with little-endian primitive writers and
//! [`Bytes`] as a cursored read view with matching readers. Kept in-tree so
//! the workspace resolves with no external dependencies.

use std::ops::{Deref, RangeBounds};
use std::sync::Arc;

/// An immutable byte blob with an advancing read cursor.
///
/// Cloning is cheap (the storage is shared); `get_*`/[`Bytes::copy_to_slice`]
/// consume from the front of the remaining view.
#[derive(Clone, Debug)]
pub struct Bytes {
    data: Arc<Vec<u8>>,
    start: usize,
    end: usize,
}

impl Bytes {
    /// Wraps a static byte slice.
    pub fn from_static(bytes: &'static [u8]) -> Bytes {
        Bytes::from(bytes.to_vec())
    }

    /// Number of unread bytes.
    pub fn remaining(&self) -> usize {
        self.end - self.start
    }

    /// Number of unread bytes (alias of [`Bytes::remaining`], mirroring the
    /// `bytes` crate where `len` reports the current view).
    pub fn len(&self) -> usize {
        self.remaining()
    }

    /// True if no unread bytes remain.
    pub fn is_empty(&self) -> bool {
        self.remaining() == 0
    }

    /// A sub-view of the remaining bytes; does not advance the cursor.
    pub fn slice(&self, range: impl RangeBounds<usize>) -> Bytes {
        let lo = match range.start_bound() {
            std::ops::Bound::Included(&n) => n,
            std::ops::Bound::Excluded(&n) => n + 1,
            std::ops::Bound::Unbounded => 0,
        };
        let hi = match range.end_bound() {
            std::ops::Bound::Included(&n) => n + 1,
            std::ops::Bound::Excluded(&n) => n,
            std::ops::Bound::Unbounded => self.remaining(),
        };
        assert!(lo <= hi && hi <= self.remaining(), "slice out of bounds");
        Bytes {
            data: Arc::clone(&self.data),
            start: self.start + lo,
            end: self.start + hi,
        }
    }

    /// Advances the cursor by `n` bytes.
    pub fn advance(&mut self, n: usize) {
        assert!(n <= self.remaining(), "advance past end of buffer");
        self.start += n;
    }

    /// Copies `dst.len()` bytes out, advancing the cursor.
    pub fn copy_to_slice(&mut self, dst: &mut [u8]) {
        assert!(dst.len() <= self.remaining(), "copy past end of buffer");
        dst.copy_from_slice(&self.data[self.start..self.start + dst.len()]);
        self.start += dst.len();
    }

    fn take<const N: usize>(&mut self) -> [u8; N] {
        let mut buf = [0u8; N];
        self.copy_to_slice(&mut buf);
        buf
    }

    /// Reads a little-endian `u32`, advancing the cursor.
    pub fn get_u32_le(&mut self) -> u32 {
        u32::from_le_bytes(self.take::<4>())
    }

    /// Reads a little-endian `u64`, advancing the cursor.
    pub fn get_u64_le(&mut self) -> u64 {
        u64::from_le_bytes(self.take::<8>())
    }

    /// Reads a little-endian `f32`, advancing the cursor.
    pub fn get_f32_le(&mut self) -> f32 {
        f32::from_le_bytes(self.take::<4>())
    }
}

impl From<Vec<u8>> for Bytes {
    fn from(data: Vec<u8>) -> Bytes {
        let end = data.len();
        Bytes {
            data: Arc::new(data),
            start: 0,
            end,
        }
    }
}

impl Deref for Bytes {
    type Target = [u8];
    fn deref(&self) -> &[u8] {
        &self.data[self.start..self.end]
    }
}

impl AsRef<[u8]> for Bytes {
    fn as_ref(&self) -> &[u8] {
        self
    }
}

/// A growable byte buffer with little-endian primitive writers.
#[derive(Clone, Debug, Default)]
pub struct BytesMut {
    data: Vec<u8>,
}

impl BytesMut {
    /// An empty buffer.
    pub fn new() -> BytesMut {
        BytesMut::default()
    }

    /// An empty buffer with `capacity` bytes preallocated.
    pub fn with_capacity(capacity: usize) -> BytesMut {
        BytesMut {
            data: Vec::with_capacity(capacity),
        }
    }

    /// Bytes written so far.
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// True if nothing has been written.
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// Appends raw bytes.
    pub fn put_slice(&mut self, bytes: &[u8]) {
        self.data.extend_from_slice(bytes);
    }

    /// Appends raw bytes (alias of [`BytesMut::put_slice`]).
    pub fn extend_from_slice(&mut self, bytes: &[u8]) {
        self.data.extend_from_slice(bytes);
    }

    /// Appends a little-endian `u32`.
    pub fn put_u32_le(&mut self, v: u32) {
        self.data.extend_from_slice(&v.to_le_bytes());
    }

    /// Appends a little-endian `u64`.
    pub fn put_u64_le(&mut self, v: u64) {
        self.data.extend_from_slice(&v.to_le_bytes());
    }

    /// Appends a little-endian `f32`.
    pub fn put_f32_le(&mut self, v: f32) {
        self.data.extend_from_slice(&v.to_le_bytes());
    }

    /// Converts the buffer into an immutable [`Bytes`].
    pub fn freeze(self) -> Bytes {
        Bytes::from(self.data)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn write_then_read_round_trip() {
        let mut buf = BytesMut::with_capacity(16);
        buf.put_slice(b"HDR!");
        buf.put_u32_le(7);
        buf.put_u64_le(u64::MAX - 1);
        buf.put_f32_le(-1.5);
        let mut blob = buf.freeze();
        let mut magic = [0u8; 4];
        blob.copy_to_slice(&mut magic);
        assert_eq!(&magic, b"HDR!");
        assert_eq!(blob.get_u32_le(), 7);
        assert_eq!(blob.get_u64_le(), u64::MAX - 1);
        assert_eq!(blob.get_f32_le(), -1.5);
        assert_eq!(blob.remaining(), 0);
    }

    #[test]
    fn slice_is_relative_to_cursor() {
        let mut b = Bytes::from(vec![0, 1, 2, 3, 4, 5]);
        b.advance(2);
        let s = b.slice(1..3);
        assert_eq!(&s[..], &[3, 4]);
        // The original cursor is unaffected.
        assert_eq!(b.remaining(), 4);
    }

    #[test]
    fn deref_exposes_remaining_view() {
        let mut b = Bytes::from(vec![9, 8, 7]);
        b.advance(1);
        assert_eq!(&b[..], &[8, 7]);
        assert_eq!(b.len(), 2);
    }

    #[test]
    #[should_panic(expected = "copy past end")]
    fn overread_panics() {
        let mut b = Bytes::from(vec![1, 2]);
        let mut dst = [0u8; 3];
        b.copy_to_slice(&mut dst);
    }

    #[test]
    fn from_static_reads() {
        let mut b = Bytes::from_static(b"XYZ");
        let mut dst = [0u8; 3];
        b.copy_to_slice(&mut dst);
        assert_eq!(&dst, b"XYZ");
    }
}
