//! Static execution plans: the symbolic graph compiled into a fixed op
//! schedule plus a liveness-colored buffer arena.
//!
//! [`Plan::compile`] lowers a traced [`SymbolicTensor`] graph into a
//! shape-specialized [`Plan`]: a topologically ordered list of
//! [`PlanStep`]s and an arena of reusable buffer [`PlanSlot`]s assigned by
//! classic liveness analysis — def/use intervals over the schedule, an
//! interference relation (two values interfere when their intervals
//! overlap), and first-fit slot coloring. [`PlanExecutor`] then replays the
//! schedule with *zero* graph construction and *zero* allocation per call,
//! invoking the same serial row-block kernels the dynamic engine
//! partitions across the worker pool, so planned outputs are bitwise
//! identical to dynamic execution at any `TIMEKD_THREADS`.
//!
//! The plan is deliberately easy to distrust: every structural fact
//! (schedule order, slot assignment, arena bound, dependency edges) is
//! stored explicitly so `timekd-check --plan` can re-derive liveness from
//! scratch and prove interference soundness, def-before-use, the arena
//! bound, and a clean diff against the symbolic graph. [`Plan::inject_fault`]
//! deliberately corrupts a compiled plan along each of those axes for
//! fault-injection tests of the verifier.
//!
//! Liveness is conservative: an input is considered live *through* the
//! step that consumes it, so an op's output never shares a slot with any
//! of its inputs and no kernel ever aliases in-place.
//!
//! ## Lowering exceptions
//!
//! RevIN instance statistics are computed outside autograd by the real
//! model and enter the symbolic graph as constant `[1, N]` leaves — once
//! under `normalize` and again under `denormalize`. The compiler lowers
//! each distinct stat *label* to one synthesized [`PlanOp::ColMean`] /
//! [`PlanOp::ColStd`] step over the plan input (replicating the RevIN
//! arithmetic bitwise), so a stat value carries several symbolic ids in
//! [`PlanValue::sym_ids`]. Masks are not representable (the dynamic op
//! captures them as data, not parents); plans support unmasked attention
//! only, which is all the student path uses.
//!
//! ## Training plans
//!
//! [`Plan::compile_training`] (in [`crate::plan_train`]) extends a forward
//! plan with a statically derived reverse schedule ([`Plan::bwd_steps`]),
//! fused optimizer updates ([`Plan::update_steps`]), and a `Target` leaf
//! fed with the label window. Gradient buffers are colored into the same
//! arena by the same interference/first-fit machinery, over the combined
//! forward + backward + update timeline — saved activations stay pinned
//! across the reversal point until their last backward consumer. Forward
//! plans carry empty backward/update schedules and are byte-identical to
//! what this module compiled before training support existed.

use std::collections::HashMap;
use std::fmt;

use crate::ops::attention::attn_fwd_row_block;
use crate::ops::matmul::mm_row_block;
use crate::ops::qmm::{qmm_row_block, quantize_rows_block, QuantizedMatrix};
use crate::plan_batch::ReduceStep;
use crate::plan_train::{BwdStep, PlanOptimizer, UpdateStep};
use crate::symbolic::{SymAttr, SymbolicTensor};

/// Index of a [`PlanValue`] within its plan.
pub type ValueId = usize;

/// Maximum tensor rank a plan supports (the student graphs are rank ≤ 3).
pub const MAX_PLAN_RANK: usize = 6;

/// A plan compilation or binding failure.
#[derive(Clone, Debug)]
pub struct PlanError {
    /// Human-readable description of what could not be compiled or bound.
    pub message: String,
}

impl PlanError {
    pub(crate) fn new(message: impl Into<String>) -> PlanError {
        PlanError {
            message: message.into(),
        }
    }
}

impl fmt::Display for PlanError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "plan error: {}", self.message)
    }
}

impl std::error::Error for PlanError {}

/// Numeric precision a plan's executor should use for its weight matmuls.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub enum Precision {
    /// Full f32 kernels everywhere (the default).
    #[default]
    F32,
    /// Int8 weight matmuls for inference: parameters feeding `Matmul2d`
    /// steps are quantized at bind time (per-column absmax scales, see
    /// [`QuantizedMatrix`]), activations are quantized per row on the
    /// fly, accumulation is exact i32, and outputs dequantize back to f32
    /// at the activation boundary. Everything else (attention, RevIN,
    /// element-wise ops) stays f32. Inference-only: training executors
    /// reject int8 plans.
    Int8,
}

/// How to treat the symbolic graph's constant leaves during lowering.
#[derive(Clone, Debug, Default)]
pub struct PlanSpec {
    /// Label of the single runtime-fed input leaf (e.g. `"x"`).
    pub input_label: String,
    /// Labels of `[1, N]` constant leaves lowered to a per-column mean of
    /// the input (RevIN `mu`).
    pub col_mean_leaves: Vec<String>,
    /// Labels (with epsilon) of `[1, N]` constant leaves lowered to a
    /// per-column standard deviation of the input (RevIN `std`).
    pub col_std_leaves: Vec<(String, f32)>,
    /// Labels of auxiliary constant leaves fed per step at run time (e.g.
    /// teacher activations in a distillation objective). A label's index
    /// in this list is its [`PlanExecutor::set_aux`] feed slot; labels
    /// absent from a particular graph are tolerated (their slots are
    /// empty).
    pub aux_labels: Vec<String>,
    /// Executor precision mode for weight matmuls; compiled into the plan
    /// so executors bound later replay the same numeric contract.
    pub precision: Precision,
}

/// The executable operation of one schedule step.
#[derive(Clone, Debug, PartialEq)]
pub enum PlanOp {
    /// Element-wise `a + b` with broadcasting.
    Add,
    /// Element-wise `a - b` with broadcasting.
    Sub,
    /// Element-wise `a * b` with broadcasting.
    Mul,
    /// Element-wise `a / b` with broadcasting.
    Div,
    /// `x + c`.
    AddScalar(f32),
    /// `x * c`.
    MulScalar(f32),
    /// `1 / sqrt(x)`.
    Rsqrt,
    /// `x * x`.
    Square,
    /// `max(x, 0)`.
    Relu,
    /// GELU (tanh approximation), matching the dynamic kernel.
    Gelu,
    /// Sum over one axis (output shape is recorded on the value).
    SumAxis {
        /// Reduced input axis.
        axis: usize,
    },
    /// Dense `[M, K] @ [K, N]` product.
    Matmul2d,
    /// Pure copy into the recorded output shape.
    Reshape,
    /// Axis reorder (pure strided copy).
    Permute(Vec<usize>),
    /// Fused unmasked multi-head attention over `[H, T, dh]` inputs,
    /// producing the merged `[T_q, H·dh]` context.
    FusedAttention {
        /// Head count.
        heads: usize,
        /// Query length.
        tq: usize,
        /// Key length.
        tk: usize,
        /// Per-head dim.
        dh: usize,
    },
    /// The `[T_q, T_k]` head-averaged attention map of a fused unmasked
    /// multi-head attention (the distillation surface; context discarded).
    FusedAttentionMap {
        /// Head count.
        heads: usize,
        /// Query length.
        tq: usize,
        /// Key length.
        tk: usize,
        /// Per-head dim.
        dh: usize,
    },
    /// Synthesized per-column mean of the `[T, N]` input (RevIN `mu`).
    ColMean,
    /// Synthesized per-column std of the `[T, N]` input (RevIN `std`).
    ColStd {
        /// Variance epsilon, matching the real layer.
        eps: f32,
    },
    /// Element-wise Smooth-L1 (Huber, δ=1) loss over identical shapes.
    SmoothL1,
    /// Full reduction to a single scalar (serial ascending sum, exactly
    /// like the dynamic kernel).
    Sum,
}

/// Where a plan value's bytes come from.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum ValueSource {
    /// The runtime input passed to [`PlanExecutor::run`].
    Input,
    /// A parameter bound by label at executor construction.
    Param,
    /// Produced by the schedule step with this index.
    Step(usize),
    /// The training target fed per step (training plans only).
    Target,
    /// A gradient buffer first written by the backward step with this
    /// index (training plans only).
    Grad(usize),
    /// An auxiliary per-step constant fed at run time via
    /// [`PlanExecutor::set_aux`]; the index is the position of the leaf's
    /// label in [`PlanSpec::aux_labels`].
    Aux(usize),
}

/// One value (tensor) of a compiled plan.
#[derive(Clone, Debug)]
pub struct PlanValue {
    /// Provenance of the bytes.
    pub source: ValueSource,
    /// Concrete shape.
    pub dims: Vec<usize>,
    /// Component label (parameter path, leaf name, or producing op label).
    pub label: String,
    /// Symbolic node ids this value realizes. Exactly one except for
    /// deduplicated stat leaves (see the module docs).
    pub sym_ids: Vec<u64>,
    /// Arena slot for step outputs and gradient buffers; `None` for
    /// input/param/target leaves, which live in dedicated buffers.
    pub slot: Option<usize>,
    /// Mirrors the symbolic `requires_grad` (true for parameters).
    pub requires_grad: bool,
    /// Mirrors the symbolic `is_frozen` for parameters (frozen params are
    /// provably excluded from gradient flow by the verifier).
    pub frozen: bool,
    /// For gradient values: the forward value this is the adjoint of.
    pub adjoint_of: Option<ValueId>,
}

impl PlanValue {
    /// Element count of the value.
    pub fn len(&self) -> usize {
        self.dims.iter().product()
    }

    /// True when the value has no elements (never the case in a valid plan).
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

/// One scheduled operation of a compiled plan.
#[derive(Clone, Debug)]
pub struct PlanStep {
    /// The operation to execute.
    pub op: PlanOp,
    /// Operand values, in kernel order.
    pub inputs: Vec<ValueId>,
    /// Output value.
    pub output: ValueId,
    /// Symbolic node this step lowers; `None` for synthesized stat steps.
    pub sym_id: Option<u64>,
    /// Symbolic op name (`""` for synthesized steps) — for graph diffing.
    pub sym_op: &'static str,
    /// Mirrors the symbolic node's `has_backward`: whether the dynamic
    /// engine would record gradient edges for this op.
    pub tracked: bool,
}

/// One reusable arena buffer, shared by non-interfering values.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct PlanSlot {
    /// Offset into the arena, in elements.
    pub offset: usize,
    /// Extent in elements (max over assigned values).
    pub size: usize,
}

/// A deliberate corruption of a compiled plan, one per verifier pass, used
/// to prove each `timekd-check --plan` analysis actually fires.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum PlanFault {
    /// Assign a step's output to the slot of one of its live inputs
    /// (breaks interference soundness).
    OverlapSlots,
    /// Swap a producing step after its consumer (breaks def-before-use).
    SwapSchedule,
    /// Shrink the declared arena below the analysis bound.
    ShrinkArena,
    /// Drop one dependency edge from a step (breaks the graph diff).
    DropEdge,
    /// Remove the sole gradient write of one trainable parameter (breaks
    /// adjoint completeness; training plans only).
    DropAdjoint,
    /// Re-home a backward-read forward value into a gradient slot whose
    /// combined-timeline interval overlaps it (breaks saved-activation
    /// liveness; training plans only).
    ClobberSavedActivation,
    /// Swap a gradient's writing backward step after a backward step that
    /// reads it (breaks reverse-topological validity; training plans only).
    ReorderBackward,
    /// Freeze a trained parameter while leaving its (now orphaned)
    /// gradient value in place — the plan then provably skips a parameter
    /// the dynamic engine trains (caught only by the plan-vs-dynamic
    /// gradient diff; training plans only).
    UpdateFrozenParam,
    /// Remove one cross-lane reduction step from a batched training plan
    /// — one trainable parameter's gradient from one window never lands
    /// (breaks batch-reduction completeness; batched plans only).
    DropReduceStep,
    /// Shrink the per-lane arena stride below the arena extent so
    /// neighbouring lane arenas overlap (breaks per-worker lane
    /// disjointness; batched plans only).
    OverlapLaneArenas,
}

/// A compiled, shape-specialized execution plan. See the module docs.
#[derive(Clone, Debug)]
pub struct Plan {
    pub(crate) spec: PlanSpec,
    pub(crate) values: Vec<PlanValue>,
    pub(crate) steps: Vec<PlanStep>,
    pub(crate) slots: Vec<PlanSlot>,
    pub(crate) arena_len: usize,
    pub(crate) input: ValueId,
    pub(crate) root: ValueId,
    pub(crate) bwd_steps: Vec<BwdStep>,
    pub(crate) update_steps: Vec<UpdateStep>,
    pub(crate) target: Option<ValueId>,
    pub(crate) optimizer: Option<PlanOptimizer>,
    pub(crate) grad_clip: Option<f32>,
    pub(crate) clip_grads: Vec<ValueId>,
    pub(crate) pinned: Vec<ValueId>,
    pub(crate) batch: usize,
    pub(crate) lane_stride: usize,
    pub(crate) reduce_steps: Vec<ReduceStep>,
}

/// Intermediate result of forward lowering, shared by [`Plan::compile`]
/// and the training compiler in [`crate::plan_train`].
pub(crate) struct ForwardLowering {
    pub(crate) values: Vec<PlanValue>,
    pub(crate) steps: Vec<PlanStep>,
    pub(crate) val_of: HashMap<u64, ValueId>,
    pub(crate) input: ValueId,
    pub(crate) root: ValueId,
    pub(crate) target: Option<ValueId>,
}

impl Plan {
    /// Lowers the provenance graph reachable from `root` into a static
    /// plan under `spec`. Fails with a named diagnostic on any op with no
    /// plan lowering, on constant leaves the spec does not classify, and
    /// on graphs whose root is itself a leaf.
    pub fn compile(root: &SymbolicTensor, spec: &PlanSpec) -> Result<Plan, PlanError> {
        let lowering = lower_forward(root, spec, None)?;
        let ForwardLowering {
            mut values,
            steps,
            input,
            root: root_val,
            ..
        } = lowering;
        let (slots, arena_len) = assign_slots(&mut values, &steps, &[], &[], root_val, &[]);
        Ok(Plan {
            spec: spec.clone(),
            values,
            steps,
            slots,
            arena_len,
            input,
            root: root_val,
            bwd_steps: Vec::new(),
            update_steps: Vec::new(),
            target: None,
            optimizer: None,
            grad_clip: None,
            clip_grads: Vec::new(),
            pinned: Vec::new(),
            batch: 0,
            lane_stride: 0,
            reduce_steps: Vec::new(),
        })
    }
}

/// Lowers the forward graph under `spec`. When `target_label` is `Some`,
/// the matching constant leaf becomes the plan's [`ValueSource::Target`]
/// value instead of an error.
pub(crate) fn lower_forward(
    root: &SymbolicTensor,
    spec: &PlanSpec,
    target_label: Option<&str>,
) -> Result<ForwardLowering, PlanError> {
    {
        let order = provenance_postorder(root);
        let mut values: Vec<PlanValue> = Vec::new();
        let mut steps: Vec<PlanStep> = Vec::new();
        let mut val_of: HashMap<u64, ValueId> = HashMap::new();
        let mut stat_val: HashMap<String, ValueId> = HashMap::new();
        let mut input_val: Option<ValueId> = None;
        let mut target_val: Option<ValueId> = None;

        // The input leaf must exist before any stat leaf can be lowered
        // against it, and postorder does not promise that — register it
        // first.
        for node in &order {
            if node.op_name() == "leaf" && node.label() == spec.input_label {
                if node.dims().len() > MAX_PLAN_RANK {
                    return Err(PlanError::new(format!(
                        "input `{}` exceeds max plan rank {MAX_PLAN_RANK}",
                        node.label()
                    )));
                }
                let id = values.len();
                values.push(PlanValue {
                    source: ValueSource::Input,
                    dims: node.sizes(),
                    label: node.label().to_string(),
                    sym_ids: vec![node.id()],
                    slot: None,
                    requires_grad: false,
                    frozen: false,
                    adjoint_of: None,
                });
                val_of.insert(node.id(), id);
                input_val = Some(id);
                break;
            }
        }

        for node in &order {
            if val_of.contains_key(&node.id()) {
                continue;
            }
            if node.sizes().len() > MAX_PLAN_RANK {
                return Err(PlanError::new(format!(
                    "`{}` at `{}` exceeds max plan rank {MAX_PLAN_RANK}",
                    node.op_name(),
                    node.label()
                )));
            }
            match node.op_name() {
                "param" => {
                    let id = values.len();
                    values.push(PlanValue {
                        source: ValueSource::Param,
                        dims: node.sizes(),
                        label: node.label().to_string(),
                        sym_ids: vec![node.id()],
                        slot: None,
                        requires_grad: node.requires_grad(),
                        frozen: node.is_frozen(),
                        adjoint_of: None,
                    });
                    val_of.insert(node.id(), id);
                }
                "leaf" => {
                    if !node.parents().is_empty() {
                        return Err(PlanError::new(format!(
                            "derived leaf (detach) at `{}` has no plan lowering",
                            node.label()
                        )));
                    }
                    let label = node.label().to_string();
                    if target_label == Some(label.as_str()) {
                        if target_val.is_some() {
                            return Err(PlanError::new(format!(
                                "target leaf `{label}` appears more than once"
                            )));
                        }
                        let id = values.len();
                        values.push(PlanValue {
                            source: ValueSource::Target,
                            dims: node.sizes(),
                            label,
                            sym_ids: vec![node.id()],
                            slot: None,
                            requires_grad: false,
                            frozen: false,
                            adjoint_of: None,
                        });
                        val_of.insert(node.id(), id);
                        target_val = Some(id);
                        continue;
                    }
                    if let Some(k) = spec.aux_labels.iter().position(|l| *l == label) {
                        if values.iter().any(|v| v.source == ValueSource::Aux(k)) {
                            return Err(PlanError::new(format!(
                                "aux leaf `{label}` appears more than once"
                            )));
                        }
                        let id = values.len();
                        values.push(PlanValue {
                            source: ValueSource::Aux(k),
                            dims: node.sizes(),
                            label,
                            sym_ids: vec![node.id()],
                            slot: None,
                            requires_grad: false,
                            frozen: false,
                            adjoint_of: None,
                        });
                        val_of.insert(node.id(), id);
                        continue;
                    }
                    let stat_op = if spec.col_mean_leaves.contains(&label) {
                        Some(PlanOp::ColMean)
                    } else {
                        spec.col_std_leaves
                            .iter()
                            .find(|(l, _)| *l == label)
                            .map(|&(_, eps)| PlanOp::ColStd { eps })
                    };
                    match stat_op {
                        Some(op) => {
                            if let Some(&vid) = stat_val.get(&label) {
                                // Second occurrence of the same stat leaf
                                // (denormalize): alias, don't recompute.
                                values[vid].sym_ids.push(node.id());
                                val_of.insert(node.id(), vid);
                                continue;
                            }
                            let src = input_val.ok_or_else(|| {
                                PlanError::new(format!(
                                    "stat leaf `{label}` traced without input leaf `{}`",
                                    spec.input_label
                                ))
                            })?;
                            if values[src].dims.len() != 2
                                || node.sizes() != vec![1, values[src].dims[1]]
                            {
                                return Err(PlanError::new(format!(
                                    "stat leaf `{label}` shape {:?} does not match input {:?}",
                                    node.sizes(),
                                    values[src].dims
                                )));
                            }
                            let vid = values.len();
                            values.push(PlanValue {
                                source: ValueSource::Step(steps.len()),
                                dims: node.sizes(),
                                label: label.clone(),
                                sym_ids: vec![node.id()],
                                slot: None,
                                requires_grad: false,
                                frozen: false,
                                adjoint_of: None,
                            });
                            steps.push(PlanStep {
                                op,
                                inputs: vec![src],
                                output: vid,
                                sym_id: None,
                                sym_op: "",
                                tracked: false,
                            });
                            stat_val.insert(label, vid);
                            val_of.insert(node.id(), vid);
                        }
                        None => {
                            return Err(PlanError::new(format!(
                                "constant leaf `{label}` is not classified by the plan spec"
                            )));
                        }
                    }
                }
                _ => {
                    let mut inputs = Vec::with_capacity(node.parents().len());
                    for p in node.parents() {
                        let vid = val_of.get(&p.id()).copied().ok_or_else(|| {
                            PlanError::new(format!(
                                "parent #{} of `{}` not lowered before use",
                                p.id(),
                                node.op_name()
                            ))
                        })?;
                        inputs.push(vid);
                    }
                    let op = lower_op(node)?;
                    let vid = values.len();
                    values.push(PlanValue {
                        source: ValueSource::Step(steps.len()),
                        dims: node.sizes(),
                        label: node.label().to_string(),
                        sym_ids: vec![node.id()],
                        slot: None,
                        requires_grad: node.requires_grad(),
                        frozen: false,
                        adjoint_of: None,
                    });
                    steps.push(PlanStep {
                        op,
                        inputs,
                        output: vid,
                        sym_id: Some(node.id()),
                        sym_op: node.op_name(),
                        tracked: !node.is_leaf(),
                    });
                    val_of.insert(node.id(), vid);
                }
            }
        }

        let root_val = *val_of.get(&root.id()).ok_or_else(|| {
            PlanError::new("root node was not lowered (empty graph?)".to_string())
        })?;
        if !matches!(values[root_val].source, ValueSource::Step(_)) {
            return Err(PlanError::new(
                "plan root must be produced by an op, not a leaf".to_string(),
            ));
        }
        let input = input_val
            .ok_or_else(|| PlanError::new(format!("no input leaf `{}`", spec.input_label)))?;
        if let Some(label) = target_label {
            if target_val.is_none() {
                return Err(PlanError::new(format!("no target leaf `{label}`")));
            }
        }

        Ok(ForwardLowering {
            values,
            steps,
            val_of,
            input,
            root: root_val,
            target: target_val,
        })
    }
}

impl Plan {
    /// The spec the plan was compiled under.
    pub fn spec(&self) -> &PlanSpec {
        &self.spec
    }

    /// All values, indexed by [`ValueId`].
    pub fn values(&self) -> &[PlanValue] {
        &self.values
    }

    /// The op schedule, in execution order.
    pub fn steps(&self) -> &[PlanStep] {
        &self.steps
    }

    /// The arena slots.
    pub fn slots(&self) -> &[PlanSlot] {
        &self.slots
    }

    /// Declared arena extent in elements — what the executor allocates
    /// once at construction.
    pub fn arena_len(&self) -> usize {
        self.arena_len
    }

    /// The runtime input value.
    pub fn input(&self) -> ValueId {
        self.input
    }

    /// The root (output) value.
    pub fn root(&self) -> ValueId {
        self.root
    }

    /// The reverse schedule, in execution order (empty for forward-only
    /// plans).
    pub fn bwd_steps(&self) -> &[BwdStep] {
        &self.bwd_steps
    }

    /// The fused optimizer-update schedule (empty for forward-only plans).
    pub fn update_steps(&self) -> &[UpdateStep] {
        &self.update_steps
    }

    /// The training-target value, when the plan was compiled for training.
    pub fn target(&self) -> Option<ValueId> {
        self.target
    }

    /// The fused optimizer, when the plan was compiled for training.
    pub fn optimizer(&self) -> Option<&PlanOptimizer> {
        self.optimizer.as_ref()
    }

    /// Global gradient-clipping threshold compiled into the plan, if any.
    pub fn grad_clip(&self) -> Option<f32> {
        self.grad_clip
    }

    /// Gradient values in the pinned clipping traversal order (matches the
    /// dynamic `clip_grad_norm` parameter order).
    pub fn clip_grads(&self) -> &[ValueId] {
        &self.clip_grads
    }

    /// Values pinned live through the end of the combined timeline so
    /// their arena bytes stay readable after a step (e.g. per-component
    /// loss scalars).
    pub fn pinned(&self) -> &[ValueId] {
        &self.pinned
    }

    /// Windows per batch for batched training plans (0 = non-batched).
    pub fn batch(&self) -> usize {
        self.batch
    }

    /// Per-lane arena stride, in elements, for batched training plans
    /// (0 = non-batched). Lane `w` conceptually occupies
    /// `[w·stride, w·stride + arena_len)`.
    pub fn lane_stride(&self) -> usize {
        self.lane_stride
    }

    /// The pinned cross-lane gradient-reduction schedule (empty for
    /// non-batched plans). Order is the determinism contract: source
    /// lanes ascend by window index, and within a lane the gradients
    /// follow the update-step order.
    pub fn reduce_steps(&self) -> &[ReduceStep] {
        &self.reduce_steps
    }

    /// Finds the value realizing symbolic node `sym_id`, if lowered.
    pub fn value_for_sym(&self, sym_id: u64) -> Option<ValueId> {
        self.values.iter().position(|v| v.sym_ids.contains(&sym_id))
    }

    /// Arena range `(offset, len)` of an arena-backed value.
    pub fn arena_range(&self, vid: ValueId) -> Option<(usize, usize)> {
        let value = self.values.get(vid)?;
        let slot = self.slots.get(value.slot?)?;
        Some((slot.offset, value.len()))
    }

    /// True when the plan carries a backward + optimizer schedule.
    pub fn is_training(&self) -> bool {
        !self.bwd_steps.is_empty()
    }

    /// Deliberately corrupts the plan along the axis `fault` names. Panics
    /// when the plan is too trivial to host the fault (student plans never
    /// are).
    pub fn inject_fault(&mut self, fault: PlanFault) {
        match fault {
            PlanFault::OverlapSlots => {
                // Give some step's output the slot of one of its own
                // (step-produced) inputs: both are live at that step.
                for step in &self.steps {
                    let in_slot = step
                        .inputs
                        .iter()
                        .find_map(|&v| self.values[v].slot)
                        .filter(|_| self.values[step.output].slot.is_some());
                    if let Some(slot) = in_slot {
                        self.values[step.output].slot = Some(slot);
                        return;
                    }
                }
                panic!("no step with a step-produced input to overlap");
            }
            PlanFault::SwapSchedule => {
                // Swap the first producer/consumer pair.
                for i in 0..self.steps.len() {
                    let produced = self.steps[i].output;
                    if let Some(j) = (i + 1..self.steps.len())
                        .find(|&j| self.steps[j].inputs.contains(&produced))
                    {
                        self.steps.swap(i, j);
                        return;
                    }
                }
                panic!("no dependent step pair to swap");
            }
            PlanFault::ShrinkArena => {
                assert!(self.arena_len > 0, "empty arena cannot shrink");
                self.arena_len -= 1;
            }
            PlanFault::DropEdge => {
                for step in &mut self.steps {
                    if step.inputs.len() >= 2 {
                        step.inputs.pop();
                        return;
                    }
                }
                panic!("no multi-input step to drop an edge from");
            }
            PlanFault::DropAdjoint => crate::plan_train::inject_drop_adjoint(self),
            PlanFault::ClobberSavedActivation => {
                crate::plan_train::inject_clobber_saved_activation(self)
            }
            PlanFault::ReorderBackward => crate::plan_train::inject_reorder_backward(self),
            PlanFault::UpdateFrozenParam => crate::plan_train::inject_update_frozen_param(self),
            PlanFault::DropReduceStep => {
                assert!(
                    self.batch > 1 && !self.reduce_steps.is_empty(),
                    "plan is not batched"
                );
                let mid = self.reduce_steps.len() / 2;
                self.reduce_steps.remove(mid);
            }
            PlanFault::OverlapLaneArenas => {
                assert!(self.batch > 1, "plan is not batched");
                self.lane_stride = self.arena_len - 1;
            }
        }
    }
}

/// Deterministic postorder (parents before children) over *provenance*
/// edges — the full computation, not just the gradient subgraph.
fn provenance_postorder(root: &SymbolicTensor) -> Vec<SymbolicTensor> {
    let mut order = Vec::new();
    let mut visited: std::collections::HashSet<u64> = std::collections::HashSet::new();
    let mut stack = vec![(root.clone(), false)];
    while let Some((node, expanded)) = stack.pop() {
        if expanded {
            order.push(node);
            continue;
        }
        if !visited.insert(node.id()) {
            continue;
        }
        stack.push((node.clone(), true));
        for p in node.parents().iter().rev() {
            if !visited.contains(&p.id()) {
                stack.push((p.clone(), false));
            }
        }
    }
    order
}

fn lower_op(node: &SymbolicTensor) -> Result<PlanOp, PlanError> {
    let unsupported = || {
        PlanError::new(format!(
            "op `{}` at `{}` has no plan lowering",
            node.op_name(),
            node.label()
        ))
    };
    Ok(match node.op_name() {
        "add" => PlanOp::Add,
        "sub" => PlanOp::Sub,
        "mul" => PlanOp::Mul,
        "div" => PlanOp::Div,
        "add_scalar" => match *node.attr() {
            SymAttr::Scalar(c) => PlanOp::AddScalar(c),
            _ => return Err(unsupported()),
        },
        "mul_scalar" => match *node.attr() {
            SymAttr::Scalar(c) => PlanOp::MulScalar(c),
            _ => return Err(unsupported()),
        },
        "rsqrt" => PlanOp::Rsqrt,
        "square" => PlanOp::Square,
        "relu" => PlanOp::Relu,
        "gelu" => PlanOp::Gelu,
        "sum_axis" => match *node.attr() {
            SymAttr::Axis { axis, .. } => PlanOp::SumAxis { axis },
            _ => return Err(unsupported()),
        },
        "matmul_2d" => PlanOp::Matmul2d,
        "reshape" => PlanOp::Reshape,
        "permute" => match node.attr() {
            SymAttr::Perm(p) => PlanOp::Permute(p.clone()),
            _ => return Err(unsupported()),
        },
        "fused_attention" => {
            let q = &node.parents()[0];
            let k = &node.parents()[1];
            let (qd, kd) = (q.sizes(), k.sizes());
            PlanOp::FusedAttention {
                heads: qd[0],
                tq: qd[1],
                tk: kd[1],
                dh: qd[2],
            }
        }
        "fused_attention_map" => {
            let q = &node.parents()[0];
            let k = &node.parents()[1];
            let (qd, kd) = (q.sizes(), k.sizes());
            PlanOp::FusedAttentionMap {
                heads: qd[0],
                tq: qd[1],
                tk: kd[1],
                dh: qd[2],
            }
        }
        "smooth_l1" => PlanOp::SmoothL1,
        "sum" => PlanOp::Sum,
        _ => return Err(unsupported()),
    })
}

/// Liveness analysis + first-fit slot coloring over the combined
/// forward + backward + optimizer timeline.
///
/// Positions: forward step `t` at `t`, backward step `j` at `F + j`, update
/// step `u` at `F + B + u`. Def/use intervals are inclusive: a
/// step-produced value is live from its defining step through its last
/// consuming step, and backward reads pin saved activations *across* the
/// reversal point. A gradient's def is its first (initializing) write; its
/// interval covers every later write, grad-in read, and optimizer read.
/// The root (loss) is pinned to the very end of the timeline. Two values
/// interfere when their intervals overlap; slots are assigned first-fit in
/// definition order (forward outputs in schedule order, then gradients by
/// first write), a slot's extent is the max size of the values it hosts,
/// and the arena is the concatenation of all slots. With empty backward
/// and update schedules this degenerates byte-identically to the original
/// forward-only analysis.
///
/// `pinned` values are held live through the very end of the timeline
/// (like the root) so callers can read their bytes after a step.
pub(crate) fn assign_slots(
    values: &mut [PlanValue],
    steps: &[PlanStep],
    bwd_steps: &[BwdStep],
    update_steps: &[UpdateStep],
    root: ValueId,
    pinned: &[ValueId],
) -> (Vec<PlanSlot>, usize) {
    let fwd_end = steps.len();
    let end = fwd_end + bwd_steps.len() + update_steps.len();
    let mut last_use: Vec<usize> = (0..values.len()).map(|_| 0).collect();
    let mut def: Vec<Option<usize>> = values.iter().map(|_| None).collect();
    for (t, step) in steps.iter().enumerate() {
        def[step.output] = Some(t);
        for &v in &step.inputs {
            last_use[v] = last_use[v].max(t);
        }
    }
    for (j, bstep) in bwd_steps.iter().enumerate() {
        let t = fwd_end + j;
        for &v in &bstep.reads {
            last_use[v] = last_use[v].max(t);
        }
        if let Some(g) = bstep.grad_in {
            last_use[g] = last_use[g].max(t);
        }
        for &(g, _) in &bstep.writes {
            def[g] = Some(def[g].map_or(t, |d| d.min(t)));
            last_use[g] = last_use[g].max(t);
        }
    }
    for (u, upd) in update_steps.iter().enumerate() {
        let t = fwd_end + bwd_steps.len() + u;
        last_use[upd.grad] = last_use[upd.grad].max(t);
    }
    last_use[root] = end;
    for &v in pinned {
        last_use[v] = end;
    }

    // slot -> (size, assigned intervals)
    let mut slots: Vec<(usize, Vec<(usize, usize)>)> = Vec::new();
    let mut place = |values: &mut [PlanValue], v: ValueId| {
        let Some(d) = def[v] else { return };
        if values[v].slot.is_some() {
            return;
        }
        let interval = (d, last_use[v].max(d));
        let size = values[v].len();
        let fit = slots
            .iter()
            .position(|(_, taken)| taken.iter().all(|&(a, b)| interval.1 < a || b < interval.0));
        let idx = match fit {
            Some(i) => i,
            None => {
                slots.push((0, Vec::new()));
                slots.len() - 1
            }
        };
        slots[idx].0 = slots[idx].0.max(size);
        slots[idx].1.push(interval);
        values[v].slot = Some(idx);
    };
    for step in steps {
        place(values, step.output);
    }
    for bstep in bwd_steps {
        for &(g, _) in &bstep.writes {
            place(values, g);
        }
    }

    let mut out = Vec::with_capacity(slots.len());
    let mut offset = 0usize;
    for (size, _) in &slots {
        out.push(PlanSlot {
            offset,
            size: *size,
        });
        offset += size;
    }
    (out, offset)
}

// ---------------------------------------------------------------------------
// Executor
// ---------------------------------------------------------------------------

/// Where one operand's bytes live at execution time.
#[derive(Clone, Copy, Debug)]
pub(crate) enum Loc {
    Arena { off: usize, len: usize },
    Param { idx: usize },
    Input,
    Target,
    Aux(usize),
}

#[derive(Clone, Copy, Debug)]
pub(crate) enum BinKind {
    Add,
    Sub,
    Mul,
    Div,
    SmoothL1,
}

#[inline]
pub(crate) fn bin_apply(kind: BinKind, a: f32, b: f32) -> f32 {
    match kind {
        BinKind::Add => a + b,
        BinKind::Sub => a - b,
        BinKind::Mul => a * b,
        BinKind::Div => a / b,
        BinKind::SmoothL1 => {
            // Exactly the dynamic smooth_l1 element function.
            let d = a - b;
            if d.abs() < 1.0 {
                0.5 * d * d
            } else {
                d.abs() - 0.5
            }
        }
    }
}

#[derive(Debug)]
enum ExecOp {
    Binary {
        kind: BinKind,
        dims: Vec<usize>,
        a_str: Vec<usize>,
        b_str: Vec<usize>,
    },
    AddScalar(f32),
    MulScalar(f32),
    Rsqrt,
    Square,
    Relu,
    Gelu,
    SumAxis {
        outer: usize,
        mid: usize,
        inner: usize,
    },
    Matmul {
        m: usize,
        k: usize,
        n: usize,
    },
    /// Int8 weight matmul: activations from `srcs[0]` are row-quantized
    /// into executor scratch and contracted against `qweights[w]` with i32
    /// accumulation; `srcs[1]` (the f32 param) is not read at run time.
    QuantMatmul {
        m: usize,
        k: usize,
        n: usize,
        w: usize,
    },
    CopyReshape,
    Permute {
        strides: Vec<usize>,
        dims: Vec<usize>,
    },
    Attention {
        heads: usize,
        tq: usize,
        tk: usize,
        dh: usize,
        scale: f32,
    },
    /// Head-averaged attention map only: the context output lands in the
    /// `attn_out_sink` scratch (discarded) and `v` is a zero buffer the
    /// map bits never depend on.
    AttentionMap {
        heads: usize,
        tq: usize,
        tk: usize,
        dh: usize,
        scale: f32,
    },
    ColMean {
        t: usize,
        n: usize,
    },
    ColStd {
        t: usize,
        n: usize,
        eps: f32,
    },
    Sum,
}

#[derive(Debug)]
struct ExecStep {
    op: ExecOp,
    srcs: [Loc; 3],
    out_off: usize,
    out_len: usize,
}

/// Replays a compiled [`Plan`] with zero per-call allocation.
///
/// All buffers — the arena, parameter copies, and attention scratch — are
/// allocated once at construction; [`PlanExecutor::run`] only indexes into
/// them and calls the serial row-block kernels, so its output is bitwise
/// identical to the dynamic engine at any thread count.
#[derive(Debug)]
pub struct PlanExecutor {
    exec: Vec<ExecStep>,
    pub(crate) arena: Vec<f32>,
    pub(crate) params: Vec<Vec<f32>>,
    input_len: usize,
    pub(crate) root_off: usize,
    root_len: usize,
    /// Per-step training target buffer (empty for forward-only plans).
    pub(crate) target: Vec<f32>,
    /// Per-step auxiliary constant buffers, indexed like
    /// [`PlanSpec::aux_labels`] (empty slots for labels absent from the
    /// graph).
    pub(crate) aux: Vec<Vec<f32>>,
    attn_kt: Vec<f32>,
    attn_vt: Vec<f32>,
    attn_scores: Vec<f32>,
    attn_map: Vec<f32>,
    attn_stats: Vec<f32>,
    /// Discarded context output of `AttentionMap` steps.
    attn_out_sink: Vec<f32>,
    /// All-zero `v` operand for `AttentionMap` steps (the kernel packs a
    /// value matrix unconditionally; the map does not depend on it).
    attn_zero_v: Vec<f32>,
    /// SIMD mode, resolved once at construction (reading the env may
    /// allocate; the plan loop must not).
    pub(crate) simd: bool,
    /// Weights quantized at bind time for `QuantMatmul` steps (int8
    /// plans only; empty otherwise).
    qweights: Vec<QuantizedMatrix>,
    /// Per-run activation-quantization scratch: int8 codes.
    q_codes: Vec<i8>,
    /// Per-run activation-quantization scratch: per-row scales.
    q_scales: Vec<f32>,
}

/// Effective stride of `src` (aligned to the trailing axes of `out`) along
/// each out axis; 0 where the src axis is missing or has size 1. This is
/// the same mapping the dynamic broadcast paths realise, and binary ops
/// are pure element pairing, so any walk over it is bitwise faithful.
pub(crate) fn eff_strides(src: &[usize], out: &[usize]) -> Vec<usize> {
    let mut src_strides = vec![0usize; src.len()];
    let mut acc = 1usize;
    for i in (0..src.len()).rev() {
        src_strides[i] = acc;
        acc *= src[i];
    }
    let pad = out.len() - src.len();
    let mut eff = vec![0usize; out.len()];
    for i in 0..out.len() {
        if i >= pad && src[i - pad] != 1 {
            eff[i] = src_strides[i - pad];
        }
    }
    eff
}

impl PlanExecutor {
    /// Builds an executor for `plan`, resolving every parameter through
    /// `param_source` (label, dims) → data. Fails when a parameter is
    /// missing or mis-sized, or when the plan's slot assignment would
    /// alias a kernel's output with one of its inputs.
    pub fn new(
        plan: &Plan,
        mut param_source: impl FnMut(&str, &[usize]) -> Option<Vec<f32>>,
    ) -> Result<PlanExecutor, PlanError> {
        let mut params: Vec<Vec<f32>> = Vec::new();
        let mut param_idx: HashMap<ValueId, usize> = HashMap::new();
        for (vid, value) in plan.values().iter().enumerate() {
            if value.source != ValueSource::Param {
                continue;
            }
            let data = param_source(&value.label, &value.dims).ok_or_else(|| {
                PlanError::new(format!("no binding for parameter `{}`", value.label))
            })?;
            if data.len() != value.len() {
                return Err(PlanError::new(format!(
                    "parameter `{}` bound with {} elements, expected {}",
                    value.label,
                    data.len(),
                    value.len()
                )));
            }
            param_idx.insert(vid, params.len());
            params.push(data);
        }

        let loc_of = |vid: ValueId| -> Result<Loc, PlanError> {
            let value = &plan.values()[vid];
            match value.source {
                ValueSource::Input => Ok(Loc::Input),
                ValueSource::Target => Ok(Loc::Target),
                ValueSource::Param => Ok(Loc::Param {
                    idx: param_idx[&vid],
                }),
                ValueSource::Aux(k) => Ok(Loc::Aux(k)),
                ValueSource::Step(_) | ValueSource::Grad(_) => {
                    let slot = value.slot.ok_or_else(|| {
                        PlanError::new(format!("step value `{}` has no slot", value.label))
                    })?;
                    let s = plan
                        .slots()
                        .get(slot)
                        .copied()
                        .ok_or_else(|| PlanError::new(format!("slot {slot} out of range")))?;
                    if value.len() > s.size || s.offset + s.size > plan.arena_len() {
                        return Err(PlanError::new(format!(
                            "value `{}` does not fit its slot/arena",
                            value.label
                        )));
                    }
                    Ok(Loc::Arena {
                        off: s.offset,
                        len: value.len(),
                    })
                }
            }
        };

        let mut exec = Vec::with_capacity(plan.steps().len());
        let (mut kt_len, mut vt_len, mut sc_len, mut map_len, mut st_len) = (0, 0, 0, 0, 0);
        let (mut out_sink_len, mut zero_v_len) = (0usize, 0usize);
        // Int8 plans quantize parameters that feed Matmul2d steps at bind
        // time. Inference-only: a training plan's backward pass reads the
        // f32 weights, so quantization is limited to forward-only plans
        // (TrainExecutor rejects int8 specs outright).
        let quantize = plan.spec().precision == Precision::Int8 && plan.bwd_steps().is_empty();
        let mut qweights: Vec<QuantizedMatrix> = Vec::new();
        let (mut qx_len, mut qs_len) = (0usize, 0usize);
        let mut param_uses = vec![0usize; params.len()];
        let mut param_quant_uses = vec![0usize; params.len()];
        for step in plan.steps() {
            let out_v = &plan.values()[step.output];
            let Loc::Arena {
                off: out_off,
                len: out_len,
            } = loc_of(step.output)?
            else {
                return Err(PlanError::new(format!(
                    "step output `{}` is not arena-backed",
                    out_v.label
                )));
            };
            let mut srcs = [Loc::Input; 3];
            for (i, &vid) in step.inputs.iter().enumerate().take(3) {
                srcs[i] = loc_of(vid)?;
                if let Loc::Param { idx } = srcs[i] {
                    param_uses[idx] += 1;
                }
                // The executor's raw-pointer split of the arena is sound
                // only because inputs never alias the output; reject any
                // plan where they would (a verified plan never does).
                if let Loc::Arena { off, len } = srcs[i] {
                    if off < out_off + out_len && out_off < off + len {
                        return Err(PlanError::new(format!(
                            "input `{}` aliases output `{}` in the arena",
                            plan.values()[vid].label,
                            out_v.label
                        )));
                    }
                }
            }
            let in_dims = |i: usize| -> &[usize] { &plan.values()[step.inputs[i]].dims };
            let op = match &step.op {
                PlanOp::Add | PlanOp::Sub | PlanOp::Mul | PlanOp::Div | PlanOp::SmoothL1 => {
                    let kind = match step.op {
                        PlanOp::Add => BinKind::Add,
                        PlanOp::Sub => BinKind::Sub,
                        PlanOp::Mul => BinKind::Mul,
                        PlanOp::SmoothL1 => BinKind::SmoothL1,
                        _ => BinKind::Div,
                    };
                    ExecOp::Binary {
                        kind,
                        dims: out_v.dims.clone(),
                        a_str: eff_strides(in_dims(0), &out_v.dims),
                        b_str: eff_strides(in_dims(1), &out_v.dims),
                    }
                }
                PlanOp::AddScalar(c) => ExecOp::AddScalar(*c),
                PlanOp::MulScalar(c) => ExecOp::MulScalar(*c),
                PlanOp::Rsqrt => ExecOp::Rsqrt,
                PlanOp::Square => ExecOp::Square,
                PlanOp::Relu => ExecOp::Relu,
                PlanOp::Gelu => ExecOp::Gelu,
                PlanOp::SumAxis { axis } => {
                    let dims = in_dims(0);
                    ExecOp::SumAxis {
                        outer: dims[..*axis].iter().product(),
                        mid: dims[*axis],
                        inner: dims[*axis + 1..].iter().product(),
                    }
                }
                PlanOp::Matmul2d => {
                    let (a, b) = (in_dims(0), in_dims(1));
                    let (m, k, n) = (a[0], a[1], b[1]);
                    if let (true, Loc::Param { idx }) = (quantize, srcs[1]) {
                        param_quant_uses[idx] += 1;
                        qx_len = qx_len.max(m * k);
                        qs_len = qs_len.max(m);
                        let w = qweights.len();
                        qweights.push(QuantizedMatrix::quantize(&params[idx], k, n));
                        ExecOp::QuantMatmul { m, k, n, w }
                    } else {
                        ExecOp::Matmul { m, k, n }
                    }
                }
                PlanOp::Reshape => ExecOp::CopyReshape,
                PlanOp::Permute(perm) => {
                    let src = in_dims(0);
                    let mut src_strides = vec![0usize; src.len()];
                    let mut acc = 1usize;
                    for i in (0..src.len()).rev() {
                        src_strides[i] = acc;
                        acc *= src[i];
                    }
                    ExecOp::Permute {
                        strides: perm.iter().map(|&p| src_strides[p]).collect(),
                        dims: out_v.dims.clone(),
                    }
                }
                PlanOp::FusedAttention { heads, tq, tk, dh } => {
                    kt_len = kt_len.max(dh * tk);
                    vt_len = vt_len.max(dh * tk);
                    sc_len = sc_len.max(*tk);
                    map_len = map_len.max(tq * tk);
                    st_len = st_len.max(tq * heads);
                    ExecOp::Attention {
                        heads: *heads,
                        tq: *tq,
                        tk: *tk,
                        dh: *dh,
                        scale: 1.0 / (*dh as f32).sqrt(),
                    }
                }
                PlanOp::FusedAttentionMap { heads, tq, tk, dh } => {
                    kt_len = kt_len.max(dh * tk);
                    vt_len = vt_len.max(dh * tk);
                    sc_len = sc_len.max(*tk);
                    st_len = st_len.max(tq * heads);
                    out_sink_len = out_sink_len.max(tq * heads * dh);
                    zero_v_len = zero_v_len.max(heads * tk * dh);
                    ExecOp::AttentionMap {
                        heads: *heads,
                        tq: *tq,
                        tk: *tk,
                        dh: *dh,
                        scale: 1.0 / (*dh as f32).sqrt(),
                    }
                }
                PlanOp::ColMean => {
                    let dims = in_dims(0);
                    ExecOp::ColMean {
                        t: dims[0],
                        n: dims[1],
                    }
                }
                PlanOp::ColStd { eps } => {
                    let dims = in_dims(0);
                    ExecOp::ColStd {
                        t: dims[0],
                        n: dims[1],
                        eps: *eps,
                    }
                }
                PlanOp::Sum => ExecOp::Sum,
            };
            exec.push(ExecStep {
                op,
                srcs,
                out_off,
                out_len,
            });
        }

        let Loc::Arena {
            off: root_off,
            len: root_len,
        } = loc_of(plan.root())?
        else {
            return Err(PlanError::new("plan root is not arena-backed".to_string()));
        };

        // A parameter whose every use was lowered to a quantized matmul is
        // dead in f32 form — drop the copy so the int8 executor actually
        // shrinks its resident footprint.
        for (idx, p) in params.iter_mut().enumerate() {
            if param_quant_uses[idx] > 0 && param_quant_uses[idx] == param_uses[idx] {
                *p = Vec::new();
            }
        }

        let target_len = plan.target().map_or(0, |vid| plan.values()[vid].len());
        let aux: Vec<Vec<f32>> = (0..plan.spec().aux_labels.len())
            .map(|k| {
                let len = plan
                    .values()
                    .iter()
                    .find(|v| v.source == ValueSource::Aux(k))
                    .map_or(0, |v| v.len());
                vec![0.0f32; len]
            })
            .collect();
        Ok(PlanExecutor {
            exec,
            arena: vec![0.0f32; plan.arena_len()],
            params,
            input_len: plan.values()[plan.input()].len(),
            root_off,
            root_len,
            target: vec![0.0f32; target_len],
            aux,
            attn_kt: vec![0.0f32; kt_len],
            attn_vt: vec![0.0f32; vt_len],
            attn_scores: vec![0.0f32; sc_len],
            attn_map: vec![0.0f32; map_len],
            attn_stats: vec![0.0f32; 2 * st_len],
            attn_out_sink: vec![0.0f32; out_sink_len],
            attn_zero_v: vec![0.0f32; zero_v_len],
            // Resolved once here: the first env read may allocate, and the
            // plan loop must stay allocation-free.
            simd: crate::simd::simd_enabled(),
            qweights,
            q_codes: vec![0i8; qx_len],
            q_scales: vec![0.0f32; qs_len],
        })
    }

    /// Resident parameter bytes: live f32 copies plus quantized weights
    /// (codes + scales). For an int8 plan this is what the student actually
    /// keeps in memory after bind-time quantization.
    pub fn param_bytes(&self) -> usize {
        let f32_bytes: usize = self
            .params
            .iter()
            .map(|p| p.len() * std::mem::size_of::<f32>())
            .sum();
        let q_bytes: usize = self.qweights.iter().map(|q| q.bytes()).sum();
        f32_bytes + q_bytes
    }

    /// Element count the input slice must have.
    pub fn input_len(&self) -> usize {
        self.input_len
    }

    /// Element count the output slice must have.
    pub fn output_len(&self) -> usize {
        self.root_len
    }

    /// Expected length of auxiliary feed slot `k` (0 when the label is
    /// absent from the compiled graph).
    pub fn aux_len(&self, k: usize) -> usize {
        self.aux[k].len()
    }

    /// Feeds auxiliary constant `k` (index into the spec's `aux_labels`)
    /// for subsequent runs. Panics on length mismatch.
    pub fn set_aux(&mut self, k: usize, data: &[f32]) {
        assert_eq!(data.len(), self.aux[k].len(), "aux length mismatch");
        self.aux[k].copy_from_slice(data);
    }

    /// Executes the plan on `input`, writing the root value into `out`.
    /// Performs no allocation and records no spans.
    pub fn run(&mut self, input: &[f32], out: &mut [f32]) {
        assert_eq!(input.len(), self.input_len, "plan input length mismatch");
        assert_eq!(out.len(), self.root_len, "plan output length mismatch");
        self.execute_plan_loop(input);
        out.copy_from_slice(&self.arena[self.root_off..self.root_off + self.root_len]);
    }

    /// The hot schedule loop. Linted (`timekd-check --lints`) to stay free
    /// of allocation, `unwrap`, and span instrumentation.
    pub(crate) fn execute_plan_loop(&mut self, input: &[f32]) {
        let arena_ptr = self.arena.as_mut_ptr();
        let params = &self.params;
        let target = &self.target;
        let aux = &self.aux;
        let simd = self.simd;
        for step in &self.exec {
            // SAFETY: `arena` is allocated to `plan.arena_len()` and every
            // `Loc::Arena` range was bounds-checked at construction; the
            // output range was verified disjoint from every input range
            // (conservative liveness forbids in-place aliasing), so these
            // raw-pointer slices never overlap a live `&mut`.
            let out = unsafe {
                std::slice::from_raw_parts_mut(arena_ptr.add(step.out_off), step.out_len)
            };
            let src = |i: usize| -> &[f32] {
                match step.srcs[i] {
                    // SAFETY: as above — in-bounds and disjoint from `out`.
                    Loc::Arena { off, len } => unsafe {
                        std::slice::from_raw_parts(arena_ptr.add(off) as *const f32, len)
                    },
                    Loc::Param { idx } => &params[idx],
                    Loc::Input => input,
                    Loc::Target => target,
                    Loc::Aux(k) => &aux[k],
                }
            };
            match &step.op {
                ExecOp::Binary {
                    kind,
                    dims,
                    a_str,
                    b_str,
                } => {
                    let (a, b) = (src(0), src(1));
                    let rank = dims.len();
                    let mut idx = [0usize; MAX_PLAN_RANK];
                    let (mut a_off, mut b_off) = (0usize, 0usize);
                    for o in out.iter_mut() {
                        *o = bin_apply(*kind, a[a_off], b[b_off]);
                        let mut ax = rank;
                        loop {
                            if ax == 0 {
                                break;
                            }
                            ax -= 1;
                            idx[ax] += 1;
                            a_off += a_str[ax];
                            b_off += b_str[ax];
                            if idx[ax] < dims[ax] {
                                break;
                            }
                            a_off -= a_str[ax] * dims[ax];
                            b_off -= b_str[ax] * dims[ax];
                            idx[ax] = 0;
                        }
                    }
                }
                ExecOp::AddScalar(c) => {
                    for (o, &x) in out.iter_mut().zip(src(0)) {
                        *o = x + c;
                    }
                }
                ExecOp::MulScalar(c) => {
                    for (o, &x) in out.iter_mut().zip(src(0)) {
                        *o = x * c;
                    }
                }
                ExecOp::Rsqrt => {
                    for (o, &x) in out.iter_mut().zip(src(0)) {
                        *o = 1.0 / x.sqrt();
                    }
                }
                ExecOp::Square => {
                    for (o, &x) in out.iter_mut().zip(src(0)) {
                        *o = x * x;
                    }
                }
                ExecOp::Relu => {
                    for (o, &x) in out.iter_mut().zip(src(0)) {
                        *o = x.max(0.0);
                    }
                }
                ExecOp::Gelu => {
                    // Same constants as the dynamic kernel.
                    const C: f32 = 0.797_884_6; // sqrt(2/π)
                    for (o, &x) in out.iter_mut().zip(src(0)) {
                        let inner = C * (x + 0.044715 * x * x * x);
                        *o = 0.5 * x * (1.0 + inner.tanh());
                    }
                }
                ExecOp::SumAxis { outer, mid, inner } => {
                    let a = src(0);
                    out.fill(0.0);
                    for o in 0..*outer {
                        for m in 0..*mid {
                            let base = (o * mid + m) * inner;
                            let out_base = o * inner;
                            for i in 0..*inner {
                                out[out_base + i] += a[base + i];
                            }
                        }
                    }
                }
                ExecOp::Matmul { m, k, n } => {
                    out.fill(0.0);
                    mm_row_block(src(0), src(1), out, 0, *m, *k, *n, simd);
                }
                ExecOp::QuantMatmul { m, k, n, w } => {
                    let (m, k, n) = (*m, *k, *n);
                    quantize_rows_block(
                        src(0),
                        &mut self.q_codes[..m * k],
                        &mut self.q_scales[..m],
                        m,
                        k,
                    );
                    let qw = &self.qweights[*w];
                    qmm_row_block(
                        &self.q_codes[..m * k],
                        &self.q_scales[..m],
                        qw.codes(),
                        qw.scales(),
                        out,
                        0,
                        m,
                        k,
                        n,
                    );
                }
                ExecOp::CopyReshape => {
                    out.copy_from_slice(src(0));
                }
                ExecOp::Permute { strides, dims } => {
                    let a = src(0);
                    let rank = dims.len();
                    let mut idx = [0usize; MAX_PLAN_RANK];
                    let mut src_off = 0usize;
                    for o in out.iter_mut() {
                        *o = a[src_off];
                        let mut ax = rank;
                        loop {
                            if ax == 0 {
                                break;
                            }
                            ax -= 1;
                            idx[ax] += 1;
                            src_off += strides[ax];
                            if idx[ax] < dims[ax] {
                                break;
                            }
                            src_off -= strides[ax] * dims[ax];
                            idx[ax] = 0;
                        }
                    }
                }
                ExecOp::Attention {
                    heads,
                    tq,
                    tk,
                    dh,
                    scale,
                } => {
                    let (q, k, v) = (src(0), src(1), src(2));
                    let half = self.attn_stats.len() / 2;
                    let (m_sink, l_sink) = self.attn_stats.split_at_mut(half);
                    self.attn_map[..tq * tk].fill(0.0);
                    attn_fwd_row_block(
                        q,
                        k,
                        v,
                        None,
                        out,
                        &mut self.attn_map[..tq * tk],
                        &mut m_sink[..tq * heads],
                        &mut l_sink[..tq * heads],
                        &mut self.attn_kt[..dh * tk],
                        &mut self.attn_vt[..dh * tk],
                        &mut self.attn_scores[..*tk],
                        0,
                        *tq,
                        *heads,
                        *tq,
                        *tk,
                        *dh,
                        *scale,
                        simd,
                    );
                }
                ExecOp::AttentionMap {
                    heads,
                    tq,
                    tk,
                    dh,
                    scale,
                } => {
                    let (q, k) = (src(0), src(1));
                    let half = self.attn_stats.len() / 2;
                    let (m_sink, l_sink) = self.attn_stats.split_at_mut(half);
                    out.fill(0.0);
                    attn_fwd_row_block(
                        q,
                        k,
                        &self.attn_zero_v[..heads * tk * dh],
                        None,
                        &mut self.attn_out_sink[..tq * heads * dh],
                        out,
                        &mut m_sink[..tq * heads],
                        &mut l_sink[..tq * heads],
                        &mut self.attn_kt[..dh * tk],
                        &mut self.attn_vt[..dh * tk],
                        &mut self.attn_scores[..*tk],
                        0,
                        *tq,
                        *heads,
                        *tq,
                        *tk,
                        *dh,
                        *scale,
                        simd,
                    );
                }
                ExecOp::ColMean { t, n } => {
                    let a = src(0);
                    for j in 0..*n {
                        let mut s = 0.0f32;
                        for i in 0..*t {
                            s += a[i * n + j];
                        }
                        out[j] = s / *t as f32;
                    }
                }
                ExecOp::ColStd { t, n, eps } => {
                    // Replicates `RevIn::normalize` arithmetic exactly:
                    // mean first, then centered sum of squares, in the
                    // same accumulation order.
                    let a = src(0);
                    for j in 0..*n {
                        let mut s = 0.0f32;
                        for i in 0..*t {
                            s += a[i * n + j];
                        }
                        let mu = s / *t as f32;
                        let mut var = 0.0f32;
                        for i in 0..*t {
                            let d = a[i * n + j] - mu;
                            var += d * d;
                        }
                        out[j] = (var / *t as f32 + eps).sqrt();
                    }
                }
                ExecOp::Sum => {
                    // Serial ascending fold, exactly like the dynamic
                    // `Tensor::sum`.
                    let a = src(0);
                    let mut s = 0.0f32;
                    for &x in a {
                        s += x;
                    }
                    out[0] = s;
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::symbolic::{SymCtx, SymDim};
    use crate::tensor::Tensor;

    fn d(name: &str, size: usize) -> SymDim {
        SymDim::new(name, size)
    }

    fn spec() -> PlanSpec {
        PlanSpec {
            input_label: "x".to_string(),
            col_mean_leaves: Vec::new(),
            col_std_leaves: Vec::new(),
            aux_labels: Vec::new(),
            precision: Precision::F32,
        }
    }

    /// x[4,3] @ w[3,2] + b[2], relu, mul_scalar — compare against dynamic
    /// execution bitwise.
    #[test]
    fn plan_matches_dynamic_small_graph() {
        let ctx = SymCtx::new();
        let x = ctx.constant("x", vec![d("t", 4), d("n", 3)]);
        let w = ctx.param("w", vec![d("n", 3), d("o", 2)]);
        let b = ctx.param("b", vec![d("o", 2)]);
        let root = x
            .matmul(&w)
            .unwrap()
            .add(&b)
            .unwrap()
            .relu()
            .mul_scalar(0.5);
        let plan = Plan::compile(&root, &spec()).unwrap();
        assert_eq!(plan.steps().len(), 4);

        let w_data: Vec<f32> = (0..6).map(|i| 0.3 * i as f32 - 0.7).collect();
        let b_data = vec![0.1f32, -0.2];
        let mut exec = PlanExecutor::new(&plan, |label, _| match label {
            "w" => Some(w_data.clone()),
            "b" => Some(b_data.clone()),
            _ => None,
        })
        .unwrap();

        let x_data: Vec<f32> = (0..12).map(|i| (i as f32) * 0.37 - 2.0).collect();
        let mut got = vec![0.0f32; exec.output_len()];
        exec.run(&x_data, &mut got);

        let xt = Tensor::from_vec(x_data, [4, 3]);
        let wt = Tensor::from_vec(w_data.clone(), [3, 2]);
        let bt = Tensor::from_vec(b_data.clone(), [2]);
        let want = xt.matmul(&wt).add(&bt).relu().mul_scalar(0.5).to_vec();
        assert_eq!(got, want, "planned execution must be bitwise identical");
    }

    /// A chain long enough that liveness must reuse slots: the arena must
    /// be smaller than the sum of all step outputs.
    #[test]
    fn liveness_reuses_slots() {
        let ctx = SymCtx::new();
        let x = ctx.constant("x", vec![d("t", 8), d("n", 8)]);
        let mut cur = x.clone();
        for _ in 0..6 {
            cur = cur.relu().mul_scalar(1.01);
        }
        let plan = Plan::compile(&cur, &spec()).unwrap();
        let total: usize = plan
            .steps()
            .iter()
            .map(|s| plan.values()[s.output].len())
            .sum();
        assert!(
            plan.arena_len() < total,
            "arena {} should be < sum of outputs {}",
            plan.arena_len(),
            total
        );
        // A chain needs exactly two ping-pong slots.
        assert_eq!(plan.slots().len(), 2);
    }

    #[test]
    fn unsupported_op_is_rejected() {
        let ctx = SymCtx::new();
        let x = ctx.constant("x", vec![d("t", 4), d("n", 3)]);
        let root = x.softmax_last();
        let err = Plan::compile(&root, &spec()).unwrap_err();
        assert!(err.message.contains("softmax_last"), "{}", err.message);
    }

    #[test]
    fn unclassified_leaf_is_rejected() {
        let ctx = SymCtx::new();
        let x = ctx.constant("x", vec![d("t", 4), d("n", 3)]);
        let mystery = ctx.constant("mystery", vec![d("t", 4), d("n", 3)]);
        let root = x.add(&mystery).unwrap();
        let err = Plan::compile(&root, &spec()).unwrap_err();
        assert!(err.message.contains("mystery"), "{}", err.message);
    }

    #[test]
    fn stat_leaves_dedup_and_execute() {
        // Mirror the RevIn normalize/denormalize pattern: mu/std leaves
        // appear twice under the same label but compile to one step each.
        let ctx = SymCtx::new();
        let t = 5;
        let n = 3;
        let x = ctx.constant("x", vec![d("T", t), d("N", n)]);
        let stat_dims = vec![SymDim::anon(1), d("N", n)];
        let mu1 = ctx.constant("mu", stat_dims.clone());
        let std1 = ctx.constant("std", stat_dims.clone());
        let normed = x.sub(&mu1).unwrap().div(&std1).unwrap();
        let mu2 = ctx.constant("mu", stat_dims.clone());
        let std2 = ctx.constant("std", stat_dims);
        let root = normed.mul(&std2).unwrap().add(&mu2).unwrap();

        let spec = PlanSpec {
            input_label: "x".to_string(),
            col_mean_leaves: vec!["mu".to_string()],
            col_std_leaves: vec![("std".to_string(), 1e-5)],
            aux_labels: Vec::new(),
            precision: Precision::F32,
        };
        let plan = Plan::compile(&root, &spec).unwrap();
        let stat_steps = plan.steps().iter().filter(|s| s.sym_id.is_none()).count();
        assert_eq!(stat_steps, 2, "one ColMean + one ColStd");
        let aliased = plan
            .values()
            .iter()
            .filter(|v| v.sym_ids.len() == 2)
            .count();
        assert_eq!(aliased, 2, "mu and std each alias two symbolic leaves");

        // Round-trip: (x - mu)/std * std + mu == x up to fp — and exactly
        // the same fp as the dynamic ops.
        let x_data: Vec<f32> = (0..t * n).map(|i| (i as f32).sin() * 3.0).collect();
        let mut exec = PlanExecutor::new(&plan, |_, _| None).unwrap();
        let mut got = vec![0.0f32; exec.output_len()];
        exec.run(&x_data, &mut got);

        // Dynamic reference: compute stats the RevIn way.
        let mut mean = vec![0.0f32; n];
        let mut std = vec![0.0f32; n];
        for j in 0..n {
            let mut s = 0.0f32;
            for i in 0..t {
                s += x_data[i * n + j];
            }
            let mu = s / t as f32;
            let mut v = 0.0f32;
            for i in 0..t {
                let dd = x_data[i * n + j] - mu;
                v += dd * dd;
            }
            mean[j] = mu;
            std[j] = (v / t as f32 + 1e-5).sqrt();
        }
        let xt = Tensor::from_vec(x_data, [t, n]);
        let mu_t = Tensor::from_vec(mean, [1, n]);
        let std_t = Tensor::from_vec(std, [1, n]);
        let want = xt.sub(&mu_t).div(&std_t).mul(&std_t).add(&mu_t).to_vec();
        assert_eq!(got, want);
    }

    #[test]
    fn faults_corrupt_the_right_axis() {
        let ctx = SymCtx::new();
        let x = ctx.constant("x", vec![d("t", 4), d("n", 4)]);
        let w = ctx.param("w", vec![d("n", 4), d("o", 4)]);
        let root = x.matmul(&w).unwrap().relu().add(&x).unwrap();
        let plan = Plan::compile(&root, &spec()).unwrap();

        let mut p = plan.clone();
        p.inject_fault(PlanFault::ShrinkArena);
        assert_eq!(p.arena_len(), plan.arena_len() - 1);

        let mut p = plan.clone();
        p.inject_fault(PlanFault::SwapSchedule);
        assert_ne!(
            p.steps().iter().map(|s| s.sym_id).collect::<Vec<_>>(),
            plan.steps().iter().map(|s| s.sym_id).collect::<Vec<_>>()
        );

        let mut p = plan.clone();
        p.inject_fault(PlanFault::DropEdge);
        let edges = |pl: &Plan| pl.steps().iter().map(|s| s.inputs.len()).sum::<usize>();
        assert_eq!(edges(&p), edges(&plan) - 1);

        let mut p = plan.clone();
        p.inject_fault(PlanFault::OverlapSlots);
        let overlap = p.steps().iter().any(|s| {
            s.inputs.iter().any(|&v| {
                p.values()[v].slot.is_some() && p.values()[v].slot == p.values()[s.output].slot
            })
        });
        assert!(overlap, "some step output must now share an input's slot");
    }

    #[test]
    fn executor_rejects_aliasing_plan() {
        let ctx = SymCtx::new();
        let x = ctx.constant("x", vec![d("t", 4), d("n", 4)]);
        let root = x.relu().mul_scalar(2.0).relu();
        let mut plan = Plan::compile(&root, &spec()).unwrap();
        plan.inject_fault(PlanFault::OverlapSlots);
        let err = PlanExecutor::new(&plan, |_, _| None).unwrap_err();
        assert!(err.message.contains("aliases"), "{}", err.message);
    }
}
