//! In-tree deterministic pseudo-random number generation.
//!
//! The workspace builds with no external crates, so randomness is provided
//! by this xoshiro256++ generator seeded through SplitMix64 — the standard
//! pairing recommended by the xoshiro authors. Every model constructor and
//! data generator threads a [`SeededRng`] created by
//! [`seeded_rng`](crate::seeded_rng), which keeps runs reproducible
//! bit-for-bit across platforms (the generator is pure integer arithmetic).

use std::ops::{Range, RangeInclusive};

/// A seedable, portable PRNG (xoshiro256++).
///
/// Not cryptographically secure — it exists to make experiments
/// reproducible, not to produce secrets.
#[derive(Clone, Debug)]
pub struct SeededRng {
    s: [u64; 4],
}

impl SeededRng {
    /// Creates a generator whose stream is fully determined by `seed`.
    pub fn seed_from_u64(seed: u64) -> SeededRng {
        // SplitMix64 expands the 64-bit seed into the 256-bit state; it
        // cannot produce the all-zero state xoshiro must avoid.
        let mut x = seed;
        let mut next = || {
            x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = x;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        };
        SeededRng {
            s: [next(), next(), next(), next()],
        }
    }

    /// The next 64 uniformly random bits.
    pub fn next_u64(&mut self) -> u64 {
        let s = &mut self.s;
        let result = s[0].wrapping_add(s[3]).rotate_left(23).wrapping_add(s[0]);
        let t = s[1] << 17;
        s[2] ^= s[0];
        s[3] ^= s[1];
        s[1] ^= s[2];
        s[0] ^= s[3];
        s[2] ^= t;
        s[3] = s[3].rotate_left(45);
        result
    }

    /// A uniform sample of type `T` (see [`Sample`] for the distributions).
    pub fn gen<T: Sample>(&mut self) -> T {
        T::sample(self)
    }

    /// A uniform sample from `range`.
    ///
    /// Supports half-open `f32` ranges and half-open / inclusive integer
    /// ranges. Panics on an empty range.
    pub fn gen_range<R: SampleRange>(&mut self, range: R) -> R::Output {
        range.sample(self)
    }
}

/// Types [`SeededRng::gen`] can produce.
pub trait Sample: Sized {
    /// Draws one sample from `rng`.
    fn sample(rng: &mut SeededRng) -> Self;
}

impl Sample for u64 {
    fn sample(rng: &mut SeededRng) -> u64 {
        rng.next_u64()
    }
}

impl Sample for u32 {
    fn sample(rng: &mut SeededRng) -> u32 {
        (rng.next_u64() >> 32) as u32
    }
}

impl Sample for f32 {
    /// Uniform in `[0, 1)` with 24 bits of precision.
    fn sample(rng: &mut SeededRng) -> f32 {
        (rng.next_u64() >> 40) as f32 * (1.0 / (1u64 << 24) as f32)
    }
}

impl Sample for f64 {
    /// Uniform in `[0, 1)` with 53 bits of precision.
    fn sample(rng: &mut SeededRng) -> f64 {
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Sample for bool {
    /// Fair coin.
    fn sample(rng: &mut SeededRng) -> bool {
        rng.next_u64() & 1 == 1
    }
}

/// Ranges [`SeededRng::gen_range`] can sample from.
pub trait SampleRange {
    /// The sampled element type.
    type Output;
    /// Draws one sample from `rng` within the range.
    fn sample(self, rng: &mut SeededRng) -> Self::Output;
}

impl SampleRange for Range<f32> {
    type Output = f32;
    fn sample(self, rng: &mut SeededRng) -> f32 {
        assert!(self.start < self.end, "gen_range: empty range");
        self.start + rng.gen::<f32>() * (self.end - self.start)
    }
}

impl SampleRange for Range<f64> {
    type Output = f64;
    fn sample(self, rng: &mut SeededRng) -> f64 {
        assert!(self.start < self.end, "gen_range: empty range");
        self.start + rng.gen::<f64>() * (self.end - self.start)
    }
}

/// Uniform integer in `[0, span)`. Uses Lemire-style rejection to avoid
/// modulo bias.
fn uniform_below(rng: &mut SeededRng, span: u64) -> u64 {
    debug_assert!(span > 0);
    let threshold = span.wrapping_neg() % span;
    loop {
        let r = rng.next_u64();
        if r >= threshold {
            return r % span;
        }
    }
}

macro_rules! impl_int_ranges {
    ($($t:ty),*) => {$(
        impl SampleRange for Range<$t> {
            type Output = $t;
            fn sample(self, rng: &mut SeededRng) -> $t {
                assert!(self.start < self.end, "gen_range: empty range");
                let span = (self.end as i128 - self.start as i128) as u64;
                (self.start as i128 + uniform_below(rng, span) as i128) as $t
            }
        }
        impl SampleRange for RangeInclusive<$t> {
            type Output = $t;
            fn sample(self, rng: &mut SeededRng) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "gen_range: empty range");
                let span = (hi as i128 - lo as i128 + 1) as u64;
                (lo as i128 + uniform_below(rng, span) as i128) as $t
            }
        }
    )*};
}

impl_int_ranges!(i32, i64, u32, u64, usize);

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn same_seed_same_stream() {
        let mut a = SeededRng::seed_from_u64(7);
        let mut b = SeededRng::seed_from_u64(7);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn different_seeds_diverge() {
        let mut a = SeededRng::seed_from_u64(1);
        let mut b = SeededRng::seed_from_u64(2);
        let same = (0..16).filter(|_| a.next_u64() == b.next_u64()).count();
        assert!(same < 2);
    }

    #[test]
    fn f32_in_unit_interval() {
        let mut rng = SeededRng::seed_from_u64(3);
        for _ in 0..10_000 {
            let x: f32 = rng.gen();
            assert!((0.0..1.0).contains(&x), "{x}");
        }
    }

    #[test]
    fn f32_mean_is_half() {
        let mut rng = SeededRng::seed_from_u64(4);
        let n = 100_000;
        let sum: f64 = (0..n).map(|_| rng.gen::<f32>() as f64).sum();
        let mean = sum / n as f64;
        assert!((mean - 0.5).abs() < 0.01, "mean {mean}");
    }

    #[test]
    fn float_range_respects_bounds() {
        let mut rng = SeededRng::seed_from_u64(5);
        for _ in 0..10_000 {
            let x = rng.gen_range(-2.5f32..7.25);
            assert!((-2.5..7.25).contains(&x), "{x}");
        }
    }

    #[test]
    fn int_range_inclusive_covers_all_values() {
        let mut rng = SeededRng::seed_from_u64(6);
        let mut seen = [false; 5];
        for _ in 0..1_000 {
            let v = rng.gen_range(1..=5);
            seen[(v - 1) as usize] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }

    #[test]
    fn int_range_handles_negatives() {
        let mut rng = SeededRng::seed_from_u64(7);
        for _ in 0..1_000 {
            let v = rng.gen_range(-3i32..3);
            assert!((-3..3).contains(&v), "{v}");
        }
    }

    #[test]
    fn usize_range_bounds() {
        let mut rng = SeededRng::seed_from_u64(8);
        for _ in 0..1_000 {
            let v = rng.gen_range(2usize..9);
            assert!((2..9).contains(&v));
        }
    }

    #[test]
    #[should_panic(expected = "empty range")]
    fn empty_range_panics() {
        let mut rng = SeededRng::seed_from_u64(9);
        let _ = rng.gen_range(1.0f32..1.0);
    }
}
