//! Feature-gated numeric sanitizer (`--features sanitize`).
//!
//! When enabled, every op output is scanned as it is recorded into the
//! graph; the first offending value aborts with the op's provenance chain
//! so NaN poisoning is caught at the op that produced it, not thousands of
//! nodes later in a loss.
//!
//! The default mode checks for NaN only: infinities are legitimate in this
//! workspace (attention masks add `NEG_INF` to scores before softmax).
//! Call [`set_mode`] with [`Mode::NanAndInf`] inside code regions where no
//! infinity is expected.

use std::cell::Cell;

use crate::tensor::Tensor;

/// What the sanitizer treats as a trip.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Default)]
pub enum Mode {
    /// Flag NaN outputs only (default; `-inf` masks are legal).
    #[default]
    NanOnly,
    /// Flag both NaN and ±Inf outputs.
    NanAndInf,
}

thread_local! {
    static MODE: Cell<Mode> = const { Cell::new(Mode::NanOnly) };
}

/// Sets the sanitizer trip mode for the current thread.
pub fn set_mode(mode: Mode) {
    MODE.with(|m| m.set(mode));
}

/// Current sanitizer trip mode.
pub fn mode() -> Mode {
    MODE.with(|m| m.get())
}

/// Scans a freshly computed op output; panics with the provenance chain of
/// the inputs on the first offending value. Called from `Tensor::from_op`
/// before the node is constructed, so the chain is reconstructed from the
/// parents (the offending node itself does not exist yet).
pub(crate) fn check_op_output(op: &'static str, data: &[f32], parents: &[Tensor]) {
    let bad = |v: f32| match mode() {
        Mode::NanOnly => v.is_nan(),
        Mode::NanAndInf => !v.is_finite(),
    };
    let Some(idx) = data.iter().position(|&v| bad(v)) else {
        return;
    };
    let mut chain = String::new();
    for p in parents {
        chain.push_str(&p.provenance());
    }
    if chain.is_empty() {
        chain.push_str("(no recorded parents)\n");
    }
    eprintln!(
        "sanitize: op `{op}` produced {} at flat index {idx}\ninput provenance:\n{chain}",
        data[idx]
    );
    panic!(
        "sanitize: non-finite output from op `{op}` ({} at index {idx})",
        data[idx]
    );
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn nan_output_trips_with_op_name() {
        let err = std::panic::catch_unwind(|| {
            let x = Tensor::param(vec![-1.0, 4.0], [2]);
            let _ = x.sqrt(); // sqrt(-1) = NaN
        })
        .expect_err("sanitizer must trip on NaN");
        let msg = err.downcast_ref::<String>().expect("panic with message");
        assert!(msg.contains("sqrt"), "message names the op: {msg}");
    }

    #[test]
    fn inf_passes_by_default_but_trips_in_strict_mode() {
        let x = Tensor::from_vec(vec![1e30, 1e30], [2]);
        // Overflow to +inf is tolerated in NanOnly mode.
        let y = x.mul(&x);
        assert!(y.to_vec()[0].is_infinite());

        set_mode(Mode::NanAndInf);
        let trip = std::panic::catch_unwind(|| {
            let x = Tensor::from_vec(vec![1e30, 1e30], [2]);
            let _ = x.mul(&x);
        });
        set_mode(Mode::NanOnly);
        assert!(trip.is_err(), "strict mode must trip on Inf");
    }
}
