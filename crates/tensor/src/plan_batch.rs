//! Batched multi-window planned training.
//!
//! [`Plan::compile_training_batched`] augments a per-window training plan
//! (one forward + reverse schedule, see [`crate::plan_train`]) with batch
//! metadata: a lane count `B`, a per-lane arena stride, and a pinned list
//! of [`ReduceStep`]s. [`BatchTrainExecutor`] then replays that schedule
//! once per staged window on `B` private lanes — fanned out over the
//! worker pool so each worker owns a disjoint, contiguous window range,
//! clamped to the physically available parallelism — folds the
//! per-window gradients into lane 0, and applies the fused optimizer
//! exactly once per batch.
//!
//! ## Determinism contract
//!
//! The reduction order is keyed by *window index*, never by thread id or
//! arrival order: lane 0 starts from window 0's gradients and the pinned
//! [`ReduceStep`] sequence adds windows `1, 2, …, B-1` element-wise in
//! exactly that order (update-schedule order within a window). Each
//! lane's replay is the serial single-window schedule — kernels called
//! from inside a pool region collapse to their serial paths — so any
//! `TIMEKD_THREADS` and any shard partition is bitwise identical to the
//! serial window loop.

use crate::parallel::{effective_threads, hardware_threads, parallel_for, with_serial_region};
use crate::plan::{Plan, PlanError, PlanSpec, ValueId};
use crate::plan_train::{TrainExecutor, TrainSpec};
use crate::symbolic::SymbolicTensor;

/// One pinned cross-window gradient reduction: add lane `src_lane`'s
/// copy of gradient `grad` into lane 0's copy, element-wise ascending.
/// A batched plan orders its steps by ascending `src_lane` (window
/// index) first and update-schedule position second; `timekd-check
/// --plan` re-derives and enforces exactly that sequence.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct ReduceStep {
    /// The gradient value folded into lane 0.
    pub grad: ValueId,
    /// The source lane (window index), always in `1..batch`.
    pub src_lane: usize,
}

impl Plan {
    /// Compiles a batched training plan: the per-window schedule of
    /// [`Plan::compile_training`] plus batch metadata — `batch` lanes, a
    /// lane stride of one full arena (lanes are physically disjoint),
    /// and the pinned gradient-reduction sequence described on
    /// [`ReduceStep`]. `batch == 1` degenerates to the per-window plan
    /// with an empty reduction list.
    pub fn compile_training_batched(
        root: &SymbolicTensor,
        spec: &PlanSpec,
        train: &TrainSpec,
        batch: usize,
    ) -> Result<Plan, PlanError> {
        if batch == 0 {
            return Err(PlanError::new("batched training plan requires batch ≥ 1"));
        }
        let mut plan = Plan::compile_training(root, spec, train)?;
        plan.batch = batch;
        plan.lane_stride = plan.arena_len();
        let mut reduce_steps =
            Vec::with_capacity(batch.saturating_sub(1) * plan.update_steps().len());
        for lane in 1..batch {
            for u in plan.update_steps() {
                reduce_steps.push(ReduceStep {
                    grad: u.grad,
                    src_lane: lane,
                });
            }
        }
        plan.reduce_steps = reduce_steps;
        Ok(plan)
    }
}

/// A [`ReduceStep`] resolved to its arena region at bind time.
#[derive(Clone, Copy, Debug)]
struct ReduceExec {
    src_lane: usize,
    off: usize,
    len: usize,
}

/// Replays a batched training [`Plan`] over up to `B` windows per step
/// with zero steady-state heap allocation. Every lane is a private
/// [`TrainExecutor`] (its own arena, adjoint scratch, and parameter
/// copies), so parallel window replays never share mutable state; lane 0
/// additionally owns the optimizer moments and the authoritative
/// parameters, which are broadcast back to the other lanes after each
/// update.
#[derive(Debug)]
pub struct BatchTrainExecutor {
    /// Lane 0 owns the optimizer; lanes `1..` are gradient factories.
    lanes: Vec<TrainExecutor>,
    reduce: Vec<ReduceExec>,
    /// Staged window inputs, `batch × input_len`, row-major by window.
    x_buf: Vec<f32>,
    batch: usize,
    input_len: usize,
}

impl BatchTrainExecutor {
    /// Builds `plan.batch()` lanes, resolving parameters through
    /// `param_source` once per lane so every lane starts from identical
    /// weights. Fails on plans without batch metadata (use
    /// [`Plan::compile_training_batched`]) and on plans whose lane
    /// stride would overlap per-lane arenas.
    pub fn new(
        plan: &Plan,
        mut param_source: impl FnMut(&str, &[usize]) -> Option<Vec<f32>>,
    ) -> Result<BatchTrainExecutor, PlanError> {
        let batch = plan.batch();
        if batch == 0 {
            return Err(PlanError::new(
                "plan has no batch metadata; use Plan::compile_training_batched",
            ));
        }
        if plan.lane_stride() < plan.arena_len() {
            return Err(PlanError::new(
                "batched plan's lane stride overlaps per-lane arenas; refusing to bind",
            ));
        }
        let mut lanes = Vec::with_capacity(batch);
        for _ in 0..batch {
            lanes.push(TrainExecutor::new(plan, |l, d| param_source(l, d))?);
        }
        let mut reduce = Vec::with_capacity(plan.reduce_steps().len());
        for r in plan.reduce_steps() {
            if r.src_lane == 0 || r.src_lane >= batch {
                return Err(PlanError::new(format!(
                    "reduce step reads lane {} outside 1..{batch}",
                    r.src_lane
                )));
            }
            let (off, len) = plan
                .arena_range(r.grad)
                .ok_or_else(|| PlanError::new("reduce step names a gradient with no arena slot"))?;
            reduce.push(ReduceExec {
                src_lane: r.src_lane,
                off,
                len,
            });
        }
        let input_len = lanes[0].input_len();
        Ok(BatchTrainExecutor {
            x_buf: vec![0.0; batch * input_len],
            lanes,
            reduce,
            batch,
            input_len,
        })
    }

    /// Stages window `w`'s input and target ahead of [`Self::run_batch`].
    pub fn stage_window(&mut self, w: usize, x: &[f32], y: &[f32]) {
        assert!(w < self.batch, "window index out of range");
        assert_eq!(x.len(), self.input_len, "input length mismatch");
        self.x_buf[w * self.input_len..(w + 1) * self.input_len].copy_from_slice(x);
        self.lanes[w].set_target(y);
    }

    /// Stages auxiliary feed `k` (indexed per
    /// [`crate::plan::PlanSpec::aux_labels`]) for window `w`.
    pub fn stage_aux(&mut self, w: usize, k: usize, data: &[f32]) {
        assert!(w < self.batch, "window index out of range");
        self.lanes[w].set_aux(k, data);
    }

    /// Runs one batched step over the first `count` staged windows:
    /// parallel per-window forward+backward replays, the pinned gradient
    /// reduction into lane 0, then lane-0 gradient clipping and optimizer
    /// update. Lane 0's parameters are canonical; the other lanes read
    /// them via a broadcast (parallel replay) or an O(1) buffer loan
    /// (serial replay) at the start of the next replay. `count < batch`
    /// serves an epoch's tail; reductions sourced from unstaged lanes
    /// are skipped. Read per-window losses back with [`Self::lane_loss`].
    pub fn run_batch(&mut self, count: usize) {
        assert!(count >= 1 && count <= self.batch, "count outside 1..=batch");
        self.replay_lanes_block(count);
        self.reduce_plan_loop(count);
        self.lanes[0].run_grad_clip();
        self.lanes[0].run_optimizer();
    }

    /// Fans the first `count` window replays out over the worker pool.
    /// Each block owns a contiguous window range computed from `count`
    /// and the block count alone, so the partition is independent of
    /// scheduling; lane replays collapse to the serial single-window
    /// schedule inside the pool region, making every partition
    /// bitwise-identical.
    ///
    /// The shard count is additionally clamped to the *physically*
    /// available parallelism: an oversubscribed pool (`TIMEKD_THREADS`
    /// above the hardware) would only time-slice the same cores, and
    /// every slice re-streams a full lane arena through the cache. The
    /// clamp is pure scheduling — the determinism contract above means
    /// no partition can change a single bit. When the shards collapse to
    /// one block the lane loop runs inline inside an explicit serial
    /// region, so lane replays keep the batch region's "no op-level
    /// fan-out" contract either way.
    fn replay_lanes_block(&mut self, count: usize) {
        let blocks = effective_threads().min(hardware_threads()).min(count);
        let il = self.input_len;
        if blocks <= 1 {
            let (lane0, rest) = self.lanes.split_at_mut(1);
            let x_buf = &self.x_buf;
            with_serial_region(|| {
                lane0[0].run_forward_backward(&x_buf[..il]);
                for (i, lane) in rest.iter_mut().take(count.saturating_sub(1)).enumerate() {
                    let w = i + 1;
                    // Lend lane 0's canonical parameters to lane `w` for
                    // its replay: an O(1) buffer swap instead of a full
                    // broadcast copy, possible only because the lanes run
                    // one at a time here.
                    std::mem::swap(&mut lane0[0].fwd.params, &mut lane.fwd.params);
                    lane.run_forward_backward(&x_buf[w * il..(w + 1) * il]);
                    std::mem::swap(&mut lane0[0].fwd.params, &mut lane.fwd.params);
                }
            });
            return;
        }
        // Concurrent lanes each need their own copy of the post-update
        // parameters; refresh them from lane 0 just before the fan-out.
        self.broadcast_params_block();
        let lanes_addr = self.lanes.as_mut_ptr() as usize;
        let x_buf = &self.x_buf;
        parallel_for(blocks, |b| {
            let base = count / blocks;
            let extra = count % blocks;
            let start = b * base + b.min(extra);
            let len = base + usize::from(b < extra);
            for w in start..start + len {
                // SAFETY: window `w` belongs to exactly one block, so no
                // other task touches lane `w`; the lane buffer outlives
                // the (blocking) parallel region.
                let lane = unsafe { &mut *(lanes_addr as *mut TrainExecutor).add(w) };
                lane.run_forward_backward(&x_buf[w * il..(w + 1) * il]);
            }
        });
    }

    /// Folds per-window gradients into lane 0 in the pinned order:
    /// ascending source lane (window index) first, update-schedule order
    /// within a lane. The element-wise ascending adds reproduce the
    /// serial window loop's accumulation fold bitwise.
    fn reduce_plan_loop(&mut self, count: usize) {
        let (dst_lane, src_lanes) = self.lanes.split_at_mut(1);
        let dst = &mut dst_lane[0].fwd.arena;
        for r in &self.reduce {
            if r.src_lane >= count {
                continue;
            }
            let src = &src_lanes[r.src_lane - 1].fwd.arena[r.off..r.off + r.len];
            for (d, s) in dst[r.off..r.off + r.len].iter_mut().zip(src) {
                *d += *s;
            }
        }
    }

    /// Copies lane 0's post-update parameters into every other lane so a
    /// *concurrent* replay reads the new weights; the serial replay path
    /// loans lane 0's buffers out instead and never calls this.
    fn broadcast_params_block(&mut self) {
        let (lane0, rest) = self.lanes.split_at_mut(1);
        let src = &lane0[0].fwd.params;
        for lane in rest.iter_mut() {
            for (dst, s) in lane.fwd.params.iter_mut().zip(src.iter()) {
                dst.copy_from_slice(s);
            }
        }
    }

    /// The lane count `B` the plan was compiled for.
    pub fn batch(&self) -> usize {
        self.batch
    }

    /// Flattened input length of one window.
    pub fn input_len(&self) -> usize {
        self.input_len
    }

    /// Flattened target length of one window.
    pub fn target_len(&self) -> usize {
        self.lanes[0].target_len()
    }

    /// Length of auxiliary feed `k`, or 0 when the plan never reads it.
    pub fn aux_len(&self, k: usize) -> usize {
        self.lanes[0].aux_len(k)
    }

    /// Number of bound parameters (plan binding order).
    pub fn num_params(&self) -> usize {
        self.lanes[0].num_params()
    }

    /// Parameter `idx`'s current data; lane 0 is authoritative.
    pub fn param_data(&self, idx: usize) -> &[f32] {
        self.lanes[0].param_data(idx)
    }

    /// The optimizer's step count (AdamW; always 0 for SGD).
    pub fn step_count(&self) -> u64 {
        self.lanes[0].step_count()
    }

    /// Seeds the AdamW step counter, mirroring
    /// [`TrainExecutor::set_step_count`].
    pub fn set_step_count(&mut self, n: u64) {
        self.lanes[0].set_step_count(n);
    }

    /// Overrides the learning rate for subsequent batches.
    pub fn set_lr(&mut self, lr: f32) {
        self.lanes[0].set_lr(lr);
    }

    /// Window `w`'s loss from the latest [`Self::run_batch`].
    pub fn lane_loss(&self, w: usize) -> f32 {
        self.lanes[w].loss()
    }

    /// Reads `len` floats at arena offset `off` in window `w`'s lane.
    /// Pair with [`Plan::value_for_sym`] and [`Plan::arena_range`] to
    /// pull pinned component values out of a finished batch.
    pub fn lane_value(&self, w: usize, off: usize, len: usize) -> &[f32] {
        self.lanes[w].arena_value(off, len)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parallel::with_threads;
    use crate::plan::{PlanFault, Precision, ValueSource};
    use crate::plan_train::PlanOptimizer;
    use crate::symbolic::{SymCtx, SymDim};
    use crate::{seeded_rng, Tensor};

    fn d(name: &str, size: usize) -> SymDim {
        SymDim::new(name, size)
    }

    fn spec() -> PlanSpec {
        PlanSpec {
            input_label: "x".to_string(),
            col_mean_leaves: Vec::new(),
            col_std_leaves: Vec::new(),
            aux_labels: Vec::new(),
            precision: Precision::F32,
        }
    }

    fn adamw() -> PlanOptimizer {
        PlanOptimizer::AdamW {
            lr: 0.05,
            beta1: 0.9,
            beta2: 0.999,
            eps: 1e-8,
            weight_decay: 0.01,
        }
    }

    /// Symbolic mirror of the dynamic graph used in the reference below:
    /// loss = mean(smooth_l1(relu(x·w + bias), y)).
    fn mlp_loss(ctx: &SymCtx) -> SymbolicTensor {
        let x = ctx.constant("x", vec![d("t", 4), d("in", 3)]);
        let y = ctx.constant("y", vec![d("t", 4), d("out", 2)]);
        let w = ctx.param("w", vec![d("in", 3), d("out", 2)]);
        let b = ctx.param("bias", vec![d("out", 2)]);
        let h = x.matmul(&w).unwrap().add(&b).unwrap().relu();
        h.smooth_l1(&y).unwrap().mean()
    }

    fn param_bank() -> (Vec<f32>, Vec<f32>) {
        let mut rng = seeded_rng(0x5EED);
        let w = Tensor::randn([3, 2], 1.0, &mut rng).to_vec();
        let b = Tensor::randn([2], 1.0, &mut rng).to_vec();
        (w, b)
    }

    fn windows(n: usize) -> (Vec<Vec<f32>>, Vec<Vec<f32>>) {
        let mut rng = seeded_rng(0xBEEF);
        let mut xs = Vec::new();
        let mut ys = Vec::new();
        for _ in 0..n {
            xs.push(Tensor::randn([12], 1.0, &mut rng).to_vec());
            ys.push(Tensor::randn([8], 1.0, &mut rng).to_vec());
        }
        (xs, ys)
    }

    /// Mirror of `timekd_nn::AdamW` (the nn crate is downstream of this
    /// one, so the dynamic reference is restated here verbatim).
    struct DynAdamW {
        lr: f32,
        step_count: u64,
        state: std::collections::HashMap<u64, (Vec<f32>, Vec<f32>)>,
    }

    fn dyn_adamw() -> DynAdamW {
        DynAdamW {
            lr: 0.05,
            step_count: 0,
            state: std::collections::HashMap::new(),
        }
    }

    impl DynAdamW {
        fn step(&mut self, params: &[Tensor]) {
            let (beta1, beta2, eps, weight_decay) = (0.9f32, 0.999f32, 1e-8f32, 0.01f32);
            self.step_count += 1;
            let t = self.step_count as f32;
            let bias1 = 1.0 - beta1.powf(t);
            let bias2 = 1.0 - beta2.powf(t);
            for p in params {
                let Some(grad) = p.grad() else { continue };
                let n = p.num_elements();
                let (m, v) = self
                    .state
                    .entry(p.id())
                    .or_insert_with(|| (vec![0.0; n], vec![0.0; n]));
                let lr = self.lr;
                p.update_data(|data| {
                    for i in 0..n {
                        let g = grad[i];
                        m[i] = beta1 * m[i] + (1.0 - beta1) * g;
                        v[i] = beta2 * v[i] + (1.0 - beta2) * g * g;
                        let m_hat = m[i] / bias1;
                        let v_hat = v[i] / bias2;
                        data[i] -= lr * (m_hat / (v_hat.sqrt() + eps) + weight_decay * data[i]);
                    }
                });
            }
        }
    }

    /// The serial micro-batched oracle: accumulate each chunk's window
    /// gradients in ascending window order on the live autograd graph,
    /// then take exactly one optimizer step per chunk.
    fn dynamic_microbatch_train(
        w0: &[f32],
        b0: &[f32],
        xs: &[Vec<f32>],
        ys: &[Vec<f32>],
        batch: usize,
        sgd_lr: Option<f32>,
    ) -> (Vec<f32>, Vec<f32>, Vec<f32>) {
        let w = Tensor::param(w0.to_vec(), [3, 2]);
        let b = Tensor::param(b0.to_vec(), [2]);
        let mut opt = dyn_adamw();
        let mut losses = Vec::new();
        let mut i = 0;
        while i < xs.len() {
            let count = batch.min(xs.len() - i);
            w.zero_grad();
            b.zero_grad();
            for k in 0..count {
                let x = Tensor::from_vec(xs[i + k].clone(), [4, 3]);
                let y = Tensor::from_vec(ys[i + k].clone(), [4, 2]);
                let h = x.matmul(&w).add(&b).relu();
                let loss = h.smooth_l1(&y).mean();
                losses.push(loss.item());
                loss.backward();
            }
            match sgd_lr {
                Some(lr) => {
                    for p in [&w, &b] {
                        if let Some(g) = p.grad() {
                            p.update_data(|data| {
                                for (pi, gi) in data.iter_mut().zip(&g) {
                                    *pi -= lr * gi;
                                }
                            });
                        }
                    }
                }
                None => opt.step(&[w.clone(), b.clone()]),
            }
            i += count;
        }
        (w.to_vec(), b.to_vec(), losses)
    }

    fn batched_plan(optimizer: PlanOptimizer, batch: usize) -> (Plan, usize, usize) {
        let ctx = SymCtx::new();
        let loss = mlp_loss(&ctx);
        let plan =
            Plan::compile_training_batched(&loss, &spec(), &TrainSpec::new("y", optimizer), batch)
                .expect("batched plan compiles");
        let labels: Vec<String> = plan
            .values()
            .iter()
            .filter(|v| v.source == ValueSource::Param)
            .map(|v| v.label.clone())
            .collect();
        let wi = labels.iter().position(|l| l == "w").unwrap();
        let bi = labels.iter().position(|l| l == "bias").unwrap();
        (plan, wi, bi)
    }

    fn batched_train(
        optimizer: PlanOptimizer,
        w0: &[f32],
        b0: &[f32],
        xs: &[Vec<f32>],
        ys: &[Vec<f32>],
        batch: usize,
    ) -> (Vec<f32>, Vec<f32>, Vec<f32>) {
        let (plan, wi, bi) = batched_plan(optimizer, batch);
        let mut exec = BatchTrainExecutor::new(&plan, |label, _| match label {
            "w" => Some(w0.to_vec()),
            "bias" => Some(b0.to_vec()),
            _ => None,
        })
        .expect("batched executor binds");
        let mut losses = Vec::new();
        let mut i = 0;
        while i < xs.len() {
            let count = batch.min(xs.len() - i);
            for k in 0..count {
                exec.stage_window(k, &xs[i + k], &ys[i + k]);
            }
            exec.run_batch(count);
            for k in 0..count {
                losses.push(exec.lane_loss(k));
            }
            i += count;
        }
        (
            exec.param_data(wi).to_vec(),
            exec.param_data(bi).to_vec(),
            losses,
        )
    }

    fn bits(v: &[f32]) -> Vec<u32> {
        v.iter().map(|x| x.to_bits()).collect()
    }

    #[test]
    fn batched_training_matches_dynamic_microbatch_grid() {
        let (w0, b0) = param_bank();
        // 7 windows: uneven shards at B ∈ {2, 5} and a tail chunk at
        // every batch that does not divide 7.
        let (xs, ys) = windows(7);
        for &threads in &[1usize, 2, 5] {
            for &batch in &[1usize, 2, 5, 7] {
                let (dw, db, dl) = dynamic_microbatch_train(&w0, &b0, &xs, &ys, batch, Some(0.1));
                let (pw, pb, pl) = with_threads(threads, || {
                    batched_train(PlanOptimizer::Sgd { lr: 0.1 }, &w0, &b0, &xs, &ys, batch)
                });
                assert_eq!(dw, pw, "SGD weights t={threads} B={batch}");
                assert_eq!(db, pb, "SGD bias t={threads} B={batch}");
                assert_eq!(bits(&dl), bits(&pl), "SGD losses t={threads} B={batch}");

                let (dw, db, dl) = dynamic_microbatch_train(&w0, &b0, &xs, &ys, batch, None);
                let (pw, pb, pl) = with_threads(threads, || {
                    batched_train(adamw(), &w0, &b0, &xs, &ys, batch)
                });
                assert_eq!(dw, pw, "AdamW weights t={threads} B={batch}");
                assert_eq!(db, pb, "AdamW bias t={threads} B={batch}");
                assert_eq!(bits(&dl), bits(&pl), "AdamW losses t={threads} B={batch}");
            }
        }
    }

    #[test]
    fn batch_one_is_bitwise_the_per_window_executor() {
        let (w0, b0) = param_bank();
        let (xs, ys) = windows(5);
        let ctx = SymCtx::new();
        let loss = mlp_loss(&ctx);
        let plan = Plan::compile_training(&loss, &spec(), &TrainSpec::new("y", adamw()))
            .expect("per-window plan compiles");
        let mut exec = TrainExecutor::new(&plan, |label, _| match label {
            "w" => Some(w0.to_vec()),
            "bias" => Some(b0.to_vec()),
            _ => None,
        })
        .expect("per-window executor binds");
        let mut serial_losses = Vec::new();
        for (xv, yv) in xs.iter().zip(&ys) {
            serial_losses.push(exec.run_train_step(xv, yv));
        }
        let (pw, pb, pl) = batched_train(adamw(), &w0, &b0, &xs, &ys, 1);
        assert_eq!(exec.param_data(0), &pw[..], "param 0 diverges at B=1");
        assert_eq!(exec.param_data(1), &pb[..], "param 1 diverges at B=1");
        assert_eq!(bits(&serial_losses), bits(&pl), "losses diverge at B=1");
    }

    #[test]
    fn batch_metadata_pins_the_reduction_order() {
        let (plan, _, _) = batched_plan(adamw(), 4);
        assert_eq!(plan.batch(), 4);
        assert_eq!(plan.lane_stride(), plan.arena_len());
        let upd = plan.update_steps();
        let reduce = plan.reduce_steps();
        assert_eq!(reduce.len(), 3 * upd.len(), "one pass per extra lane");
        for (i, r) in reduce.iter().enumerate() {
            let lane = 1 + i / upd.len();
            let u = i % upd.len();
            assert_eq!(r.src_lane, lane, "step {i} lane order");
            assert_eq!(r.grad, upd[u].grad, "step {i} grad order");
        }
    }

    #[test]
    fn per_window_plan_carries_no_batch_metadata() {
        let ctx = SymCtx::new();
        let loss = mlp_loss(&ctx);
        let plan = Plan::compile_training(&loss, &spec(), &TrainSpec::new("y", adamw()))
            .expect("per-window plan compiles");
        assert_eq!(plan.batch(), 0);
        assert_eq!(plan.lane_stride(), 0);
        assert!(plan.reduce_steps().is_empty());
        let err = BatchTrainExecutor::new(&plan, |_, _| None)
            .err()
            .expect("binding a per-window plan fails");
        assert!(
            err.to_string().contains("batch metadata"),
            "unexpected error: {err}"
        );
    }

    #[test]
    fn zero_batch_is_rejected_at_compile() {
        let ctx = SymCtx::new();
        let loss = mlp_loss(&ctx);
        let err = Plan::compile_training_batched(&loss, &spec(), &TrainSpec::new("y", adamw()), 0)
            .err()
            .expect("batch 0 rejected");
        assert!(err.to_string().contains("batch ≥ 1"), "unexpected: {err}");
    }

    #[test]
    fn overlapping_lane_arenas_are_rejected_at_bind() {
        let (w0, b0) = param_bank();
        let (mut plan, _, _) = batched_plan(adamw(), 2);
        plan.inject_fault(PlanFault::OverlapLaneArenas);
        let err = BatchTrainExecutor::new(&plan, |label, _| match label {
            "w" => Some(w0.to_vec()),
            "bias" => Some(b0.to_vec()),
            _ => None,
        })
        .err()
        .expect("overlapping lanes rejected");
        assert!(
            err.to_string().contains("lane stride overlaps"),
            "unexpected error: {err}"
        );
    }
}
