//! Forecast-serving layer for the TimeKD reproduction.
//!
//! `timekd-serve` turns a frozen, plan-compiled student into a network
//! service with four moving parts, all dependency-free on top of
//! `std::net`:
//!
//! * **Registry** ([`registry`]) — versioned on-disk model store
//!   (`v<N>/manifest.json` + `params.bin`). Loading re-traces and
//!   recompiles the forecast plan from the manifest and cross-checks
//!   every parameter blob, so faults surface as typed
//!   [`RegistryError`]s at load time, never panics at serve time.
//! * **Micro-batcher** — concurrent `POST /forecast` requests fuse into
//!   planned rounds of up to `micro_batch` executor lanes; each response
//!   is bitwise identical to a single-request `PlannedStudent` forecast.
//! * **Hot-swap** — `POST /admin/activate` loads and validates a version
//!   fully before atomically replacing the shared model `Arc`. In-flight
//!   rounds drain on the version they started with; a rejected swap
//!   leaves the old version serving.
//! * **Tenant windows** ([`tenants`]) — `/observe` feeds per-tenant
//!   sliding histories that `/forecast {"tenant": ...}` reads back.
//!
//! `GET /metrics` renders the `timekd-obs` counters plus per-endpoint
//! log-bucket latency histograms as JSON — the same counters the
//! `serve_load` bench harness reports, so offline and online numbers are
//! sourced identically.

#![deny(
    unused_must_use,
    unused_imports,
    unused_variables,
    dead_code,
    unreachable_patterns,
    missing_debug_implementations
)]
#![warn(missing_docs)]

mod batch;
pub mod http;
pub mod registry;
mod server;
pub mod tenants;

pub use batch::{ForecastJob, ForecastReply};
pub use registry::{
    fnv1a, latest_version, list_versions, load, publish, LoadedModel, Manifest, RegistryError,
    MANIFEST_SCHEMA,
};
pub use server::{ServeConfig, ServeError, Server, METRICS_SCHEMA};
pub use tenants::TenantCache;
