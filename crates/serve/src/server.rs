//! The serving front end: a blocking `TcpListener` accept loop, one
//! handler thread per connection, and JSON route handlers over the shared
//! server state. Forecasts are not computed on handler threads — they are
//! enqueued to the micro-batcher ([`crate::batch`]) and the handler blocks
//! on its private reply channel, so concurrent clients fuse into planned
//! batches automatically.
//!
//! Hot-swap: `/admin/activate` fully loads and validates the requested
//! registry version *before* swapping the shared `Arc<LoadedModel>` and
//! bumping the swap generation. A load failure leaves the old version
//! untouched and serving; the batcher drains any in-flight round on the
//! lanes it started with, so no response ever mixes versions.

use std::net::{SocketAddr, TcpListener, TcpStream};
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{mpsc, Arc, Mutex};
use std::thread::{self, JoinHandle};
use std::time::Duration;

use timekd_obs::json::Json;
use timekd_obs::{
    now_ns, Histogram, SERVE_ADMIN_LATENCY, SERVE_ERRORS, SERVE_FORECAST_LATENCY,
    SERVE_METRICS_LATENCY, SERVE_OBSERVE_LATENCY, SERVE_REQUESTS, SERVE_SWAPS, SERVE_SWAP_REJECTS,
};

use crate::batch::{batcher_thread, ForecastJob};
use crate::http::{read_request, write_response, ReadOutcome, Request};
use crate::registry::{self, LoadedModel, RegistryError};
use crate::tenants::TenantCache;

/// Schema identifier of the `/metrics` JSON document.
pub const METRICS_SCHEMA: &str = "timekd-serve-metrics/v1";

/// Configuration for [`Server::start`].
#[derive(Debug, Clone)]
pub struct ServeConfig {
    /// Bind address; use port 0 for an ephemeral port.
    pub addr: String,
    /// Registry root directory holding `v<N>/` version dirs.
    pub registry_root: PathBuf,
    /// Maximum forecast requests fused into one planned round.
    pub micro_batch: usize,
    /// Largest accepted request body in bytes.
    pub max_body_bytes: usize,
    /// Handler read-timeout (shutdown poll granularity) in milliseconds.
    pub read_timeout_ms: u64,
    /// Maximum concurrent connection-handler threads; connections past
    /// the cap are answered 503 and closed instead of spawning a thread.
    pub max_connections: usize,
    /// Enable the global observability gate at startup so `/metrics` and
    /// the latency histograms record.
    pub enable_obs: bool,
}

impl ServeConfig {
    /// Defaults: ephemeral loopback port, micro-batch 4, 1 MiB body cap,
    /// 25 ms shutdown poll, 256 concurrent connections, observability on.
    pub fn new(registry_root: impl Into<PathBuf>) -> ServeConfig {
        ServeConfig {
            addr: "127.0.0.1:0".to_string(),
            registry_root: registry_root.into(),
            micro_batch: 4,
            max_body_bytes: 1 << 20,
            read_timeout_ms: 25,
            max_connections: 256,
            enable_obs: true,
        }
    }
}

/// Startup failures.
#[derive(Debug)]
pub enum ServeError {
    /// The registry root holds no loadable version.
    EmptyRegistry(PathBuf),
    /// The boot version failed to load.
    Registry(RegistryError),
    /// Socket setup failed.
    Io(String),
}

impl std::fmt::Display for ServeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ServeError::EmptyRegistry(root) => {
                write!(f, "registry {} has no versions", root.display())
            }
            ServeError::Registry(e) => write!(f, "boot model failed to load: {e}"),
            ServeError::Io(msg) => write!(f, "socket error: {msg}"),
        }
    }
}

impl std::error::Error for ServeError {}

/// State shared between the accept loop, handler threads and the batcher.
#[derive(Debug)]
pub(crate) struct Shared {
    pub(crate) registry_root: PathBuf,
    pub(crate) micro_batch: usize,
    pub(crate) max_body_bytes: usize,
    pub(crate) read_timeout_ms: u64,
    pub(crate) max_connections: usize,
    pub(crate) tenants: TenantCache,
    pub(crate) shutdown: AtomicBool,
    current: Mutex<Arc<LoadedModel>>,
    generation: AtomicU64,
}

impl Shared {
    /// The currently active model (cheap `Arc` clone).
    pub(crate) fn current(&self) -> Arc<LoadedModel> {
        self.current
            .lock()
            .unwrap_or_else(|p| p.into_inner())
            .clone()
    }

    /// Monotonic swap counter; the batcher rebinds lanes when it changes.
    pub(crate) fn swap_generation(&self) -> u64 {
        self.generation.load(Ordering::Acquire)
    }

    fn activate(&self, model: LoadedModel) {
        let mut cur = self.current.lock().unwrap_or_else(|p| p.into_inner());
        *cur = Arc::new(model);
        self.generation.fetch_add(1, Ordering::Release);
    }
}

/// A running forecast server. Dropping without [`Server::shutdown`] leaves
/// the worker threads running until process exit.
#[derive(Debug)]
pub struct Server {
    addr: SocketAddr,
    shared: Arc<Shared>,
    accept: Option<JoinHandle<()>>,
    dispatch: Option<JoinHandle<()>>,
    batcher: Option<JoinHandle<()>>,
}

impl Server {
    /// Boots the latest registry version and starts serving.
    pub fn start(cfg: ServeConfig) -> Result<Server, ServeError> {
        if cfg.enable_obs {
            timekd_obs::set_enabled(true);
        }
        let version = registry::latest_version(&cfg.registry_root)
            .ok_or_else(|| ServeError::EmptyRegistry(cfg.registry_root.clone()))?;
        let model = registry::load(&cfg.registry_root, version).map_err(ServeError::Registry)?;
        let listener =
            TcpListener::bind(&cfg.addr).map_err(|e| ServeError::Io(format!("bind: {e}")))?;
        let addr = listener
            .local_addr()
            .map_err(|e| ServeError::Io(format!("local_addr: {e}")))?;

        let shared = Arc::new(Shared {
            registry_root: cfg.registry_root,
            micro_batch: cfg.micro_batch,
            max_body_bytes: cfg.max_body_bytes,
            read_timeout_ms: cfg.read_timeout_ms.max(1),
            max_connections: cfg.max_connections.max(1),
            tenants: TenantCache::new(),
            shutdown: AtomicBool::new(false),
            current: Mutex::new(Arc::new(model)),
            generation: AtomicU64::new(1),
        });

        let (conn_tx, conn_rx) = mpsc::channel::<TcpStream>();
        let (job_tx, job_rx) = mpsc::channel::<ForecastJob>();

        let accept_shared = shared.clone();
        let accept = thread::spawn(move || {
            accept_serve_loop(&listener, &conn_tx, &accept_shared.shutdown);
        });

        let batcher_shared = shared.clone();
        let batcher = thread::spawn(move || batcher_thread(batcher_shared, job_rx));

        let dispatch_shared = shared.clone();
        let dispatch = thread::spawn(move || {
            let mut handlers: Vec<JoinHandle<()>> = Vec::new();
            for mut stream in conn_rx {
                handlers.retain(|h| !h.is_finished());
                if handlers.len() >= dispatch_shared.max_connections {
                    // Shed load instead of spawning unboundedly: answer 503
                    // and close so the client can back off and retry.
                    SERVE_ERRORS.add(1);
                    let _ = write_response(
                        &mut stream,
                        503,
                        &err_body("server at connection capacity").render(),
                        false,
                    );
                    continue;
                }
                let shared = dispatch_shared.clone();
                let jobs = job_tx.clone();
                handlers.push(thread::spawn(move || {
                    handle_connection(stream, &shared, &jobs);
                }));
            }
            // Accept loop ended: join the remaining handlers, then drop the
            // last `job_tx` clone so the batcher drains and exits.
            for h in handlers {
                let _ = h.join();
            }
        });

        Ok(Server {
            addr,
            shared,
            accept: Some(accept),
            dispatch: Some(dispatch),
            batcher: Some(batcher),
        })
    }

    /// The bound socket address (resolved port when binding port 0).
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// Currently active model version.
    pub fn active_version(&self) -> u64 {
        self.shared.current().version()
    }

    /// Stops accepting, drains in-flight connections and joins every
    /// worker thread.
    pub fn shutdown(mut self) {
        self.shared.shutdown.store(true, Ordering::Relaxed);
        // Wake the blocking accept() with a throwaway connection.
        let _ = TcpStream::connect(self.addr);
        if let Some(h) = self.accept.take() {
            let _ = h.join();
        }
        if let Some(h) = self.dispatch.take() {
            let _ = h.join();
        }
        if let Some(h) = self.batcher.take() {
            let _ = h.join();
        }
    }
}

/// The accept hot loop: takes connections off the listener and hands them
/// to the dispatcher until shutdown. Subject to the `*-in-serve-loop`
/// lints: no allocation, no unwrap, no stdout.
fn accept_serve_loop(
    listener: &TcpListener,
    conns: &mpsc::Sender<TcpStream>,
    shutdown: &AtomicBool,
) {
    loop {
        if shutdown.load(Ordering::Relaxed) {
            return;
        }
        match listener.accept() {
            Ok((stream, _peer)) => {
                if shutdown.load(Ordering::Relaxed) {
                    return;
                }
                if conns.send(stream).is_err() {
                    return;
                }
            }
            Err(_) => {
                if shutdown.load(Ordering::Relaxed) {
                    return;
                }
                // Persistent accept errors (e.g. EMFILE under fd
                // exhaustion) must not busy-spin the accept thread.
                thread::sleep(Duration::from_millis(5));
            }
        }
    }
}

fn latency_histogram(path: &str) -> Option<&'static Histogram> {
    match path {
        "/forecast" => Some(&SERVE_FORECAST_LATENCY),
        "/observe" => Some(&SERVE_OBSERVE_LATENCY),
        "/admin/activate" => Some(&SERVE_ADMIN_LATENCY),
        "/metrics" | "/healthz" => Some(&SERVE_METRICS_LATENCY),
        _ => None,
    }
}

fn handle_connection(
    mut stream: TcpStream,
    shared: &Arc<Shared>,
    jobs: &mpsc::Sender<ForecastJob>,
) {
    let _ = stream.set_read_timeout(Some(Duration::from_millis(shared.read_timeout_ms)));
    let _ = stream.set_nodelay(true);
    loop {
        match read_request(&mut stream, shared.max_body_bytes) {
            ReadOutcome::Idle => {
                if shared.shutdown.load(Ordering::Relaxed) {
                    return;
                }
            }
            ReadOutcome::Closed => return,
            ReadOutcome::Malformed(msg) => {
                SERVE_REQUESTS.add(1);
                SERVE_ERRORS.add(1);
                let _ = write_response(&mut stream, 400, &err_body(msg).render(), false);
                return;
            }
            ReadOutcome::TooLarge {
                declared,
                drained,
                keep_alive,
            } => {
                SERVE_REQUESTS.add(1);
                SERVE_ERRORS.add(1);
                let keep = drained && keep_alive;
                let msg = format!(
                    "body of {declared} bytes exceeds the {} byte limit",
                    shared.max_body_bytes
                );
                let _ = write_response(&mut stream, 413, &err_body(msg).render(), keep);
                if !keep {
                    return;
                }
            }
            ReadOutcome::Request(req) => {
                SERVE_REQUESTS.add(1);
                let started = now_ns();
                let (status, body) = route(shared, jobs, &req);
                if status >= 400 {
                    SERVE_ERRORS.add(1);
                }
                if let Some(hist) = latency_histogram(&req.path) {
                    hist.record(now_ns().saturating_sub(started).max(1));
                }
                let keep = req.keep_alive && !shared.shutdown.load(Ordering::Relaxed);
                if write_response(&mut stream, status, &body.render(), keep).is_err() || !keep {
                    return;
                }
            }
        }
    }
}

fn err_body(msg: impl Into<String>) -> Json {
    Json::obj(vec![("error", Json::Str(msg.into()))])
}

fn parse_json(body: &[u8]) -> Result<Json, String> {
    let text = std::str::from_utf8(body).map_err(|_| "body is not utf-8".to_string())?;
    Json::parse(text).map_err(|e| format!("invalid JSON body: {e}"))
}

fn route(shared: &Shared, jobs: &mpsc::Sender<ForecastJob>, req: &Request) -> (u16, Json) {
    match (req.method.as_str(), req.path.as_str()) {
        ("POST", "/forecast") => forecast(shared, jobs, &req.body),
        ("POST", "/observe") => observe(shared, &req.body),
        ("POST", "/admin/activate") => activate(shared, &req.body),
        ("GET", "/metrics") => metrics(shared),
        ("GET", "/healthz") => healthz(shared),
        (_, "/forecast" | "/observe" | "/admin/activate" | "/metrics" | "/healthz") => (
            405,
            err_body(format!(
                "method {} not allowed for {}",
                req.method, req.path
            )),
        ),
        _ => (404, err_body(format!("no route for {}", req.path))),
    }
}

fn flatten_window(rows: &[Json], input_len: usize, num_vars: usize) -> Result<Vec<f32>, String> {
    if rows.len() != input_len {
        return Err(format!(
            "`x` has {} rows, model expects {input_len}",
            rows.len()
        ));
    }
    let mut out = Vec::with_capacity(input_len * num_vars);
    for (i, row) in rows.iter().enumerate() {
        let cells = row
            .as_arr()
            .ok_or_else(|| format!("`x[{i}]` is not an array"))?;
        if cells.len() != num_vars {
            return Err(format!(
                "`x[{i}]` has {} values, model expects {num_vars}",
                cells.len()
            ));
        }
        for (j, cell) in cells.iter().enumerate() {
            match cell.as_num() {
                Some(v) if v.is_finite() => out.push(v as f32),
                _ => return Err(format!("`x[{i}][{j}]` is not a finite number")),
            }
        }
    }
    Ok(out)
}

fn forecast(shared: &Shared, jobs: &mpsc::Sender<ForecastJob>, body: &[u8]) -> (u16, Json) {
    let doc = match parse_json(body) {
        Ok(d) => d,
        Err(e) => return (400, err_body(e)),
    };
    let model = shared.current();
    let manifest = model.manifest();
    let input = if let Some(rows) = doc.get("x").and_then(Json::as_arr) {
        match flatten_window(rows, manifest.input_len, manifest.num_vars) {
            Ok(v) => v,
            Err(e) => return (400, err_body(e)),
        }
    } else if let Some(tenant) = doc.get("tenant").and_then(Json::as_str) {
        match shared
            .tenants
            .window(tenant, manifest.input_len, manifest.num_vars)
        {
            Ok(v) => v,
            Err(e) => return (409, err_body(e)),
        }
    } else {
        return (
            400,
            err_body("body must carry `x` (window rows) or `tenant`"),
        );
    };

    let (tx, rx) = mpsc::channel();
    if jobs.send(ForecastJob { input, reply: tx }).is_err() {
        return (503, err_body("batcher unavailable"));
    }
    match rx.recv() {
        Ok(Ok(reply)) => {
            if reply.values.iter().any(|v| !v.is_finite()) {
                return (
                    500,
                    err_body(format!(
                        "model v{} produced non-finite forecast values",
                        reply.version
                    )),
                );
            }
            let rows: Vec<Json> = reply
                .values
                .chunks(reply.num_vars.max(1))
                .map(|row| Json::Arr(row.iter().map(|&v| Json::num(v as f64)).collect()))
                .collect();
            (
                200,
                Json::obj(vec![
                    ("version", Json::num(reply.version as f64)),
                    ("horizon", Json::num(reply.horizon as f64)),
                    ("num_vars", Json::num(reply.num_vars as f64)),
                    ("forecast", Json::Arr(rows)),
                ]),
            )
        }
        Ok(Err(msg)) => (400, err_body(msg)),
        Err(_) => (503, err_body("batcher dropped the request")),
    }
}

fn parse_rows(rows: &[Json]) -> Result<Vec<Vec<f32>>, String> {
    let mut out = Vec::with_capacity(rows.len());
    for (i, row) in rows.iter().enumerate() {
        let cells = row
            .as_arr()
            .ok_or_else(|| format!("`rows[{i}]` is not an array"))?;
        let mut parsed = Vec::with_capacity(cells.len());
        for (j, cell) in cells.iter().enumerate() {
            match cell.as_num() {
                Some(v) if v.is_finite() => parsed.push(v as f32),
                _ => return Err(format!("`rows[{i}][{j}]` is not a finite number")),
            }
        }
        out.push(parsed);
    }
    Ok(out)
}

fn observe(shared: &Shared, body: &[u8]) -> (u16, Json) {
    let doc = match parse_json(body) {
        Ok(d) => d,
        Err(e) => return (400, err_body(e)),
    };
    let Some(tenant) = doc.get("tenant").and_then(Json::as_str) else {
        return (400, err_body("`tenant` must be a string"));
    };
    let Some(raw_rows) = doc.get("rows").and_then(Json::as_arr) else {
        return (400, err_body("`rows` must be an array of rows"));
    };
    let rows = match parse_rows(raw_rows) {
        Ok(r) => r,
        Err(e) => return (400, err_body(e)),
    };
    let total = shared.tenants.observe(tenant, &rows);
    (
        200,
        Json::obj(vec![
            ("tenant", Json::str(tenant)),
            ("rows", Json::num(total as f64)),
        ]),
    )
}

fn activate(shared: &Shared, body: &[u8]) -> (u16, Json) {
    let doc = match parse_json(body) {
        Ok(d) => d,
        Err(e) => return (400, err_body(e)),
    };
    let version = match doc.get("version").and_then(Json::as_num) {
        Some(v) if v.is_finite() && v >= 0.0 && v.fract() == 0.0 => v as u64,
        _ => return (400, err_body("`version` must be a non-negative integer")),
    };
    match registry::load(&shared.registry_root, version) {
        Ok(model) => {
            shared.activate(model);
            SERVE_SWAPS.add(1);
            (
                200,
                Json::obj(vec![
                    ("version", Json::num(version as f64)),
                    ("active", Json::Bool(true)),
                ]),
            )
        }
        Err(e) => {
            SERVE_SWAP_REJECTS.add(1);
            (
                422,
                Json::obj(vec![
                    ("error", Json::str(e.to_string())),
                    ("kept_version", Json::num(shared.current().version() as f64)),
                ]),
            )
        }
    }
}

fn metrics(shared: &Shared) -> (u16, Json) {
    let snap = timekd_obs::snapshot();
    let counters = Json::obj(
        snap.counters
            .iter()
            .map(|c| (c.name.as_str(), Json::num(c.value as f64)))
            .collect(),
    );
    let histograms = Json::Arr(
        snap.histograms
            .iter()
            .map(|h| {
                Json::obj(vec![
                    ("name", Json::str(h.name.as_str())),
                    ("count", Json::num(h.count() as f64)),
                    ("mean", Json::num(h.mean())),
                    ("p50", Json::num(h.quantile(0.5))),
                    ("p95", Json::num(h.quantile(0.95))),
                    ("p99", Json::num(h.quantile(0.99))),
                ])
            })
            .collect(),
    );
    (
        200,
        Json::obj(vec![
            ("schema", Json::str(METRICS_SCHEMA)),
            ("version", Json::num(shared.current().version() as f64)),
            ("counters", counters),
            ("histograms", histograms),
        ]),
    )
}

fn healthz(shared: &Shared) -> (u16, Json) {
    (
        200,
        Json::obj(vec![
            ("ok", Json::Bool(true)),
            ("version", Json::num(shared.current().version() as f64)),
        ]),
    )
}
