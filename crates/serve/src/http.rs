//! Minimal HTTP/1.1 framing over blocking `TcpStream`s: just enough to
//! parse `METHOD /path HTTP/1.1` requests with `Content-Length` bodies
//! and to write keep-alive responses. Deliberately not a web framework —
//! no chunked encoding, no TLS, no query strings — the serving layer's
//! endpoints are all small JSON bodies on persistent local connections.

use std::io::{ErrorKind, Read, Write};
use std::net::TcpStream;

/// Maximum accepted header block (request line + headers).
const MAX_HEAD_BYTES: usize = 8 * 1024;

/// Oversized declared bodies are drained (so the connection survives a
/// 413) only up to this multiple of the configured body cap; anything
/// larger closes the connection instead of reading unbounded data.
const DRAIN_FACTOR: usize = 4;

/// Maximum read-timeout ticks tolerated *inside* a request (after its
/// first byte) before the request fails as malformed. The stream's read
/// timeout is the serving layer's shutdown-poll interval (25 ms by
/// default), so this bounds a mid-request stall to a few seconds instead
/// of pinning the handler thread forever — a partial request followed by
/// an idle client would otherwise also hang `Server::shutdown()`, which
/// joins every handler.
const MAX_STALL_TICKS: u32 = 200;

/// One parsed request.
#[derive(Debug, Clone, PartialEq)]
pub struct Request {
    /// Uppercase method, e.g. `"POST"`.
    pub method: String,
    /// Request target, e.g. `"/forecast"`.
    pub path: String,
    /// Raw body bytes (empty when no `Content-Length`).
    pub body: Vec<u8>,
    /// Whether the client asked to keep the connection open.
    pub keep_alive: bool,
}

/// Outcome of waiting for the next request on a connection.
#[derive(Debug)]
pub enum ReadOutcome {
    /// A complete request was framed.
    Request(Request),
    /// Clean EOF before any byte of a new request.
    Closed,
    /// The read timeout elapsed before any byte of a new request (the
    /// caller polls its shutdown flag and retries).
    Idle,
    /// Broken framing — the caller answers 400 and closes.
    Malformed(String),
    /// Declared body exceeded the cap; the body was drained if `drained`,
    /// so a 413 can keep the connection, otherwise the caller closes.
    TooLarge {
        /// Declared `Content-Length`.
        declared: usize,
        /// Whether the connection is still framed (body fully discarded).
        drained: bool,
        /// Whether the client asked for keep-alive.
        keep_alive: bool,
    },
}

fn stalled() -> ReadOutcome {
    ReadOutcome::Malformed(format!(
        "request stalled for more than {MAX_STALL_TICKS} read-timeout ticks"
    ))
}

/// Counts one read-timeout tick against the per-request stall budget.
fn tick(stalls: &mut u32) -> Result<(), ReadOutcome> {
    *stalls += 1;
    if *stalls > MAX_STALL_TICKS {
        Err(stalled())
    } else {
        Ok(())
    }
}

fn read_byte(
    stream: &mut TcpStream,
    first: bool,
    stalls: &mut u32,
) -> Result<Option<u8>, ReadOutcome> {
    let mut b = [0u8; 1];
    loop {
        match stream.read(&mut b) {
            Ok(0) => return Ok(None),
            Ok(_) => return Ok(Some(b[0])),
            Err(e) if e.kind() == ErrorKind::WouldBlock || e.kind() == ErrorKind::TimedOut => {
                if first {
                    return Err(ReadOutcome::Idle);
                }
                // Mid-request stall: keep waiting, but only within the
                // bounded stall budget.
                tick(stalls)?;
                continue;
            }
            Err(e) if e.kind() == ErrorKind::Interrupted => continue,
            Err(e) => return Err(ReadOutcome::Malformed(format!("read error: {e}"))),
        }
    }
}

/// Reads and frames one request. `max_body` caps accepted bodies.
pub fn read_request(stream: &mut TcpStream, max_body: usize) -> ReadOutcome {
    // Head: accumulate until CRLFCRLF.
    let mut head: Vec<u8> = Vec::with_capacity(256);
    let mut stalls = 0u32;
    loop {
        let first = head.is_empty();
        match read_byte(stream, first, &mut stalls) {
            Err(outcome) => return outcome,
            Ok(None) => {
                return if head.is_empty() {
                    ReadOutcome::Closed
                } else {
                    ReadOutcome::Malformed("eof inside request head".to_string())
                };
            }
            Ok(Some(b)) => head.push(b),
        }
        if head.ends_with(b"\r\n\r\n") {
            break;
        }
        if head.len() > MAX_HEAD_BYTES {
            return ReadOutcome::Malformed("request head too large".to_string());
        }
    }
    let head = match std::str::from_utf8(&head) {
        Ok(s) => s,
        Err(_) => return ReadOutcome::Malformed("non-utf8 request head".to_string()),
    };
    let mut lines = head.split("\r\n");
    let request_line = lines.next().unwrap_or("");
    let mut parts = request_line.split(' ');
    let (method, path, proto) = match (parts.next(), parts.next(), parts.next(), parts.next()) {
        (Some(m), Some(p), Some(v), None) if !m.is_empty() && p.starts_with('/') => (m, p, v),
        _ => {
            return ReadOutcome::Malformed(format!("bad request line `{request_line}`"));
        }
    };
    if !proto.starts_with("HTTP/1.") {
        return ReadOutcome::Malformed(format!("unsupported protocol `{proto}`"));
    }

    let mut content_length = 0usize;
    // Keep-alive is the HTTP/1.1 default; HTTP/1.0 defaults to close
    // unless the client asks for keep-alive explicitly.
    let mut keep_alive = !proto.eq_ignore_ascii_case("HTTP/1.0");
    for line in lines {
        if line.is_empty() {
            continue;
        }
        let Some((name, value)) = line.split_once(':') else {
            return ReadOutcome::Malformed(format!("bad header line `{line}`"));
        };
        let name = name.trim().to_ascii_lowercase();
        let value = value.trim();
        if name == "content-length" {
            match value.parse::<usize>() {
                Ok(n) => content_length = n,
                Err(_) => {
                    return ReadOutcome::Malformed(format!("bad content-length `{value}`"));
                }
            }
        } else if name == "connection" {
            if value.eq_ignore_ascii_case("close") {
                keep_alive = false;
            } else if value.eq_ignore_ascii_case("keep-alive") {
                keep_alive = true;
            }
        }
    }

    if content_length > max_body {
        // Drain a bounded amount so the connection stays framed.
        let drained = if content_length <= max_body.saturating_mul(DRAIN_FACTOR) {
            let mut left = content_length;
            let mut sink = [0u8; 4096];
            while left > 0 {
                let want = left.min(sink.len());
                match stream.read(&mut sink[..want]) {
                    Ok(0) => break,
                    Ok(n) => left -= n,
                    Err(e)
                        if e.kind() == ErrorKind::WouldBlock || e.kind() == ErrorKind::TimedOut =>
                    {
                        if tick(&mut stalls).is_err() {
                            break;
                        }
                    }
                    Err(e) if e.kind() == ErrorKind::Interrupted => continue,
                    Err(_) => break,
                }
            }
            left == 0
        } else {
            false
        };
        return ReadOutcome::TooLarge {
            declared: content_length,
            drained,
            keep_alive,
        };
    }

    let mut body = vec![0u8; content_length];
    let mut filled = 0usize;
    while filled < content_length {
        match stream.read(&mut body[filled..]) {
            Ok(0) => return ReadOutcome::Malformed("eof inside request body".to_string()),
            Ok(n) => filled += n,
            Err(e) if e.kind() == ErrorKind::WouldBlock || e.kind() == ErrorKind::TimedOut => {
                if let Err(outcome) = tick(&mut stalls) {
                    return outcome;
                }
            }
            Err(e) if e.kind() == ErrorKind::Interrupted => continue,
            Err(e) => return ReadOutcome::Malformed(format!("read error: {e}")),
        }
    }

    ReadOutcome::Request(Request {
        method: method.to_string(),
        path: path.to_string(),
        body,
        keep_alive,
    })
}

fn reason(status: u16) -> &'static str {
    match status {
        200 => "OK",
        400 => "Bad Request",
        404 => "Not Found",
        405 => "Method Not Allowed",
        409 => "Conflict",
        413 => "Payload Too Large",
        422 => "Unprocessable Entity",
        500 => "Internal Server Error",
        503 => "Service Unavailable",
        _ => "Unknown",
    }
}

/// Writes one JSON response. `keep_alive` controls the `Connection` header
/// only; the caller decides whether to actually close the stream.
pub fn write_response(
    stream: &mut TcpStream,
    status: u16,
    body: &str,
    keep_alive: bool,
) -> std::io::Result<()> {
    let head = format!(
        "HTTP/1.1 {} {}\r\nContent-Type: application/json\r\nContent-Length: {}\r\nConnection: {}\r\n\r\n",
        status,
        reason(status),
        body.len(),
        if keep_alive { "keep-alive" } else { "close" },
    );
    stream.write_all(head.as_bytes())?;
    stream.write_all(body.as_bytes())?;
    stream.flush()
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::net::TcpListener;

    fn framed(raw: &[u8], max_body: usize) -> ReadOutcome {
        let listener = TcpListener::bind("127.0.0.1:0").expect("bind");
        let addr = listener.local_addr().expect("addr");
        let mut client = TcpStream::connect(addr).expect("connect");
        client.write_all(raw).expect("write");
        client.flush().expect("flush");
        let (mut server_side, _) = listener.accept().expect("accept");
        read_request(&mut server_side, max_body)
    }

    #[test]
    fn frames_a_post_with_body() {
        let out = framed(
            b"POST /forecast HTTP/1.1\r\nContent-Length: 4\r\n\r\nabcd",
            1024,
        );
        match out {
            ReadOutcome::Request(req) => {
                assert_eq!(req.method, "POST");
                assert_eq!(req.path, "/forecast");
                assert_eq!(req.body, b"abcd");
                assert!(req.keep_alive);
            }
            other => panic!("expected request, got {other:?}"),
        }
    }

    #[test]
    fn rejects_bad_request_line_and_protocol() {
        assert!(matches!(
            framed(b"NOT-HTTP\r\n\r\n", 1024),
            ReadOutcome::Malformed(_)
        ));
        assert!(matches!(
            framed(b"GET /x SPDY/3\r\n\r\n", 1024),
            ReadOutcome::Malformed(_)
        ));
    }

    #[test]
    fn oversized_body_is_drained_for_keepalive() {
        let mut raw = b"POST /forecast HTTP/1.1\r\nContent-Length: 64\r\n\r\n".to_vec();
        raw.extend(std::iter::repeat(b'x').take(64));
        match framed(&raw, 16) {
            ReadOutcome::TooLarge {
                declared,
                drained,
                keep_alive,
            } => {
                assert_eq!(declared, 64);
                assert!(drained);
                assert!(keep_alive);
            }
            other => panic!("expected TooLarge, got {other:?}"),
        }
    }

    #[test]
    fn connection_close_header_is_honored() {
        let out = framed(b"GET /healthz HTTP/1.1\r\nConnection: close\r\n\r\n", 64);
        match out {
            ReadOutcome::Request(req) => assert!(!req.keep_alive),
            other => panic!("expected request, got {other:?}"),
        }
    }

    #[test]
    fn http10_defaults_to_close_unless_keepalive_requested() {
        match framed(b"GET /healthz HTTP/1.0\r\n\r\n", 64) {
            ReadOutcome::Request(req) => assert!(!req.keep_alive, "1.0 default must be close"),
            other => panic!("expected request, got {other:?}"),
        }
        match framed(b"GET /healthz HTTP/1.0\r\nConnection: keep-alive\r\n\r\n", 64) {
            ReadOutcome::Request(req) => assert!(req.keep_alive, "explicit keep-alive honored"),
            other => panic!("expected request, got {other:?}"),
        }
    }

    #[test]
    fn mid_request_stall_fails_instead_of_hanging() {
        // A client that sends a partial head and then idles must not pin
        // the reader forever: after MAX_STALL_TICKS read-timeout ticks the
        // request fails as malformed.
        let listener = TcpListener::bind("127.0.0.1:0").expect("bind");
        let addr = listener.local_addr().expect("addr");
        let mut client = TcpStream::connect(addr).expect("connect");
        client.write_all(b"POST /forecast HTTP/1.1\r\n").expect("write");
        client.flush().expect("flush");
        let (mut server_side, _) = listener.accept().expect("accept");
        server_side
            .set_read_timeout(Some(std::time::Duration::from_millis(1)))
            .expect("set timeout");
        let out = read_request(&mut server_side, 1024);
        match out {
            ReadOutcome::Malformed(msg) => assert!(msg.contains("stalled"), "got `{msg}`"),
            other => panic!("expected stalled Malformed, got {other:?}"),
        }
        drop(client);
    }
}
