//! Versioned on-disk model registry for frozen student plans.
//!
//! Layout: `<root>/v<N>/` holds a `manifest.json` (schema
//! `timekd-registry/v1`: model/geometry hyperparameters, precision, the
//! ordered parameter table, and an FNV-1a checksum of the blob file) plus
//! `params.bin` (the parameters as concatenated `TKT1` tensor blobs in
//! manifest order). Publishing snapshots a live [`Student`]; loading
//! re-traces the symbolic forecast graph from the manifest alone,
//! recompiles the [`Plan`] at the manifest's precision, and cross-checks
//! every blob label and shape against the fresh trace — so a corrupt
//! manifest, a truncated blob, a checksum mismatch, or a shape drift is a
//! precise [`RegistryError`] at load time, never a panic at serve time.

use std::collections::HashMap;
use std::fmt;
use std::fs;
use std::path::{Path, PathBuf};

use timekd::{student_plan_spec_with_precision, trace_student_forecast, Student, TimeKdConfig};
use timekd_nn::Module;
use timekd_obs::json::Json;
use timekd_tensor::bytes::Bytes;
use timekd_tensor::io::{decode_tensor, encode_tensor};
use timekd_tensor::{Plan, PlanExecutor, Precision, Tensor};

/// Manifest schema identifier written to and required from every version.
pub const MANIFEST_SCHEMA: &str = "timekd-registry/v1";

/// Everything that can go wrong publishing to or loading from a registry.
#[derive(Debug, Clone, PartialEq)]
pub enum RegistryError {
    /// Filesystem error (path + OS message).
    Io(String),
    /// The requested version directory does not exist.
    MissingVersion(u64),
    /// `manifest.json` failed to parse or a field is missing/invalid.
    Manifest(String),
    /// `params.bin` does not hash to the manifest checksum.
    Checksum {
        /// Checksum recorded in the manifest (hex).
        expected: String,
        /// Checksum of the bytes on disk (hex).
        actual: String,
    },
    /// A parameter blob failed to decode (truncated / bad magic / bad shape).
    Param {
        /// Manifest label of the offending parameter.
        label: String,
        /// Decoder diagnostic.
        reason: String,
    },
    /// A loaded parameter's shape disagrees with the recompiled plan's trace.
    ShapeMismatch {
        /// Parameter label.
        label: String,
        /// Shape expected by the fresh symbolic trace.
        expected: Vec<usize>,
        /// Shape found in the manifest/blob.
        found: Vec<usize>,
    },
    /// Tracing or compiling the plan from the manifest config failed.
    Plan(String),
}

impl fmt::Display for RegistryError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RegistryError::Io(msg) => write!(f, "registry io error: {msg}"),
            RegistryError::MissingVersion(v) => write!(f, "registry has no version v{v}"),
            RegistryError::Manifest(msg) => write!(f, "bad manifest: {msg}"),
            RegistryError::Checksum { expected, actual } => {
                write!(
                    f,
                    "params.bin checksum mismatch: manifest {expected}, disk {actual}"
                )
            }
            RegistryError::Param { label, reason } => {
                write!(f, "bad param blob `{label}`: {reason}")
            }
            RegistryError::ShapeMismatch {
                label,
                expected,
                found,
            } => write!(
                f,
                "param `{label}` shape mismatch: plan wants {expected:?}, registry has {found:?}"
            ),
            RegistryError::Plan(msg) => write!(f, "plan compile failed: {msg}"),
        }
    }
}

impl std::error::Error for RegistryError {}

/// FNV-1a over a byte slice — the dependency-free integrity hash for
/// `params.bin` (catches bit corruption that length checks alone miss).
pub fn fnv1a(bytes: &[u8]) -> u64 {
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    for &b in bytes {
        h ^= b as u64;
        h = h.wrapping_mul(0x100_0000_01b3);
    }
    h
}

/// Parsed `manifest.json`: the architecture, geometry, precision and
/// ordered parameter table of one registered version.
#[derive(Debug, Clone, PartialEq)]
pub struct Manifest {
    /// Version number (matches the `v<N>` directory name).
    pub version: u64,
    /// Execution precision for the compiled plan.
    pub precision: Precision,
    /// Student embedding width.
    pub dim: usize,
    /// Encoder layer count.
    pub num_layers: usize,
    /// Attention head count.
    pub num_heads: usize,
    /// FFN hidden width.
    pub ffn_hidden: usize,
    /// History window length (model input rows).
    pub input_len: usize,
    /// Forecast horizon (output rows).
    pub horizon: usize,
    /// Channel count.
    pub num_vars: usize,
    /// `(label, dims)` per parameter, in blob order.
    pub params: Vec<(String, Vec<usize>)>,
    /// FNV-1a of `params.bin`, rendered as 16 hex digits.
    pub checksum: String,
}

impl Manifest {
    /// The [`TimeKdConfig`] this manifest pins. Only the student's
    /// architectural fields are persisted; everything else (training
    /// hyperparameters, ablations) is irrelevant to the frozen forecast
    /// graph and stays at its default.
    pub fn config(&self) -> TimeKdConfig {
        TimeKdConfig {
            dim: self.dim,
            num_layers: self.num_layers,
            num_heads: self.num_heads,
            ffn_hidden: self.ffn_hidden,
            ..TimeKdConfig::default()
        }
    }

    fn to_json(&self) -> Json {
        let params = self
            .params
            .iter()
            .map(|(label, dims)| {
                Json::obj(vec![
                    ("label", Json::str(label.as_str())),
                    (
                        "dims",
                        Json::Arr(dims.iter().map(|&d| Json::num(d as f64)).collect()),
                    ),
                ])
            })
            .collect();
        Json::obj(vec![
            ("schema", Json::str(MANIFEST_SCHEMA)),
            ("version", Json::num(self.version as f64)),
            (
                "precision",
                Json::str(match self.precision {
                    Precision::Int8 => "int8",
                    _ => "f32",
                }),
            ),
            (
                "model",
                Json::obj(vec![
                    ("dim", Json::num(self.dim as f64)),
                    ("num_layers", Json::num(self.num_layers as f64)),
                    ("num_heads", Json::num(self.num_heads as f64)),
                    ("ffn_hidden", Json::num(self.ffn_hidden as f64)),
                ]),
            ),
            (
                "geometry",
                Json::obj(vec![
                    ("input_len", Json::num(self.input_len as f64)),
                    ("horizon", Json::num(self.horizon as f64)),
                    ("num_vars", Json::num(self.num_vars as f64)),
                ]),
            ),
            ("params_checksum", Json::str(self.checksum.as_str())),
            ("params", Json::Arr(params)),
        ])
    }

    fn from_json(doc: &Json) -> Result<Manifest, RegistryError> {
        let bad = |msg: String| RegistryError::Manifest(msg);
        match doc.get("schema").and_then(Json::as_str) {
            Some(MANIFEST_SCHEMA) => {}
            Some(other) => {
                return Err(bad(format!(
                    "schema must be {MANIFEST_SCHEMA:?}, got {other:?}"
                )))
            }
            None => return Err(bad("missing key `schema`".to_string())),
        }
        let need_usize = |path: &str| -> Result<usize, RegistryError> {
            match doc.get_path(path).and_then(Json::as_num) {
                Some(v) if v.is_finite() && v >= 0.0 && v.fract() == 0.0 => Ok(v as usize),
                Some(v) => Err(bad(format!(
                    "`{path}` must be a non-negative integer, got {v}"
                ))),
                None => Err(bad(format!("missing key `{path}`"))),
            }
        };
        let precision = match doc.get("precision").and_then(Json::as_str) {
            Some("f32") => Precision::F32,
            Some("int8") => Precision::Int8,
            Some(other) => return Err(bad(format!("unknown precision {other:?}"))),
            None => return Err(bad("missing key `precision`".to_string())),
        };
        let raw_params = match doc.get("params").and_then(Json::as_arr) {
            Some(rows) if !rows.is_empty() => rows,
            Some(_) => return Err(bad("`params` must be a non-empty array".to_string())),
            None => return Err(bad("missing key `params`".to_string())),
        };
        let mut params = Vec::with_capacity(raw_params.len());
        for (i, row) in raw_params.iter().enumerate() {
            let label = row
                .get("label")
                .and_then(Json::as_str)
                .ok_or_else(|| bad(format!("`params[{i}].label` missing or not a string")))?;
            let dims_arr = row
                .get("dims")
                .and_then(Json::as_arr)
                .ok_or_else(|| bad(format!("`params[{i}].dims` missing or not an array")))?;
            let mut dims = Vec::with_capacity(dims_arr.len());
            for d in dims_arr {
                match d.as_num() {
                    Some(v) if v.is_finite() && v >= 1.0 && v.fract() == 0.0 => {
                        dims.push(v as usize)
                    }
                    _ => {
                        return Err(bad(format!(
                            "`params[{i}].dims` must hold positive integers"
                        )))
                    }
                }
            }
            params.push((label.to_string(), dims));
        }
        let checksum = doc
            .get("params_checksum")
            .and_then(Json::as_str)
            .ok_or_else(|| bad("missing key `params_checksum`".to_string()))?
            .to_string();
        Ok(Manifest {
            version: need_usize("version")? as u64,
            precision,
            dim: need_usize("model.dim")?,
            num_layers: need_usize("model.num_layers")?,
            num_heads: need_usize("model.num_heads")?,
            ffn_hidden: need_usize("model.ffn_hidden")?,
            input_len: need_usize("geometry.input_len")?,
            horizon: need_usize("geometry.horizon")?,
            num_vars: need_usize("geometry.num_vars")?,
            params,
            checksum,
        })
    }
}

/// A fully validated, servable model version: the manifest, the compiled
/// [`Plan`], and the parameter values keyed by label. Plain data
/// throughout, so it crosses threads behind an `Arc` and can mint as many
/// executors as the micro-batcher needs.
#[derive(Debug)]
pub struct LoadedModel {
    manifest: Manifest,
    plan: Plan,
    values: HashMap<String, (Vec<usize>, Vec<f32>)>,
}

impl LoadedModel {
    /// The manifest this model was loaded from.
    pub fn manifest(&self) -> &Manifest {
        &self.manifest
    }

    /// Version number.
    pub fn version(&self) -> u64 {
        self.manifest.version
    }

    /// Expected flattened input length (`input_len * num_vars`).
    pub fn input_values(&self) -> usize {
        self.manifest.input_len * self.manifest.num_vars
    }

    /// Flattened output length (`horizon * num_vars`).
    pub fn output_values(&self) -> usize {
        self.manifest.horizon * self.manifest.num_vars
    }

    /// Binds a fresh executor lane over the loaded parameters.
    pub fn make_executor(&self) -> Result<PlanExecutor, RegistryError> {
        PlanExecutor::new(&self.plan, |label, dims| {
            self.values
                .get(label)
                .filter(|(d, _)| d == dims)
                .map(|(_, data)| data.clone())
        })
        .map_err(|e| RegistryError::Plan(format!("{e:?}")))
    }
}

fn version_dir(root: &Path, version: u64) -> PathBuf {
    root.join(format!("v{version}"))
}

/// Registered versions under `root`, ascending. Non-`v<N>` entries are
/// ignored; a missing root directory is an empty registry.
pub fn list_versions(root: &Path) -> Vec<u64> {
    let mut out = Vec::new();
    if let Ok(entries) = fs::read_dir(root) {
        for entry in entries.flatten() {
            let name = entry.file_name();
            if let Some(rest) = name.to_string_lossy().strip_prefix('v') {
                if let Ok(v) = rest.parse::<u64>() {
                    if entry.path().join("manifest.json").is_file() {
                        out.push(v);
                    }
                }
            }
        }
    }
    out.sort_unstable();
    out
}

/// Highest registered version, if any.
pub fn latest_version(root: &Path) -> Option<u64> {
    list_versions(root).pop()
}

/// Publishes `student` as `v<version>`: traces its forecast graph to fix
/// the parameter label order, writes `params.bin` (concatenated `TKT1`
/// blobs) and then `manifest.json` (last, so a crashed publish never
/// leaves a listable version).
pub fn publish(
    root: &Path,
    version: u64,
    student: &Student,
    config: &TimeKdConfig,
    precision: Precision,
) -> Result<Manifest, RegistryError> {
    let (ctx, _forecast) = trace_student_forecast(
        config,
        student.input_len(),
        student.horizon(),
        student.num_vars(),
    )
    .map_err(|e| RegistryError::Plan(format!("student trace failed: {e}")))?;
    let sym_params = ctx.params();
    let real_params = student.params();
    if sym_params.len() != real_params.len() {
        return Err(RegistryError::Plan(format!(
            "parameter count mismatch: trace has {}, student has {}",
            sym_params.len(),
            real_params.len()
        )));
    }

    let mut blob: Vec<u8> = Vec::new();
    let mut table = Vec::with_capacity(sym_params.len());
    for (sym, real) in sym_params.iter().zip(&real_params) {
        if sym.sizes() != real.dims() {
            return Err(RegistryError::ShapeMismatch {
                label: sym.label().to_string(),
                expected: sym.sizes(),
                found: real.dims().to_vec(),
            });
        }
        let mut enc = encode_tensor(real);
        let mut tmp = vec![0u8; enc.remaining()];
        enc.copy_to_slice(&mut tmp);
        blob.extend_from_slice(&tmp);
        table.push((sym.label().to_string(), sym.sizes()));
    }

    let manifest = Manifest {
        version,
        precision,
        dim: config.dim,
        num_layers: config.num_layers,
        num_heads: config.num_heads,
        ffn_hidden: config.ffn_hidden,
        input_len: student.input_len(),
        horizon: student.horizon(),
        num_vars: student.num_vars(),
        params: table,
        checksum: format!("{:016x}", fnv1a(&blob)),
    };

    let dir = version_dir(root, version);
    let io = |e: std::io::Error, what: &str| RegistryError::Io(format!("{what}: {e}"));
    fs::create_dir_all(&dir).map_err(|e| io(e, "create version dir"))?;
    fs::write(dir.join("params.bin"), &blob).map_err(|e| io(e, "write params.bin"))?;
    fs::write(dir.join("manifest.json"), manifest.to_json().render())
        .map_err(|e| io(e, "write manifest.json"))?;
    Ok(manifest)
}

/// Loads and fully validates `v<version>` from `root`.
///
/// Validation order (each stage has its own error variant so fault
/// injection can assert precision): version dir exists → manifest parses
/// field-by-field → `params.bin` matches the manifest checksum → every
/// blob decodes with the manifest's label/shape → the forecast plan
/// recompiles from the manifest config → every plan parameter resolves
/// against the loaded values with matching shapes (probed by binding one
/// throwaway executor).
pub fn load(root: &Path, version: u64) -> Result<LoadedModel, RegistryError> {
    let dir = version_dir(root, version);
    if !dir.join("manifest.json").is_file() {
        return Err(RegistryError::MissingVersion(version));
    }
    let manifest_text = fs::read_to_string(dir.join("manifest.json"))
        .map_err(|e| RegistryError::Io(format!("read manifest.json: {e}")))?;
    let doc = Json::parse(&manifest_text)
        .map_err(|e| RegistryError::Manifest(format!("manifest.json: {e}")))?;
    let manifest = Manifest::from_json(&doc)?;

    let blob = fs::read(dir.join("params.bin"))
        .map_err(|e| RegistryError::Io(format!("read params.bin: {e}")))?;
    let actual = format!("{:016x}", fnv1a(&blob));
    if actual != manifest.checksum {
        return Err(RegistryError::Checksum {
            expected: manifest.checksum.clone(),
            actual,
        });
    }

    let mut buf = Bytes::from(blob);
    let mut values: HashMap<String, (Vec<usize>, Vec<f32>)> =
        HashMap::with_capacity(manifest.params.len());
    for (label, dims) in &manifest.params {
        let t: Tensor = decode_tensor(&mut buf).map_err(|e| RegistryError::Param {
            label: label.clone(),
            reason: e.to_string(),
        })?;
        if t.dims() != dims.as_slice() {
            return Err(RegistryError::Param {
                label: label.clone(),
                reason: format!("blob shape {:?} != manifest dims {dims:?}", t.dims()),
            });
        }
        values.insert(label.clone(), (dims.clone(), t.data().to_vec()));
    }
    if buf.remaining() > 0 {
        return Err(RegistryError::Param {
            label: "<trailing>".to_string(),
            reason: format!(
                "{} unexpected trailing bytes in params.bin",
                buf.remaining()
            ),
        });
    }

    let config = manifest.config();
    let (ctx, forecast) = trace_student_forecast(
        &config,
        manifest.input_len,
        manifest.horizon,
        manifest.num_vars,
    )
    .map_err(|e| RegistryError::Plan(format!("student trace failed: {e}")))?;
    for sym in ctx.params() {
        match values.get(sym.label()) {
            Some((dims, _)) if *dims == sym.sizes() => {}
            Some((dims, _)) => {
                return Err(RegistryError::ShapeMismatch {
                    label: sym.label().to_string(),
                    expected: sym.sizes(),
                    found: dims.clone(),
                });
            }
            None => {
                return Err(RegistryError::Manifest(format!(
                    "plan parameter `{}` missing from manifest",
                    sym.label()
                )));
            }
        }
    }
    let plan = Plan::compile(
        &forecast,
        &student_plan_spec_with_precision(manifest.precision),
    )
    .map_err(|e| RegistryError::Plan(format!("{e:?}")))?;

    let model = LoadedModel {
        manifest,
        plan,
        values,
    };
    // Probe-bind one executor so any residual resolver fault surfaces now.
    model.make_executor()?;
    Ok(model)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fnv1a_matches_reference_vectors() {
        // Published FNV-1a 64-bit test vectors.
        assert_eq!(fnv1a(b""), 0xcbf2_9ce4_8422_2325);
        assert_eq!(fnv1a(b"a"), 0xaf63_dc4c_8601_ec8c);
        assert_eq!(fnv1a(b"foobar"), 0x85944171f73967e8);
    }

    #[test]
    fn manifest_roundtrips_through_json() {
        let m = Manifest {
            version: 3,
            precision: Precision::Int8,
            dim: 16,
            num_layers: 2,
            num_heads: 2,
            ffn_hidden: 32,
            input_len: 24,
            horizon: 8,
            num_vars: 7,
            params: vec![
                ("student.revin.mu".to_string(), vec![7]),
                ("student.proj.w".to_string(), vec![16, 8]),
            ],
            checksum: "00000000deadbeef".to_string(),
        };
        let doc = Json::parse(&m.to_json().render()).expect("parse");
        assert_eq!(Manifest::from_json(&doc).expect("from_json"), m);
    }

    #[test]
    fn manifest_rejects_wrong_schema_and_bad_fields() {
        let base = Manifest {
            version: 1,
            precision: Precision::F32,
            dim: 16,
            num_layers: 2,
            num_heads: 2,
            ffn_hidden: 32,
            input_len: 24,
            horizon: 8,
            num_vars: 7,
            params: vec![("p".to_string(), vec![2, 2])],
            checksum: "0".repeat(16),
        };
        let mut doc = base.to_json();
        if let Json::Obj(pairs) = &mut doc {
            pairs[0].1 = Json::str("timekd-registry/v0");
        }
        let err = Manifest::from_json(&doc).expect_err("stale schema");
        assert!(
            matches!(err, RegistryError::Manifest(ref m) if m.contains("schema")),
            "{err}"
        );

        let mut doc = base.to_json();
        if let Json::Obj(pairs) = &mut doc {
            pairs.retain(|(k, _)| k != "geometry");
        }
        let err = Manifest::from_json(&doc).expect_err("missing geometry");
        assert!(
            matches!(err, RegistryError::Manifest(ref m) if m.contains("geometry.input_len")),
            "{err}"
        );
    }
}
