//! Per-tenant sliding-window state: a Mutex-striped cache mapping tenant
//! ids to their most recent observation rows. `/observe` appends rows;
//! `/forecast` with a `tenant` field (and no explicit window) reads the
//! last `input_len` rows back. Rows are stored geometry-agnostic (each row
//! is one timestep across channels) and validated against the *current*
//! model's geometry at forecast time, so a hot-swap to a different
//! geometry degrades to a clear per-request error instead of serving
//! stale-shaped data.

use std::collections::{HashMap, VecDeque};
use std::sync::Mutex;

use crate::registry::fnv1a;

/// Rows kept per tenant regardless of model geometry; old rows roll off.
const MAX_ROWS: usize = 1024;

const SHARDS: usize = 16;

/// Sharded tenant → sliding-window map.
#[derive(Debug)]
pub struct TenantCache {
    shards: Vec<Mutex<HashMap<String, VecDeque<Vec<f32>>>>>,
}

impl Default for TenantCache {
    fn default() -> Self {
        TenantCache::new()
    }
}

impl TenantCache {
    /// An empty cache with [`SHARDS`] mutex stripes.
    pub fn new() -> TenantCache {
        TenantCache {
            shards: (0..SHARDS).map(|_| Mutex::new(HashMap::new())).collect(),
        }
    }

    fn shard(&self, tenant: &str) -> &Mutex<HashMap<String, VecDeque<Vec<f32>>>> {
        &self.shards[(fnv1a(tenant.as_bytes()) as usize) % SHARDS]
    }

    /// Appends observation rows for `tenant`, trimming to the newest
    /// [`MAX_ROWS`]. Returns the tenant's row count after the append.
    pub fn observe(&self, tenant: &str, rows: &[Vec<f32>]) -> usize {
        let mut shard = self.shard(tenant).lock().unwrap_or_else(|p| p.into_inner());
        let window = shard.entry(tenant.to_string()).or_default();
        for row in rows {
            window.push_back(row.clone());
            if window.len() > MAX_ROWS {
                window.pop_front();
            }
        }
        window.len()
    }

    /// The last `input_len` rows flattened row-major into
    /// `[input_len * num_vars]`, validated against the requested geometry.
    pub fn window(
        &self,
        tenant: &str,
        input_len: usize,
        num_vars: usize,
    ) -> Result<Vec<f32>, String> {
        let shard = self.shard(tenant).lock().unwrap_or_else(|p| p.into_inner());
        let rows = shard
            .get(tenant)
            .ok_or_else(|| format!("unknown tenant `{tenant}`"))?;
        if rows.len() < input_len {
            return Err(format!(
                "tenant `{tenant}` has {} rows, model needs {input_len}",
                rows.len()
            ));
        }
        let mut out = Vec::with_capacity(input_len * num_vars);
        for row in rows.iter().skip(rows.len() - input_len) {
            if row.len() != num_vars {
                return Err(format!(
                    "tenant `{tenant}` row has {} channels, model needs {num_vars}",
                    row.len()
                ));
            }
            out.extend_from_slice(row);
        }
        Ok(out)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn observe_then_window_roundtrips_latest_rows() {
        let cache = TenantCache::new();
        let rows: Vec<Vec<f32>> = (0..5).map(|i| vec![i as f32, 10.0 + i as f32]).collect();
        assert_eq!(cache.observe("acme", &rows), 5);
        let w = cache.window("acme", 3, 2).expect("window");
        assert_eq!(w, vec![2.0, 12.0, 3.0, 13.0, 4.0, 14.0]);
    }

    #[test]
    fn geometry_and_history_faults_are_reported() {
        let cache = TenantCache::new();
        assert!(cache.window("ghost", 2, 2).unwrap_err().contains("unknown"));
        cache.observe("acme", &[vec![1.0, 2.0]]);
        assert!(cache
            .window("acme", 2, 2)
            .unwrap_err()
            .contains("1 rows, model needs 2"));
        cache.observe("acme", &[vec![3.0]]);
        let err = cache.window("acme", 2, 2).unwrap_err();
        assert!(err.contains("channels"), "{err}");
    }

    #[test]
    fn windows_roll_at_the_row_cap() {
        let cache = TenantCache::new();
        for i in 0..(MAX_ROWS + 10) {
            cache.observe("t", &[vec![i as f32]]);
        }
        let w = cache.window("t", 1, 1).expect("window");
        assert_eq!(w, vec![(MAX_ROWS + 9) as f32]);
        assert_eq!(cache.observe("t", &[]), MAX_ROWS);
    }
}
