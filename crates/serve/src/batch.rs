//! The micro-batcher: a single thread owning `micro_batch` pre-bound
//! [`PlanExecutor`] lanes plus their output buffers. Handler threads
//! enqueue [`ForecastJob`]s; the batcher blocks for the first job of a
//! round, opportunistically drains up to `micro_batch - 1` more that are
//! already queued, replays the fused round over its lanes, and replies to
//! each job with the forecast tagged by the model version that computed
//! it.
//!
//! Hot-swap protocol: the batcher compares its lane generation against
//! the server's swap generation *between rounds*. An in-flight round
//! always drains on the lanes (and version) it started with — so every
//! response is wholly one version, never mixed — and the next round
//! rebinds fresh lanes from the newly active model.

use std::sync::mpsc;
use std::sync::Arc;

use timekd_obs::{SERVE_BATCHED_REQUESTS, SERVE_BATCHES, SERVE_BATCH_OCCUPANCY};
use timekd_tensor::PlanExecutor;

use crate::registry::LoadedModel;
use crate::server::Shared;

/// One forecast request queued for fusion.
#[derive(Debug)]
pub struct ForecastJob {
    /// Flattened `[input_len * num_vars]` history window.
    pub input: Vec<f32>,
    /// Where the batcher sends the result.
    pub reply: mpsc::Sender<Result<ForecastReply, String>>,
}

/// A served forecast, tagged with the version that computed it.
#[derive(Debug, Clone, PartialEq)]
pub struct ForecastReply {
    /// Model version the executing lanes were bound to.
    pub version: u64,
    /// Forecast horizon (rows).
    pub horizon: usize,
    /// Channel count (columns).
    pub num_vars: usize,
    /// Flattened `[horizon * num_vars]` forecast.
    pub values: Vec<f32>,
}

struct Lanes {
    model: Arc<LoadedModel>,
    generation: u64,
    execs: Vec<PlanExecutor>,
    outs: Vec<Vec<f32>>,
}

fn bind_lanes(model: Arc<LoadedModel>, generation: u64, width: usize) -> Result<Lanes, String> {
    let mut execs = Vec::with_capacity(width);
    for _ in 0..width {
        execs.push(model.make_executor().map_err(|e| e.to_string())?);
    }
    let outs = vec![vec![0.0f32; model.output_values()]; width];
    Ok(Lanes {
        model,
        generation,
        execs,
        outs,
    })
}

/// The fused replay over one round: each ready job runs on its own lane
/// into its preallocated output. This is the serving hot loop — the
/// `no-*-in-serve-loop` lints hold it to zero allocation, no unwrap and
/// no I/O, exactly like the plan executors it drives.
fn run_serve_loop(execs: &mut [PlanExecutor], jobs: &[ForecastJob], outs: &mut [Vec<f32>]) {
    for ((exec, job), out) in execs.iter_mut().zip(jobs).zip(outs.iter_mut()) {
        exec.run(&job.input, out);
    }
}

/// Body of the batcher thread. Returns when every job sender has hung up
/// (server shutdown drops the handler side).
pub(crate) fn batcher_thread(shared: Arc<Shared>, rx: mpsc::Receiver<ForecastJob>) {
    let width = shared.micro_batch.max(1);
    let mut lanes = match bind_lanes(shared.current(), shared.swap_generation(), width) {
        Ok(l) => l,
        Err(e) => {
            // The boot model failed to bind (should be impossible: load()
            // probes an executor). Fail every job with the reason.
            for job in rx.iter() {
                let _ = job.reply.send(Err(format!("batcher has no model: {e}")));
            }
            return;
        }
    };
    let mut ready: Vec<ForecastJob> = Vec::with_capacity(width);
    loop {
        let first = match rx.recv() {
            Ok(job) => job,
            Err(_) => return,
        };
        // Rebind between rounds if a hot-swap happened; the previous round
        // already drained on the old lanes.
        let generation = shared.swap_generation();
        if generation != lanes.generation {
            match bind_lanes(shared.current(), generation, width) {
                Ok(l) => lanes = l,
                Err(e) => {
                    let _ = first.reply.send(Err(format!("model rebind failed: {e}")));
                    continue;
                }
            }
        }

        fn enqueue(ready: &mut Vec<ForecastJob>, model: &LoadedModel, job: ForecastJob) {
            if job.input.len() == model.input_values() {
                ready.push(job);
            } else {
                let _ = job.reply.send(Err(format!(
                    "input has {} values, model v{} expects {}",
                    job.input.len(),
                    model.version(),
                    model.input_values()
                )));
            }
        }
        ready.clear();
        enqueue(&mut ready, &lanes.model, first);
        while ready.len() < width {
            match rx.try_recv() {
                Ok(job) => enqueue(&mut ready, &lanes.model, job),
                Err(_) => break,
            }
        }
        if ready.is_empty() {
            continue;
        }

        let k = ready.len();
        run_serve_loop(&mut lanes.execs[..k], &ready, &mut lanes.outs[..k]);
        SERVE_BATCHES.add(1);
        SERVE_BATCHED_REQUESTS.add(k as u64);
        SERVE_BATCH_OCCUPANCY.record(k as u64);
        let manifest = lanes.model.manifest();
        for (job, out) in ready.drain(..).zip(&lanes.outs) {
            let _ = job.reply.send(Ok(ForecastReply {
                version: lanes.model.version(),
                horizon: manifest.horizon,
                num_vars: manifest.num_vars,
                values: out.clone(),
            }));
        }
    }
}
