//! Fault injection against the on-disk registry: every corruption mode
//! must surface as a precise typed error at load time — and a rejected
//! hot-swap must leave the previously active version serving untouched.

mod common;

use std::fs;
use std::path::Path;

use common::*;
use timekd::PlannedStudent;
use timekd_obs::json::Json;
use timekd_serve::{fnv1a, load, registry::RegistryError, ServeConfig, Server};
use timekd_tensor::Precision;

fn manifest_path(root: &Path, version: u64) -> std::path::PathBuf {
    root.join(format!("v{version}")).join("manifest.json")
}

fn params_path(root: &Path, version: u64) -> std::path::PathBuf {
    root.join(format!("v{version}")).join("params.bin")
}

#[test]
fn missing_version_is_reported_as_such() {
    let root = temp_registry("faults-missing");
    publish_version(&root, 1, 50, Precision::F32);
    match load(&root, 7) {
        Err(RegistryError::MissingVersion(7)) => {}
        other => panic!("expected MissingVersion(7), got {other:?}"),
    }
    let _ = fs::remove_dir_all(&root);
}

#[test]
fn corrupt_manifest_json_fails_the_parse_stage() {
    let root = temp_registry("faults-manifest");
    publish_version(&root, 1, 51, Precision::F32);
    fs::write(manifest_path(&root, 1), "{not json at all").expect("corrupt");
    match load(&root, 1) {
        Err(RegistryError::Manifest(msg)) => {
            assert!(msg.contains("manifest.json"), "{msg}")
        }
        other => panic!("expected Manifest error, got {other:?}"),
    }

    // Valid JSON, stale schema: still a manifest-stage error naming the field.
    fs::write(
        manifest_path(&root, 1),
        r#"{"schema": "timekd-registry/v0"}"#,
    )
    .expect("stale schema");
    match load(&root, 1) {
        Err(RegistryError::Manifest(msg)) => assert!(msg.contains("schema"), "{msg}"),
        other => panic!("expected Manifest error, got {other:?}"),
    }
    let _ = fs::remove_dir_all(&root);
}

#[test]
fn flipped_blob_byte_fails_the_checksum_stage() {
    let root = temp_registry("faults-checksum");
    publish_version(&root, 1, 52, Precision::F32);
    let mut blob = fs::read(params_path(&root, 1)).expect("read blob");
    let mid = blob.len() / 2;
    blob[mid] ^= 0x40;
    fs::write(params_path(&root, 1), &blob).expect("write corrupted blob");
    match load(&root, 1) {
        Err(RegistryError::Checksum { expected, actual }) => {
            assert_ne!(expected, actual);
            assert_eq!(actual, format!("{:016x}", fnv1a(&blob)));
        }
        other => panic!("expected Checksum error, got {other:?}"),
    }
    let _ = fs::remove_dir_all(&root);
}

#[test]
fn truncated_blob_fails_the_decode_stage_with_the_param_label() {
    let root = temp_registry("faults-truncated");
    publish_version(&root, 1, 53, Precision::F32);
    let blob = fs::read(params_path(&root, 1)).expect("read blob");
    let truncated = &blob[..blob.len() - blob.len() / 3];
    fs::write(params_path(&root, 1), truncated).expect("truncate blob");
    // Patch the checksum so the fault is caught by the *decoder*, proving
    // the stages are ordered and independently precise.
    let text = fs::read_to_string(manifest_path(&root, 1)).expect("read manifest");
    let mut doc = Json::parse(&text).expect("parse manifest");
    if let Json::Obj(pairs) = &mut doc {
        for (k, v) in pairs.iter_mut() {
            if k == "params_checksum" {
                *v = Json::str(format!("{:016x}", fnv1a(truncated)));
            }
        }
    }
    fs::write(manifest_path(&root, 1), doc.render()).expect("patch checksum");
    match load(&root, 1) {
        Err(RegistryError::Param { label, reason }) => {
            assert!(!label.is_empty());
            assert!(
                reason.contains("truncated") || reason.contains("magic"),
                "{reason}"
            );
        }
        other => panic!("expected Param error, got {other:?}"),
    }
    let _ = fs::remove_dir_all(&root);
}

#[test]
fn manifest_geometry_drift_fails_the_plan_crosscheck_stage() {
    let root = temp_registry("faults-shape");
    publish_version(&root, 1, 54, Precision::F32);
    // Widen model.dim 16 -> 24: the blobs still decode against the
    // manifest's own param dims, but the re-traced plan now expects
    // different parameter shapes.
    let text = fs::read_to_string(manifest_path(&root, 1)).expect("read manifest");
    let mut doc = Json::parse(&text).expect("parse manifest");
    if let Some(Json::Obj(model)) = match &mut doc {
        Json::Obj(pairs) => pairs.iter_mut().find(|(k, _)| k == "model").map(|(_, v)| v),
        _ => None,
    } {
        for (k, v) in model.iter_mut() {
            if k == "dim" {
                *v = Json::num(24.0);
            }
        }
    } else {
        panic!("manifest has no model object");
    }
    fs::write(manifest_path(&root, 1), doc.render()).expect("patch dim");
    match load(&root, 1) {
        Err(RegistryError::ShapeMismatch {
            label,
            expected,
            found,
        }) => {
            assert!(!label.is_empty());
            assert_ne!(expected, found, "{label}");
        }
        other => panic!("expected ShapeMismatch error, got {other:?}"),
    }
    let _ = fs::remove_dir_all(&root);
}

#[test]
fn rejected_hot_swap_keeps_the_old_version_serving() {
    let _serial = common::serial();
    timekd_obs::reset();
    let root = temp_registry("faults-swap");
    let student = publish_version(&root, 1, 55, Precision::F32);
    let server = Server::start(ServeConfig::new(&root)).expect("start");
    let addr = server.addr();

    let mut planned = PlannedStudent::new(&student, &tiny_config()).expect("planned");
    let window = demo_window(33);
    let flat: Vec<f32> = window.iter().flatten().copied().collect();
    let reference = tensor_bits(&planned.predict(&timekd_tensor::Tensor::from_vec(
        flat,
        [INPUT_LEN, NUM_VARS],
    )));
    let body = Json::obj(vec![("x", rows_json(&window))]).render();

    // Publish a v2 whose blob is then corrupted on disk.
    publish_version(&root, 2, 56, Precision::F32);
    let mut blob = fs::read(params_path(&root, 2)).expect("read blob");
    blob[0] ^= 0xff;
    fs::write(params_path(&root, 2), &blob).expect("corrupt v2");

    // Activation must be rejected with the registry diagnostic...
    let resp = request(addr, "POST", "/admin/activate", r#"{"version": 2}"#);
    assert_eq!(resp.status, 422, "{}", resp.body);
    let doc = resp.json();
    assert!(
        doc.get("error")
            .and_then(Json::as_str)
            .is_some_and(|e| e.contains("checksum")),
        "{}",
        resp.body
    );
    assert_eq!(doc.get("kept_version").and_then(Json::as_num), Some(1.0));

    // ...activating a version that does not exist is also a clean 422...
    let resp = request(addr, "POST", "/admin/activate", r#"{"version": 9}"#);
    assert_eq!(resp.status, 422, "{}", resp.body);
    assert!(resp.body.contains("no version"), "{}", resp.body);

    // ...and v1 keeps serving bit-identical forecasts afterwards.
    let resp = request(addr, "POST", "/forecast", &body);
    assert_eq!(resp.status, 200, "{}", resp.body);
    let doc = resp.json();
    assert_eq!(doc.get("version").and_then(Json::as_num), Some(1.0));
    assert_eq!(forecast_bits(&doc), reference);

    // The rejects are visible on /metrics.
    let resp = request(addr, "GET", "/metrics", "");
    let doc = resp.json();
    assert_eq!(
        doc.get("counters")
            .and_then(|c| c.get("serve.swap_rejects"))
            .and_then(Json::as_num),
        Some(2.0),
        "{}",
        resp.body
    );
    assert_eq!(
        doc.get("counters")
            .and_then(|c| c.get("serve.swaps"))
            .and_then(Json::as_num),
        Some(0.0)
    );

    server.shutdown();
    let _ = fs::remove_dir_all(&root);
}
