//! End-to-end serving tests over real TCP connections: bitwise parity
//! with the in-process planned student, error-path behaviour, concurrent
//! determinism, hot-swap under load, tenant flows and `/metrics`.

mod common;

use std::io::Read;
use std::net::TcpStream;
use std::sync::Arc;

use common::*;
use timekd::{PlannedStudent, QuantizedStudent};
use timekd_obs::json::Json;
use timekd_serve::{ServeConfig, Server};
use timekd_tensor::{Precision, Tensor};

fn window_tensor(rows: &[Vec<f32>]) -> Tensor {
    let flat: Vec<f32> = rows.iter().flatten().copied().collect();
    Tensor::from_vec(flat, [INPUT_LEN, NUM_VARS])
}

fn forecast_body(rows: &[Vec<f32>]) -> String {
    Json::obj(vec![("x", rows_json(rows))]).render()
}

#[test]
fn served_forecast_is_bitwise_identical_to_planned_student() {
    let _serial = common::serial();
    timekd_obs::reset();
    let root = temp_registry("bitwise");
    let student = publish_version(&root, 1, 41, Precision::F32);
    let server = Server::start(ServeConfig::new(&root)).expect("start");

    let mut planned = PlannedStudent::new(&student, &tiny_config()).expect("planned");
    let window = demo_window(7);
    let reference = tensor_bits(&planned.predict(&window_tensor(&window)));

    let resp = request(server.addr(), "POST", "/forecast", &forecast_body(&window));
    assert_eq!(resp.status, 200, "{}", resp.body);
    let doc = resp.json();
    assert_eq!(doc.get("version").and_then(Json::as_num), Some(1.0));
    assert_eq!(
        doc.get("horizon").and_then(Json::as_num),
        Some(HORIZON as f64)
    );
    assert_eq!(
        doc.get("num_vars").and_then(Json::as_num),
        Some(NUM_VARS as f64)
    );
    assert_eq!(
        forecast_bits(&doc),
        reference,
        "served forecast must match PlannedStudent::predict bit for bit"
    );
    server.shutdown();
    let _ = std::fs::remove_dir_all(&root);
}

#[test]
fn int8_manifest_serves_quantized_forecasts_bitwise() {
    let _serial = common::serial();
    timekd_obs::reset();
    let root = temp_registry("int8");
    let student = publish_version(&root, 1, 43, Precision::Int8);
    let server = Server::start(ServeConfig::new(&root)).expect("start");

    let mut quantized = QuantizedStudent::new(&student, &tiny_config()).expect("quantized");
    let window = demo_window(9);
    let reference = tensor_bits(&quantized.predict(&window_tensor(&window)));

    let resp = request(server.addr(), "POST", "/forecast", &forecast_body(&window));
    assert_eq!(resp.status, 200, "{}", resp.body);
    assert_eq!(
        forecast_bits(&resp.json()),
        reference,
        "int8 manifest must serve QuantizedStudent::predict bit for bit"
    );
    server.shutdown();
    let _ = std::fs::remove_dir_all(&root);
}

#[test]
fn error_paths_answer_precisely_and_keep_the_connection() {
    let _serial = common::serial();
    timekd_obs::reset();
    let root = temp_registry("errors");
    let _student = publish_version(&root, 1, 44, Precision::F32);
    let mut cfg = ServeConfig::new(&root);
    cfg.max_body_bytes = 2048;
    let server = Server::start(cfg).expect("start");

    // All of these ride one keep-alive connection; each error must leave
    // the connection usable for the next request.
    let mut conn = TcpStream::connect(server.addr()).expect("connect");

    let resp = request_on(&mut conn, "GET", "/nope", "");
    assert_eq!(resp.status, 404);
    assert!(resp.json().get("error").is_some(), "{}", resp.body);

    let resp = request_on(&mut conn, "GET", "/forecast", "");
    assert_eq!(resp.status, 405, "{}", resp.body);

    let resp = request_on(&mut conn, "POST", "/forecast", "{not json");
    assert_eq!(resp.status, 400, "{}", resp.body);

    // Wrong row count.
    let short = demo_window(44)[..INPUT_LEN - 2].to_vec();
    let resp = request_on(&mut conn, "POST", "/forecast", &forecast_body(&short));
    assert_eq!(resp.status, 400, "{}", resp.body);
    assert!(resp.body.contains("rows"), "{}", resp.body);

    // Non-numeric cell in a correctly shaped window.
    let mut rows: Vec<String> = vec![r#"[1, 2, "oops"]"#.to_string()];
    rows.extend((1..INPUT_LEN).map(|_| "[0, 0, 0]".to_string()));
    let bad = format!(r#"{{"x": [{}]}}"#, rows.join(", "));
    let resp = request_on(&mut conn, "POST", "/forecast", &bad);
    assert_eq!(resp.status, 400, "{}", resp.body);
    assert!(resp.body.contains("finite"), "{}", resp.body);

    // Missing both `x` and `tenant`.
    let resp = request_on(&mut conn, "POST", "/forecast", "{}");
    assert_eq!(resp.status, 400, "{}", resp.body);

    // Unknown tenant.
    let resp = request_on(&mut conn, "POST", "/forecast", r#"{"tenant": "ghost"}"#);
    assert_eq!(resp.status, 409, "{}", resp.body);
    assert!(resp.body.contains("ghost"), "{}", resp.body);

    // Oversized-but-drainable body: 413 and the connection survives.
    let big = format!(r#"{{"pad": "{}"}}"#, "y".repeat(4096));
    let resp = request_on(&mut conn, "POST", "/forecast", &big);
    assert_eq!(resp.status, 413, "{}", resp.body);

    // The same connection still serves a good forecast afterwards.
    let resp = request_on(
        &mut conn,
        "POST",
        "/forecast",
        &forecast_body(&demo_window(44)),
    );
    assert_eq!(resp.status, 200, "{}", resp.body);

    server.shutdown();
    let _ = std::fs::remove_dir_all(&root);
}

#[test]
fn concurrent_clients_get_deterministic_fused_responses() {
    let _serial = common::serial();
    timekd_obs::reset();
    let root = temp_registry("concurrent");
    let student = publish_version(&root, 1, 45, Precision::F32);
    let server = Server::start(ServeConfig::new(&root)).expect("start");
    let addr = server.addr();

    let mut planned = PlannedStudent::new(&student, &tiny_config()).expect("planned");
    const CLIENTS: usize = 8;
    const PER_CLIENT: usize = 5;
    // Each client sends its own distinct window repeatedly; fusion across
    // clients must not bleed one client's input into another's output.
    let references: Vec<Arc<Vec<u32>>> = (0..CLIENTS)
        .map(|c| {
            let window = demo_window(100 + c as u64);
            Arc::new(tensor_bits(&planned.predict(&window_tensor(&window))))
        })
        .collect();

    let workers: Vec<_> = (0..CLIENTS)
        .map(|c| {
            let reference = references[c].clone();
            std::thread::spawn(move || {
                let window = demo_window(100 + c as u64);
                let body = forecast_body(&window);
                let mut conn = TcpStream::connect(addr).expect("connect");
                for _ in 0..PER_CLIENT {
                    let resp = request_on(&mut conn, "POST", "/forecast", &body);
                    assert_eq!(resp.status, 200, "{}", resp.body);
                    assert_eq!(forecast_bits(&resp.json()), *reference);
                }
            })
        })
        .collect();
    for w in workers {
        w.join().expect("client thread");
    }

    // Every forecast was batched (occupancy numerator equals request count)
    // and the batch counters are visible over /metrics.
    let resp = request(addr, "GET", "/metrics", "");
    assert_eq!(resp.status, 200);
    let doc = resp.json();
    // Counter names contain dots, so they are addressed as literal keys of
    // the `counters` object rather than through `get_path`.
    let counter = |name: &str| {
        doc.get("counters")
            .and_then(|c| c.get(name))
            .and_then(Json::as_num)
            .unwrap_or_else(|| panic!("counter {name} missing: {}", resp.body))
    };
    assert_eq!(
        counter("serve.batched_requests"),
        (CLIENTS * PER_CLIENT) as f64
    );
    let batches = counter("serve.batches");
    assert!(batches >= 1.0);
    assert!(batches <= (CLIENTS * PER_CLIENT) as f64);
    server.shutdown();
    let _ = std::fs::remove_dir_all(&root);
}

#[test]
fn hot_swap_under_load_never_drops_or_mixes_versions() {
    let _serial = common::serial();
    timekd_obs::reset();
    let root = temp_registry("hotswap");
    let student_v1 = publish_version(&root, 1, 46, Precision::F32);
    let student_v2 = publish_version(&root, 2, 47, Precision::F32);
    // Boot pinned to v1: latest_version picks v2, so activate v1 first via
    // a server started on the registry, then swap back. Simpler: publish v2
    // later — instead we just activate v1 explicitly before the load phase.
    let server = Server::start(ServeConfig::new(&root)).expect("start");
    let addr = server.addr();
    let resp = request(addr, "POST", "/admin/activate", r#"{"version": 1}"#);
    assert_eq!(resp.status, 200, "{}", resp.body);

    let window = demo_window(11);
    let mut planned_v1 = PlannedStudent::new(&student_v1, &tiny_config()).expect("planned v1");
    let mut planned_v2 = PlannedStudent::new(&student_v2, &tiny_config()).expect("planned v2");
    let ref_v1 = Arc::new(tensor_bits(&planned_v1.predict(&window_tensor(&window))));
    let ref_v2 = Arc::new(tensor_bits(&planned_v2.predict(&window_tensor(&window))));
    assert_ne!(*ref_v1, *ref_v2, "the two versions must actually differ");

    const CLIENTS: usize = 4;
    const REQUESTS: usize = 40;
    let body = forecast_body(&window);
    let workers: Vec<_> = (0..CLIENTS)
        .map(|_| {
            let (ref_v1, ref_v2) = (ref_v1.clone(), ref_v2.clone());
            let body = body.clone();
            std::thread::spawn(move || {
                let mut conn = TcpStream::connect(addr).expect("connect");
                let mut seen_v2 = false;
                let mut versions = Vec::with_capacity(REQUESTS);
                // Run at least REQUESTS requests and keep going until the
                // swap (issued concurrently by the main thread) is visible.
                while versions.len() < REQUESTS || !seen_v2 {
                    assert!(versions.len() < 5000, "v2 never became visible");
                    let resp = request_on(&mut conn, "POST", "/forecast", &body);
                    // Never dropped: every request gets a full 200.
                    assert_eq!(resp.status, 200, "{}", resp.body);
                    let doc = resp.json();
                    let version = doc.get("version").and_then(Json::as_num).expect("version");
                    let bits = forecast_bits(&doc);
                    // Never mixed: the payload is wholly the version it claims.
                    if version == 1.0 {
                        assert!(!seen_v2, "v1 response after v2 went live");
                        assert_eq!(bits, *ref_v1, "v1 response with foreign bits");
                    } else {
                        assert_eq!(version, 2.0, "unknown version {version}");
                        seen_v2 = true;
                        assert_eq!(bits, *ref_v2, "v2 response with foreign bits");
                    }
                    versions.push(version as u64);
                }
                versions
            })
        })
        .collect();

    // Swap mid-flight.
    std::thread::sleep(std::time::Duration::from_millis(5));
    let resp = request(addr, "POST", "/admin/activate", r#"{"version": 2}"#);
    assert_eq!(resp.status, 200, "{}", resp.body);

    let mut total_v2 = 0usize;
    for w in workers {
        let versions = w.join().expect("client thread");
        assert!(versions.len() >= REQUESTS);
        total_v2 += versions.iter().filter(|&&v| v == 2).count();
    }
    assert!(total_v2 >= CLIENTS, "every client must observe the swap");
    let resp = request(addr, "POST", "/forecast", &body);
    assert_eq!(resp.status, 200);
    assert_eq!(forecast_bits(&resp.json()), *ref_v2);

    server.shutdown();
    let _ = std::fs::remove_dir_all(&root);
}

#[test]
fn connections_past_the_cap_are_shed_with_503() {
    let _serial = common::serial();
    timekd_obs::reset();
    let root = temp_registry("conncap");
    let _student = publish_version(&root, 1, 50, Precision::F32);
    let mut cfg = ServeConfig::new(&root);
    cfg.max_connections = 2;
    let server = Server::start(cfg).expect("start");
    let addr = server.addr();

    // Two keep-alive connections occupy both handler slots.
    let mut held: Vec<TcpStream> = (0..2)
        .map(|_| TcpStream::connect(addr).expect("connect"))
        .collect();
    for conn in held.iter_mut() {
        let resp = request_on(conn, "GET", "/healthz", "");
        assert_eq!(resp.status, 200, "{}", resp.body);
    }

    // A third connection is shed: an unsolicited 503 then EOF, without
    // ever spawning a handler thread.
    let mut extra = TcpStream::connect(addr).expect("connect");
    let mut raw = String::new();
    extra.read_to_string(&mut raw).expect("read shed response");
    assert!(raw.starts_with("HTTP/1.1 503"), "{raw}");
    assert!(raw.contains("capacity"), "{raw}");
    drop(extra);

    // Freeing a slot re-admits new connections; the handler notices the
    // closed peer within a read-timeout tick, so poll briefly.
    drop(held.pop());
    let mut admitted = false;
    for _ in 0..200 {
        let mut conn = TcpStream::connect(addr).expect("connect");
        conn.set_read_timeout(Some(std::time::Duration::from_millis(50)))
            .expect("set timeout");
        let mut probe = [0u8; 1];
        match conn.read(&mut probe) {
            // Admitted handlers wait silently for a request; shed
            // connections get an immediate 503 instead.
            Err(e)
                if matches!(
                    e.kind(),
                    std::io::ErrorKind::WouldBlock | std::io::ErrorKind::TimedOut
                ) =>
            {
                conn.set_read_timeout(None).expect("clear timeout");
                let resp = request_on(&mut conn, "GET", "/healthz", "");
                assert_eq!(resp.status, 200, "{}", resp.body);
                admitted = true;
                break;
            }
            _ => std::thread::sleep(std::time::Duration::from_millis(5)),
        }
    }
    assert!(admitted, "a freed slot must admit new connections");

    server.shutdown();
    let _ = std::fs::remove_dir_all(&root);
}

#[test]
fn deeply_nested_json_body_is_rejected_not_fatal() {
    let _serial = common::serial();
    timekd_obs::reset();
    let root = temp_registry("deepjson");
    let _student = publish_version(&root, 1, 51, Precision::F32);
    let server = Server::start(ServeConfig::new(&root)).expect("start");
    let addr = server.addr();

    // ~100k nested arrays is well under the 1 MiB body cap but would
    // overflow the handler stack without the parser depth limit — the
    // whole process would abort, not just the request.
    let bomb = "[".repeat(100_000);
    let mut conn = TcpStream::connect(addr).expect("connect");
    let resp = request_on(&mut conn, "POST", "/forecast", &bomb);
    assert_eq!(resp.status, 400, "{}", resp.body);
    assert!(resp.body.contains("nesting"), "{}", resp.body);

    // The server survives and keeps serving.
    let resp = request(addr, "GET", "/healthz", "");
    assert_eq!(resp.status, 200, "{}", resp.body);

    server.shutdown();
    let _ = std::fs::remove_dir_all(&root);
}

#[test]
fn tenant_observe_then_forecast_matches_explicit_window() {
    let _serial = common::serial();
    timekd_obs::reset();
    let root = temp_registry("tenants");
    let student = publish_version(&root, 1, 48, Precision::F32);
    let server = Server::start(ServeConfig::new(&root)).expect("start");
    let addr = server.addr();

    // Feed 2 extra rows; the forecast must use the *last* INPUT_LEN rows.
    let mut history = demo_window(21);
    history.splice(0..0, vec![vec![9.0; NUM_VARS], vec![-9.0; NUM_VARS]]);
    let observe_body = Json::obj(vec![
        ("tenant", Json::str("acme")),
        ("rows", rows_json(&history)),
    ])
    .render();
    let resp = request(addr, "POST", "/observe", &observe_body);
    assert_eq!(resp.status, 200, "{}", resp.body);
    assert_eq!(
        resp.json().get("rows").and_then(Json::as_num),
        Some((INPUT_LEN + 2) as f64)
    );

    let mut planned = PlannedStudent::new(&student, &tiny_config()).expect("planned");
    let reference = tensor_bits(&planned.predict(&window_tensor(&demo_window(21))));
    let resp = request(addr, "POST", "/forecast", r#"{"tenant": "acme"}"#);
    assert_eq!(resp.status, 200, "{}", resp.body);
    assert_eq!(forecast_bits(&resp.json()), reference);

    // A tenant with too little history is a 409, not a panic or a pad.
    let resp = request(
        addr,
        "POST",
        "/observe",
        &Json::obj(vec![
            ("tenant", Json::str("sparse")),
            ("rows", rows_json(&demo_window(5)[..2])),
        ])
        .render(),
    );
    assert_eq!(resp.status, 200);
    let resp = request(addr, "POST", "/forecast", r#"{"tenant": "sparse"}"#);
    assert_eq!(resp.status, 409, "{}", resp.body);
    assert!(resp.body.contains("2 rows"), "{}", resp.body);

    server.shutdown();
    let _ = std::fs::remove_dir_all(&root);
}

#[test]
fn metrics_exposes_counters_and_latency_histograms() {
    let _serial = common::serial();
    timekd_obs::reset();
    let root = temp_registry("metrics");
    let _student = publish_version(&root, 1, 49, Precision::F32);
    let server = Server::start(ServeConfig::new(&root)).expect("start");
    let addr = server.addr();

    let body = forecast_body(&demo_window(31));
    for _ in 0..6 {
        let resp = request(addr, "POST", "/forecast", &body);
        assert_eq!(resp.status, 200);
    }
    let resp = request(addr, "GET", "/healthz", "");
    assert_eq!(resp.status, 200);
    assert_eq!(resp.json().get("version").and_then(Json::as_num), Some(1.0));

    let resp = request(addr, "GET", "/metrics", "");
    assert_eq!(resp.status, 200);
    let doc = resp.json();
    assert_eq!(
        doc.get("schema").and_then(Json::as_str),
        Some("timekd-serve-metrics/v1")
    );
    let counter = |name: &str| {
        doc.get("counters")
            .and_then(|c| c.get(name))
            .and_then(Json::as_num)
    };
    assert_eq!(
        counter("serve.requests"),
        Some(8.0),
        "6 forecasts + healthz + this metrics request: {}",
        resp.body
    );
    assert_eq!(counter("serve.errors"), Some(0.0));
    let hists = doc
        .get("histograms")
        .and_then(Json::as_arr)
        .expect("histograms");
    let find = |name: &str| {
        hists
            .iter()
            .find(|h| h.get("name").and_then(Json::as_str) == Some(name))
            .unwrap_or_else(|| panic!("histogram {name} missing: {}", resp.body))
    };
    let fc = find("serve.forecast.latency_ns");
    assert_eq!(fc.get("count").and_then(Json::as_num), Some(6.0));
    let p50 = fc.get("p50").and_then(Json::as_num).expect("p50");
    let p99 = fc.get("p99").and_then(Json::as_num).expect("p99");
    assert!(p50 > 0.0 && p50 <= p99, "p50 {p50} p99 {p99}");
    let occ = find("serve.batch.occupancy");
    assert!(occ.get("count").and_then(Json::as_num).expect("count") >= 1.0);

    server.shutdown();
    let _ = std::fs::remove_dir_all(&root);
}
