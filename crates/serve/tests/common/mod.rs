//! Shared helpers for the serving integration tests: a tiny student
//! geometry, registry scaffolding in a per-test temp dir, and a raw
//! `TcpStream` HTTP/1.1 client (the tests deliberately do not reuse the
//! server's own framing code to talk to it).
//!
//! Each integration-test binary compiles this module separately and uses
//! a different subset of it.
#![allow(dead_code)]

use std::io::{Read, Write};
use std::net::TcpStream;
use std::path::PathBuf;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Mutex, MutexGuard};

use timekd::{Student, TimeKdConfig};
use timekd_obs::json::Json;
use timekd_serve::registry;
use timekd_tensor::{seeded_rng, Precision};

/// Tiny but non-trivial serving geometry.
pub const INPUT_LEN: usize = 8;
pub const HORIZON: usize = 4;
pub const NUM_VARS: usize = 3;

/// The serving tests start real servers and assert on the global
/// observability counters, so they must not interleave.
pub fn serial() -> MutexGuard<'static, ()> {
    static LOCK: Mutex<()> = Mutex::new(());
    LOCK.lock().unwrap_or_else(|p| p.into_inner())
}

pub fn tiny_config() -> TimeKdConfig {
    TimeKdConfig {
        dim: 16,
        num_layers: 1,
        num_heads: 2,
        ffn_hidden: 32,
        ..TimeKdConfig::default()
    }
}

pub fn tiny_student(seed: u64) -> Student {
    let config = tiny_config();
    let mut rng = seeded_rng(seed);
    Student::new(&config, INPUT_LEN, HORIZON, NUM_VARS, &mut rng)
}

/// A fresh registry root under the system temp dir, unique per call.
pub fn temp_registry(tag: &str) -> PathBuf {
    static NEXT: AtomicUsize = AtomicUsize::new(0);
    let dir = std::env::temp_dir().join(format!(
        "timekd-serve-{tag}-{}-{}",
        std::process::id(),
        NEXT.fetch_add(1, Ordering::Relaxed)
    ));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).expect("create temp registry");
    dir
}

/// Publishes `seed`'s student as `v<version>` and returns the student.
pub fn publish_version(root: &PathBuf, version: u64, seed: u64, precision: Precision) -> Student {
    let student = tiny_student(seed);
    registry::publish(root, version, &student, &tiny_config(), precision).expect("publish");
    student
}

/// A deterministic `[INPUT_LEN][NUM_VARS]` observation window.
pub fn demo_window(seed: u64) -> Vec<Vec<f32>> {
    let mut rng = seeded_rng(seed ^ 0x5eed);
    (0..INPUT_LEN)
        .map(|_| (0..NUM_VARS).map(|_| rng.gen_range(-1.0f32..1.0)).collect())
        .collect()
}

/// Renders rows as a JSON array-of-arrays using the same number formatter
/// the server uses, so f32 values survive the trip bit-exactly.
pub fn rows_json(rows: &[Vec<f32>]) -> Json {
    Json::Arr(
        rows.iter()
            .map(|row| Json::Arr(row.iter().map(|&v| Json::num(v as f64)).collect()))
            .collect(),
    )
}

/// One parsed HTTP response.
#[derive(Debug)]
pub struct Response {
    pub status: u16,
    pub body: String,
}

impl Response {
    pub fn json(&self) -> Json {
        Json::parse(&self.body).unwrap_or_else(|e| panic!("bad response JSON ({e}): {}", self.body))
    }
}

/// Sends one request on an existing connection and reads the response.
pub fn request_on(stream: &mut TcpStream, method: &str, path: &str, body: &str) -> Response {
    // Single write: separate head/body segments would hit Nagle +
    // delayed-ACK stalls on loopback.
    let request = format!(
        "{method} {path} HTTP/1.1\r\nHost: test\r\nContent-Length: {}\r\n\r\n{body}",
        body.len()
    );
    stream.write_all(request.as_bytes()).expect("write request");
    stream.flush().expect("flush");
    read_response(stream)
}

/// Opens a fresh connection for a single request.
pub fn request(addr: std::net::SocketAddr, method: &str, path: &str, body: &str) -> Response {
    let mut stream = TcpStream::connect(addr).expect("connect");
    request_on(&mut stream, method, path, body)
}

fn read_response(stream: &mut TcpStream) -> Response {
    let mut head = Vec::new();
    let mut byte = [0u8; 1];
    while !head.ends_with(b"\r\n\r\n") {
        match stream.read(&mut byte) {
            Ok(0) => panic!("connection closed inside response head"),
            Ok(_) => head.push(byte[0]),
            Err(e) if e.kind() == std::io::ErrorKind::Interrupted => continue,
            Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => continue,
            Err(e) => panic!("read error in response head: {e}"),
        }
        assert!(head.len() < 64 * 1024, "response head too large");
    }
    let head = String::from_utf8(head).expect("utf8 head");
    let mut lines = head.split("\r\n");
    let status_line = lines.next().expect("status line");
    let status: u16 = status_line
        .split(' ')
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or_else(|| panic!("bad status line `{status_line}`"));
    let mut content_length = 0usize;
    for line in lines {
        if let Some((name, value)) = line.split_once(':') {
            if name.trim().eq_ignore_ascii_case("content-length") {
                content_length = value.trim().parse().expect("content-length");
            }
        }
    }
    let mut body = vec![0u8; content_length];
    let mut filled = 0;
    while filled < content_length {
        match stream.read(&mut body[filled..]) {
            Ok(0) => panic!("connection closed inside response body"),
            Ok(n) => filled += n,
            Err(e) if e.kind() == std::io::ErrorKind::Interrupted => continue,
            Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => continue,
            Err(e) => panic!("read error in response body: {e}"),
        }
    }
    Response {
        status,
        body: String::from_utf8(body).expect("utf8 body"),
    }
}

/// Extracts the `forecast` field of a 200 response as flattened f32 bits.
pub fn forecast_bits(doc: &Json) -> Vec<u32> {
    let rows = doc
        .get("forecast")
        .and_then(Json::as_arr)
        .expect("forecast rows");
    rows.iter()
        .flat_map(|row| row.as_arr().expect("forecast row").iter())
        .map(|cell| (cell.as_num().expect("forecast cell") as f32).to_bits())
        .collect()
}

/// Flattened f32 bits of a tensor's data.
pub fn tensor_bits(t: &timekd_tensor::Tensor) -> Vec<u32> {
    t.data().iter().map(|v| v.to_bits()).collect()
}
