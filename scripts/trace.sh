#!/usr/bin/env bash
# Observability gate: the golden-trace regression suite, the tracing
# overhead guard, and one traced QUICK quickstart whose emitted JSON
# report must conform to the timekd-trace/v1 schema with full pipeline
# coverage (teacher, SCA, student, both PKD losses, pool, LM cache).
set -euo pipefail
cd "$(dirname "$0")/.."

echo "==> golden-trace regression suite"
cargo test -q --test golden_trace

echo "==> obs overhead guard (<1% disabled-path cost, zero graph delta)"
cargo test -q --test obs_overhead

out_dir="$(mktemp -d)"
trap 'rm -rf "$out_dir"' EXIT

echo "==> traced QUICK quickstart (TIMEKD_TRACE=1, report to $out_dir)"
if ! QUICK=1 TIMEKD_TRACE=1 TIMEKD_TRACE_OUT="$out_dir/trace.json" \
    cargo run -q --release --example quickstart >"$out_dir/quickstart.log"; then
  echo "trace.sh: traced quickstart failed; last log lines:" >&2
  tail -n 20 "$out_dir/quickstart.log" >&2 || true
  exit 1
fi
if [ ! -f "$out_dir/trace.json" ]; then
  echo "trace.sh: quickstart emitted no trace report" >&2
  exit 1
fi

echo "==> validating trace.json against the timekd-trace/v1 schema"
if ! cargo run -q -p timekd-bench --release --bin kernels -- --validate-trace "$out_dir/trace.json"; then
  echo "trace.sh: trace report failed schema/coverage validation" >&2
  exit 1
fi

echo "trace gate passed."
