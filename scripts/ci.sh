#!/usr/bin/env bash
# The full CI gate, in the order cheapest-to-fail-first. Run from anywhere;
# works offline (the workspace has no external dependencies).
set -euo pipefail
cd "$(dirname "$0")/.."

# Formatting is advisory when rustfmt is not installed in the toolchain.
if cargo fmt --version >/dev/null 2>&1; then
  echo "==> cargo fmt --check"
  cargo fmt --all --check
else
  echo "==> cargo fmt not available; skipping format check"
fi

echo "==> timekd-check --lints (source rules, allowlist, tracked artifacts)"
cargo run -q -p timekd-check -- --lints --strict

echo "==> timekd-check --verify (symbolic shape + gradient-flow proofs)"
cargo run -q -p timekd-check -- --verify

echo "==> timekd-check --graph (dynamic audits + symbolic cross-check)"
cargo run -q -p timekd-check -- --graph

echo "==> timekd-check --plan (forward: liveness, arena, graph diff; training: adjoint completeness, reverse schedule, saved-activation liveness, bitwise plan-vs-dynamic updates; batched: reduction completeness, per-lane arena disjointness — all configs)"
cargo run -q -p timekd-check -- --plan --strict

echo "==> release build"
cargo build --release --workspace

echo "==> tests"
cargo test -q --workspace

echo "==> batched training determinism suite (planned vs dynamic oracle, thread invariance, zero-alloc replay)"
# Re-run the bitwise gates by name so a filtered or flaky-skipped workspace
# run can never silently drop them: the planned epoch must reproduce the
# dynamic per-window loop bit for bit, and the batched fold must be
# thread-count invariant.
cargo test -q -p timekd -- --exact \
  trainer::tests::planned_student_epoch_is_bitwise_identical_to_dynamic \
  trainer::tests::batched_student_epoch_is_thread_invariant_with_uneven_tail \
  plan::tests::batch_trainer_reuses_cached_plan_across_rebuilds
cargo test -q -p timekd-bench --test planned_alloc

echo "==> serving integration suite (bitwise parity, hot-swap under load, registry faults)"
# Same rationale as the determinism gates: re-run the serving contract
# tests by name so a filtered workspace run can never silently drop them.
cargo test -q -p timekd-serve --test http_serving
cargo test -q -p timekd-serve --test registry_faults

echo "==> tensor tests under the scalar fallback (TIMEKD_SIMD=off)"
# The f32x8 microkernels ship with a scalar fallback pinned to its own
# reduction order; run the tensor suite once in that mode so the fallback
# (and its determinism contract) stays green.
TIMEKD_SIMD=off cargo test -q -p timekd-tensor

echo "==> bench smoke (QUICK kernel bench + schema validation)"
# Explicit propagation: a validator failure inside the smoke must fail CI
# even if this script is ever sourced or run without `set -e` semantics.
if ! scripts/bench.sh; then
  echo "ci.sh: bench smoke failed (bench crash or schema-validator rejection)" >&2
  exit 1
fi

echo "==> observability gate (golden trace + overhead guard + traced quickstart)"
if ! scripts/trace.sh; then
  echo "ci.sh: observability gate failed" >&2
  exit 1
fi

echo "CI gate passed."
