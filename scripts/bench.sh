#!/usr/bin/env bash
# Perf-baseline smoke gate: runs the kernel bench bin on the QUICK profile
# into a scratch directory, then re-invokes it with --validate to check the
# emitted JSON against the timekd-kernel-bench/v7 schema (which requires
# the simd-vs-scalar kernel columns, the quantized_student section —
# int8 weights vs the f32 plan, accuracy-gated inside the bin itself —
# the batched_training section: on QUICK that is one B=4 row comparing
# the per-window planned epoch against the data-parallel batched replay,
# thread-invariance asserted bitwise inside the bin — and the serving
# section produced by the timekd-serve closed-loop load harness, latency
# quantiles read back from the server's own /metrics histograms).
# Fails if the bin crashes, trips the quantization MSE gate, sees a
# serving request error, emits nothing, or emits a file that does not
# conform. A standalone QUICK serve_load smoke also runs first so a
# serving regression fails fast with its own output.
#
# Full (committed) baselines are produced by running with QUICK=0 and with
# no TIMEKD_BENCH_DIR override, which writes BENCH_<unix-seconds>.json at
# the repo root:
#   QUICK=0 cargo run -p timekd-bench --release --bin kernels
set -euo pipefail
cd "$(dirname "$0")/.."

out_dir="$(mktemp -d)"
trap 'rm -rf "$out_dir"' EXIT

echo "==> serve_load smoke run (QUICK)"
QUICK=1 cargo run -q -p timekd-bench --release --bin serve_load

echo "==> bench smoke run (QUICK, TIMEKD_BENCH_DIR=$out_dir)"
QUICK=1 TIMEKD_BENCH_DIR="$out_dir" cargo run -q -p timekd-bench --release --bin kernels

emitted=("$out_dir"/BENCH_*.json)
if [ ! -f "${emitted[0]}" ]; then
  echo "bench.sh: no BENCH_*.json emitted into $out_dir" >&2
  exit 1
fi

echo "==> validating ${emitted[0]##*/} against the kernel-bench schema"
cargo run -q -p timekd-bench --release --bin kernels -- --validate "${emitted[0]}"

echo "bench gate passed."
