//! Ablation lab: flip TimeKD's components on and off and watch the effect
//! — a miniature of the paper's Figure 6, runnable in seconds.
//!
//! Shares one pretrained calibrated LM across all variants (the expensive
//! part), exactly like the experiment harness.
//!
//! ```bash
//! cargo run --release --example ablation_lab
//! ```

use std::rc::Rc;

use timekd::{AblationConfig, Forecaster, TimeKd, TimeKdConfig};
use timekd_data::{DatasetKind, Split, SplitDataset};
use timekd_lm::{pretrain_lm, FrozenLm, PretrainConfig, PromptTokenizer};

fn main() {
    let ds = SplitDataset::new(DatasetKind::EttH2, 1200, 21, 96, 24);
    let train = ds.windows(Split::Train, 12);
    let test = ds.windows(Split::Test, 8);

    // One frozen LM for every variant.
    let tokenizer = Rc::new(PromptTokenizer::new());
    let base_config = TimeKdConfig::default();
    println!("pretraining the calibrated language model once…");
    let (lm, report) = pretrain_lm(
        &tokenizer,
        base_config.lm,
        PretrainConfig {
            steps: 60,
            ..Default::default()
        },
    );
    println!(
        "  corpus LM loss {:.3} -> {:.3} over {} steps\n",
        report.initial_loss, report.final_loss, report.steps
    );
    let frozen = Rc::new(FrozenLm::new(lm));

    let variants = [
        AblationConfig::full(),
        AblationConfig::without_privileged_info(),
        AblationConfig::without_calibrated_attention(),
        AblationConfig::without_clm(),
        AblationConfig::without_sca(),
        AblationConfig::without_correlation_distillation(),
        AblationConfig::without_feature_distillation(),
    ];

    println!("variant   MSE      MAE      (ETTh2, FH 24, 2 epochs)");
    let mut results = Vec::new();
    for ablation in variants {
        let mut config = TimeKdConfig::with_ablation(ablation);
        config.prompt.freq_minutes = ds.kind().freq_minutes();
        let mut model = TimeKd::with_frozen_lm(
            frozen.clone(),
            tokenizer.clone(),
            config,
            ds.input_len(),
            ds.horizon(),
            ds.num_vars(),
        );
        for _ in 0..2 {
            model.train_epoch(&train);
        }
        let (mse, mae) = model.evaluate(&test);
        println!("{:<9} {mse:.4}   {mae:.4}", ablation.label());
        results.push((ablation.label(), mse));
    }

    let (best, _) = results
        .iter()
        .min_by(|a, b| a.1.partial_cmp(&b.1).unwrap())
        .unwrap();
    println!("\nlowest MSE this run: {best}");
    println!("(run the fig6_ablation bench for the averaged, multi-dataset version)");
}
