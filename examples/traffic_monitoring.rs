//! Traffic-sensor scenario: short-term forecasting on a PEMS04-style
//! freeway feed (5-minute sampling, rush-hour peaks, spatially coupled
//! sensors), comparing TimeKD against iTransformer and PatchTST.
//!
//! This reproduces the Table II story in miniature: channel-dependent
//! models (TimeKD, iTransformer) exploit the sensor coupling that
//! channel-independent PatchTST cannot see.
//!
//! ```bash
//! cargo run --release --example traffic_monitoring
//! ```

use timekd::{Forecaster, TimeKd, TimeKdConfig};
use timekd_baselines::{ITransformer, ITransformerConfig, PatchTst, PatchTstConfig};
use timekd_data::{DatasetKind, Split, SplitDataset};

fn main() {
    let ds = SplitDataset::new(DatasetKind::Pems04, 1600, 11, 96, 12);
    println!(
        "PEMS04-style feed: {} sensors, 5-minute sampling, horizon 12 (1 hour)",
        ds.num_vars()
    );

    let train = ds.windows(Split::Train, 12);
    let test = ds.windows(Split::Test, 8);
    println!(
        "{} train windows, {} test windows\n",
        train.len(),
        test.len()
    );

    // TimeKD.
    let mut config = TimeKdConfig::default();
    config.prompt.freq_minutes = ds.kind().freq_minutes();
    let mut timekd = TimeKd::new(config, ds.input_len(), ds.horizon(), ds.num_vars());
    for _ in 0..2 {
        timekd.train_epoch(&train);
    }
    let (kd_mse, kd_mae) = timekd.evaluate(&test);

    // iTransformer (channel-dependent, no LLM).
    let mut itr = ITransformer::new(
        ITransformerConfig::default(),
        ds.input_len(),
        ds.horizon(),
        ds.num_vars(),
    );
    for _ in 0..2 {
        itr.train_epoch(&train);
    }
    let (it_mse, it_mae) = itr.evaluate(&test);

    // PatchTST (channel-independent).
    let mut ptst = PatchTst::new(
        PatchTstConfig::default(),
        ds.input_len(),
        ds.horizon(),
        ds.num_vars(),
    );
    for _ in 0..2 {
        ptst.train_epoch(&train);
    }
    let (pt_mse, pt_mae) = ptst.evaluate(&test);

    println!("model         MSE      MAE");
    println!("TimeKD        {kd_mse:.4}   {kd_mae:.4}");
    println!("iTransformer  {it_mse:.4}   {it_mae:.4}");
    println!("PatchTST      {pt_mse:.4}   {pt_mae:.4}");

    let best = [
        ("TimeKD", kd_mse),
        ("iTransformer", it_mse),
        ("PatchTST", pt_mse),
    ]
    .into_iter()
    .min_by(|a, b| a.1.partial_cmp(&b.1).unwrap())
    .unwrap();
    println!(
        "\nbest on this run: {} — channel-dependent models should lead on coupled sensors",
        best.0
    );

    // Inspect what the student learned about sensor topology: adjacent
    // sensors (coupled by the generator) should attend to each other.
    let (_, student_attn) = timekd.attention_maps(&test[0]);
    let n = ds.num_vars();
    let a = student_attn.to_vec();
    let adjacent: f32 = (0..n - 1).map(|i| a[i * n + i + 1]).sum::<f32>() / (n - 1) as f32;
    let distant: f32 = (0..n).map(|i| a[i * n + (i + n / 2) % n]).sum::<f32>() / n as f32;
    println!("student attention — adjacent sensors {adjacent:.3} vs distant {distant:.3}");
}
