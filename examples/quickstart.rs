//! Quickstart: train TimeKD on a synthetic ETTh1-style dataset and
//! forecast.
//!
//! ```bash
//! cargo run --release --example quickstart
//! ```

use timekd::{Forecaster, TimeKd, TimeKdConfig};
use timekd_data::{DatasetKind, Split, SplitDataset};

fn main() {
    // 1. Build a dataset: 1200 steps of ETTh1-style electricity data,
    //    96-step history, 24-step horizon, chronological 70/10/20 splits.
    let ds = SplitDataset::new(DatasetKind::EttH1, 1200, 42, 96, 24);
    println!(
        "dataset: {} ({} variables, {} train steps)",
        ds.kind().name(),
        ds.num_vars(),
        ds.split_len(Split::Train)
    );

    // 2. Build TimeKD. `TimeKd::new` pretrains a small calibrated language
    //    model on the prompt grammar, freezes it, and wires up the
    //    cross-modality teacher + student + privileged distillation.
    let mut config = TimeKdConfig::default();
    config.prompt.freq_minutes = ds.kind().freq_minutes();
    let mut model = TimeKd::new(config, ds.input_len(), ds.horizon(), ds.num_vars());
    println!("trainable parameters: {}", model.num_trainable_params());

    // 3. Train jointly (teacher reconstruction + PKD + forecasting loss).
    let train = ds.windows(Split::Train, 8);
    let val = ds.windows(Split::Val, 4);
    for epoch in 1..=3 {
        let stats = model.train_epoch_detailed(&train);
        let (val_mse, val_mae) = model.evaluate(&val);
        println!(
            "epoch {epoch}: loss {:.4} (recon {:.4}, cd {:.4}, fd {:.4}, fcst {:.4}) | val MSE {val_mse:.4} MAE {val_mae:.4}",
            stats.total, stats.reconstruction, stats.correlation, stats.feature, stats.forecast
        );
    }

    // 4. Test-set evaluation — only the lightweight student runs here.
    let test = ds.windows(Split::Test, 4);
    let (mse, mae) = model.evaluate(&test);
    println!("test: MSE {mse:.4}  MAE {mae:.4}");

    // 5. Forecast one window.
    let w = &test[0];
    let forecast = model.predict(&w.x);
    println!(
        "first window: forecast[0] = {:?} vs truth[0] = {:?}",
        &forecast.to_vec()[..ds.num_vars()],
        &w.y.to_vec()[..ds.num_vars()]
    );
}
