//! Quickstart: train TimeKD on a synthetic ETTh1-style dataset and
//! forecast.
//!
//! ```bash
//! cargo run --release --example quickstart
//! ```
//!
//! Knobs (all environment variables):
//!
//! - `QUICK=1` — shrink the dataset and epoch count for a smoke run.
//! - `TIMEKD_TRACE=1` — record observability spans/counters and print a
//!   per-epoch summary table (counts are cumulative across epochs: the
//!   teacher warmup only happens in epoch 1, and the final trace must
//!   cover it).
//! - `TIMEKD_TRACE_OUT=<path>` — with tracing on, also write the
//!   schema-validated `timekd-trace/v1` JSON report there.

use timekd::{Forecaster, TimeKd, TimeKdConfig};
use timekd_bench::{trace_report, validate_trace_coverage, validate_trace_report};
use timekd_data::{DatasetKind, Split, SplitDataset};

fn main() {
    let quick = std::env::var("QUICK").is_ok_and(|v| v != "0");

    // 1. Build a dataset: ETTh1-style electricity data with 96-step
    //    history, 24-step horizon, chronological 70/10/20 splits (QUICK
    //    shrinks everything to smoke-test scale).
    let (steps, vars, hist, horizon, epochs) = if quick {
        (700, 7, 48, 12, 2)
    } else {
        (1200, 42, 96, 24, 3)
    };
    let ds = SplitDataset::new(DatasetKind::EttH1, steps, vars, hist, horizon);
    println!(
        "dataset: {} ({} variables, {} train steps)",
        ds.kind().name(),
        ds.num_vars(),
        ds.split_len(Split::Train)
    );

    // 2. Build TimeKD. `TimeKd::new` pretrains a small calibrated language
    //    model on the prompt grammar, freezes it, and wires up the
    //    cross-modality teacher + student + privileged distillation.
    let mut config = TimeKdConfig::default();
    config.prompt.freq_minutes = ds.kind().freq_minutes();
    let mut model = TimeKd::new(config, ds.input_len(), ds.horizon(), ds.num_vars());
    println!("trainable parameters: {}", model.num_trainable_params());

    // Model construction (LM pretraining included) is noise for profiling;
    // start the trace at the first real epoch. `timekd_obs::enabled()`
    // reads TIMEKD_TRACE on first call.
    let tracing = timekd_obs::enabled();
    if tracing {
        timekd_obs::reset();
    }

    // 3. Train jointly (teacher reconstruction + PKD + forecasting loss).
    let train = ds.windows(Split::Train, 8);
    let val = ds.windows(Split::Val, 4);
    for epoch in 1..=epochs {
        let stats = model.train_epoch_detailed(&train);
        let (val_mse, val_mae) = model.evaluate(&val);
        println!(
            "epoch {epoch}: loss {:.4} (recon {:.4}, cd {:.4}, fd {:.4}, fcst {:.4}) | val MSE {val_mse:.4} MAE {val_mae:.4}",
            stats.total, stats.reconstruction, stats.correlation, stats.feature, stats.forecast
        );
        if tracing {
            println!("--- trace summary after epoch {epoch} (cumulative) ---");
            println!("{}", timekd_obs::snapshot().render_table());
        }
    }

    // 4. Test-set evaluation — only the lightweight student runs here.
    let test = ds.windows(Split::Test, 4);
    let (mse, mae) = model.evaluate(&test);
    println!("test: MSE {mse:.4}  MAE {mae:.4}");

    // 5. Forecast one window.
    let w = &test[0];
    let forecast = model.predict(&w.x);
    println!(
        "first window: forecast[0] = {:?} vs truth[0] = {:?}",
        &forecast.to_vec()[..ds.num_vars()],
        &w.y.to_vec()[..ds.num_vars()]
    );

    // 6. With tracing on, emit and validate the JSON trace report.
    if tracing {
        if let Ok(out) = std::env::var("TIMEKD_TRACE_OUT") {
            let created = std::time::SystemTime::now()
                .duration_since(std::time::UNIX_EPOCH)
                .map(|d| d.as_secs())
                .unwrap_or(0);
            let report = trace_report(&timekd_obs::snapshot(), "quickstart", created);
            let mut problems = Vec::new();
            if let Err(ps) = validate_trace_report(&report) {
                problems.extend(ps);
            }
            if let Err(ps) = validate_trace_coverage(&report) {
                problems.extend(ps);
            }
            if !problems.is_empty() {
                for p in &problems {
                    eprintln!("trace validation: {p}");
                }
                std::process::exit(1);
            }
            std::fs::write(&out, report.render()).expect("write trace report");
            println!("trace report written to {out} (schema-valid, full pipeline coverage)");
        }
    }
}
