//! Electricity-transformer scenario (the paper's flagship domain).
//!
//! Trains TimeKD on an ETTm1-style 15-minute feed, then demonstrates the
//! full production loop: forecast in normalised space, invert the scaler
//! back to physical units, and inspect per-variable errors — including the
//! oil temperature (OT) channel, whose slow thermal dynamics are exactly
//! what the cross-variable attention should capture.
//!
//! ```bash
//! cargo run --release --example electricity_forecasting
//! ```

use timekd::{Forecaster, TimeKd, TimeKdConfig};
use timekd_data::{column, DatasetKind, Split, SplitDataset};

fn main() {
    let ds = SplitDataset::new(DatasetKind::EttM1, 1600, 7, 96, 48);
    let names = ds.kind().variable_names();
    println!("ETTm1-style feed, 15-minute sampling, variables: {names:?}");

    let mut config = TimeKdConfig::default();
    config.prompt.freq_minutes = ds.kind().freq_minutes();
    let mut model = TimeKd::new(config, ds.input_len(), ds.horizon(), ds.num_vars());

    let train = ds.windows(Split::Train, 10);
    println!("training on {} windows…", train.len());
    for epoch in 1..=3 {
        let loss = model.train_epoch(&train);
        println!("epoch {epoch}: loss {loss:.4}");
    }

    // Forecast the latest test window and convert back to physical units.
    let test = ds.windows(Split::Test, 8);
    let w = test.last().expect("test windows");
    let forecast = model.predict(&w.x);

    let scaler = ds.scaler();
    let mut pred_phys = forecast.to_vec();
    scaler.inverse_transform(&mut pred_phys);
    let mut truth_phys = w.y.to_vec();
    scaler.inverse_transform(&mut truth_phys);

    println!("\nper-variable forecast quality over the next 48 steps (physical units):");
    let n = ds.num_vars();
    for (v, name) in names.iter().enumerate() {
        let pred = column(&forecast, v);
        let truth = column(&w.y, v);
        let mse: f32 = pred
            .iter()
            .zip(&truth)
            .map(|(a, b)| (a - b) * (a - b))
            .sum::<f32>()
            / pred.len() as f32;
        let first_pred = pred_phys[v];
        let first_truth = truth_phys[v];
        println!(
            "  {name:>5}: normalised MSE {mse:.4} | t+1 forecast {first_pred:8.2} vs actual {first_truth:8.2}"
        );
    }

    // The OT channel should be the easiest: it is a low-pass filter of the
    // loads, which the student's cross-variable attention can read off.
    let ot_pred = column(&forecast, n - 1);
    let ot_truth = column(&w.y, n - 1);
    let ot_mse: f32 = ot_pred
        .iter()
        .zip(&ot_truth)
        .map(|(a, b)| (a - b) * (a - b))
        .sum::<f32>()
        / ot_pred.len() as f32;
    println!("\noil-temperature MSE: {ot_mse:.4} (smooth channel — expect below average)");
}
