//! Zero-shot transfer lab (Table VI in miniature): train TimeKD on one
//! electricity transformer and deploy it, untouched, on another.
//!
//! Also demonstrates two production features beyond the paper's protocol:
//! checkpointing the trained model and rolling the forecast past the
//! trained horizon.
//!
//! ```bash
//! cargo run --release --example zero_shot_lab
//! ```

use timekd::{Forecaster, TimeKd, TimeKdConfig};
use timekd_data::{DatasetKind, Split, SplitDataset};

fn main() {
    let input_len = 96;
    let horizon = 24;
    let source = SplitDataset::new(DatasetKind::EttH1, 1200, 42, input_len, horizon);
    let target = SplitDataset::new(DatasetKind::EttH2, 1200, 43, input_len, horizon);

    let mut config = TimeKdConfig::default();
    config.prompt.freq_minutes = source.kind().freq_minutes();
    let mut model = TimeKd::new(config, input_len, horizon, source.num_vars());

    println!("training on {}…", source.kind().name());
    let train = source.windows(Split::Train, 10);
    for epoch in 1..=3 {
        let loss = model.train_epoch(&train);
        println!("  epoch {epoch}: loss {loss:.4}");
    }

    let (src_mse, src_mae) = model.evaluate(&source.windows(Split::Test, 8));
    println!(
        "\nin-domain  ({}): MSE {src_mse:.4} MAE {src_mae:.4}",
        source.kind().name()
    );

    // Zero-shot: the same weights, an unseen (but related) dataset.
    let (dst_mse, dst_mae) = model.evaluate(&target.windows(Split::Test, 8));
    println!(
        "zero-shot  ({}): MSE {dst_mse:.4} MAE {dst_mae:.4}",
        target.kind().name()
    );
    println!(
        "degradation factor: {:.2}x (RevIN re-normalises each window, so related domains transfer)",
        dst_mse / src_mse
    );

    // Checkpoint round trip.
    let blob = timekd::save_checkpoint(&model);
    println!("\ncheckpoint size: {} KiB", blob.len() / 1024);

    // Rolling forecast: 3x the trained horizon, autoregressively.
    let w = &target.windows(Split::Test, 8)[0];
    let rolled = model.predict_rolling(&w.x, 3 * horizon);
    println!(
        "rolling forecast: {} steps from a model trained for {horizon} (shape {:?})",
        3 * horizon,
        rolled.dims()
    );
}
